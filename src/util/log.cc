#include "util/log.h"

#include <cstdio>

namespace ppm::util {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel lvl, const char* component, const std::string& msg) {
  static const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  std::string line;
  if (now_) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "[t=%lluus] ",
                  static_cast<unsigned long long>(now_()));
    line += stamp;
  }
  line += kNames[static_cast<int>(lvl)];
  line += " ";
  line += component;
  line += ": ";
  line += msg;
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace ppm::util

#include "util/log.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ppm::util {

const char* ToString(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

Logger::Logger() {
  if (const char* env = std::getenv("PPM_LOG_LEVEL")) {
    if (auto lvl = ParseLogLevel(env)) {
      level_ = *lvl;
    } else {
      std::fprintf(stderr, "WARN log: ignoring unknown PPM_LOG_LEVEL=%s\n", env);
    }
  }
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel lvl, const char* component, const std::string& msg) {
  if (!component_filter_.empty() &&
      std::strncmp(component, component_filter_.c_str(), component_filter_.size()) != 0) {
    return;
  }
  std::string line;
  if (now_) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "[t=%lluus] ",
                  static_cast<unsigned long long>(now_()));
    line += stamp;
  }
  line += ToString(lvl);
  line += " ";
  line += component;
  line += ": ";
  line += msg;
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace ppm::util

#include "util/bytes.h"

#include <cstring>

namespace ppm::util {

void ByteWriter::U16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::Blob(const std::vector<uint8_t>& b) {
  U32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

std::optional<std::string> ByteReader::Str() {
  auto n = U32();
  if (!n || remaining() < *n) return std::nullopt;
  std::string s(reinterpret_cast<const char*>(data_ + pos_), *n);
  pos_ += *n;
  return s;
}

std::optional<std::vector<uint8_t>> ByteReader::Blob() {
  auto n = U32();
  if (!n || remaining() < *n) return std::nullopt;
  std::vector<uint8_t> b(data_ + pos_, data_ + pos_ + *n);
  pos_ += *n;
  return b;
}

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  static const Crc32Table table;
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) c = table.entries[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::vector<uint8_t>& data) { return Crc32(data.data(), data.size()); }

}  // namespace ppm::util

#include "util/bytes.h"

#include <cstring>

namespace ppm::util {

void ByteWriter::U16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::Blob(const std::vector<uint8_t>& b) {
  U32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

std::optional<uint8_t> ByteReader::U8() {
  if (remaining() < 1) return std::nullopt;
  return buf_[pos_++];
}

std::optional<uint16_t> ByteReader::U16() {
  if (remaining() < 2) return std::nullopt;
  uint16_t v = static_cast<uint16_t>(buf_[pos_] | (buf_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::optional<uint32_t> ByteReader::U32() {
  if (remaining() < 4) return std::nullopt;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::optional<uint64_t> ByteReader::U64() {
  if (remaining() < 8) return std::nullopt;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::optional<int32_t> ByteReader::I32() {
  auto v = U32();
  if (!v) return std::nullopt;
  return static_cast<int32_t>(*v);
}

std::optional<int64_t> ByteReader::I64() {
  auto v = U64();
  if (!v) return std::nullopt;
  return static_cast<int64_t>(*v);
}

std::optional<bool> ByteReader::Bool() {
  auto v = U8();
  if (!v) return std::nullopt;
  return *v != 0;
}

std::optional<std::string> ByteReader::Str() {
  auto n = U32();
  if (!n || remaining() < *n) return std::nullopt;
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), *n);
  pos_ += *n;
  return s;
}

std::optional<std::vector<uint8_t>> ByteReader::Blob() {
  auto n = U32();
  if (!n || remaining() < *n) return std::nullopt;
  std::vector<uint8_t> b(buf_.begin() + static_cast<long>(pos_),
                         buf_.begin() + static_cast<long>(pos_ + *n));
  pos_ += *n;
  return b;
}

bool ByteReader::Skip(size_t n) {
  if (remaining() < n) return false;
  pos_ += n;
  return true;
}

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  static const Crc32Table table;
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) c = table.entries[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::vector<uint8_t>& data) { return Crc32(data.data(), data.size()); }

}  // namespace ppm::util

// strings.h — small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ppm::util {

// Splits `s` on `sep`, keeping empty fields.  Splitting "" yields {""},
// matching the behaviour of awk-style field splitting used when parsing
// the per-user .recovery and .rhosts files.
std::vector<std::string> Split(std::string_view s, char sep);

// Strips leading and trailing ASCII whitespace.
std::string Trim(std::string_view s);

// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace ppm::util

#include "util/strings.h"

namespace ppm::util {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' || s[e - 1] == '\r'))
    --e;
  return std::string(s.substr(b, e - b));
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace ppm::util

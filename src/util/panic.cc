#include "util/panic.h"

#include <cstdio>
#include <cstdlib>

namespace ppm::util {

void PanicImpl(const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "PPM PANIC at %s:%d: %s\n", file, line, msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace ppm::util

// panic.h — unrecoverable-error handling for the PPM library.
//
// The simulation substrate is deterministic: an internal invariant
// violation is always a programming error, never an environmental
// condition, so we terminate loudly instead of throwing.  Recoverable
// conditions (a dead peer, a refused authentication, a missing process)
// are reported through ppm::util::Status / expected-style returns, never
// through PANIC.
#pragma once

#include <string>

namespace ppm::util {

// Aborts the program after printing `msg` with source location.
// Marked noreturn so callers can use it in exhaustive switches.
[[noreturn]] void PanicImpl(const char* file, int line, const std::string& msg);

}  // namespace ppm::util

#define PPM_PANIC(msg) ::ppm::util::PanicImpl(__FILE__, __LINE__, (msg))

// Invariant check that is active in all build types.  Use for conditions
// that guard memory safety or simulator determinism.
#define PPM_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) ::ppm::util::PanicImpl(__FILE__, __LINE__, "check failed: " #cond); \
  } while (0)

#define PPM_CHECK_MSG(cond, msg)                                         \
  do {                                                                   \
    if (!(cond))                                                         \
      ::ppm::util::PanicImpl(__FILE__, __LINE__,                         \
                             std::string("check failed: " #cond ": ") + (msg)); \
  } while (0)

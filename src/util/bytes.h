// bytes.h — portable byte-oriented serialization.
//
// The PPM speaks a genuine wire protocol between local process managers
// (LPMs): every request and reply is flattened to bytes before it enters
// the simulated network and parsed on arrival.  Keeping real encode /
// decode in the loop (rather than passing C++ objects through the
// simulator) means message sizes are honest — Table 1 of the paper is
// specifically about 112-byte messages — and framing bugs are testable.
//
// Encoding rules:
//   * fixed-width integers are little-endian;
//   * strings and blobs are a u32 length followed by raw bytes;
//   * there is no type tagging: reader and writer must agree on layout,
//     exactly as in a hand-rolled 1986-era protocol.  Message-level
//     versioning lives in core/wire.h.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ppm::util {

// Append-only byte sink used to build wire messages.
class ByteWriter {
 public:
  ByteWriter() = default;

  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(std::string_view s);
  void Blob(const std::vector<uint8_t>& b);

  // Appends `n` zero bytes; used to pad probe messages to an exact wire
  // size (e.g. the 112-byte kernel messages of Table 1).
  void Pad(size_t n) { buf_.insert(buf_.end(), n, 0); }

  size_t size() const { return buf_.size(); }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  const std::vector<uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

// Sequential reader over a received message.  All accessors return
// std::nullopt on underflow instead of trusting the peer; a malformed
// message must never crash an LPM (the paper's managers survive sibling
// failures, so they must also survive sibling garbage).
//
// The reader does not own the bytes: it walks a borrowed (pointer,
// length) window, so it decodes owning vectors and zero-copy views
// (core::WireView) alike.  The window must outlive the reader.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : data_(buf.data()), len_(buf.size()) {}
  ByteReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  std::optional<uint8_t> U8() {
    if (remaining() < 1) return std::nullopt;
    return data_[pos_++];
  }
  std::optional<uint16_t> U16() {
    if (remaining() < 2) return std::nullopt;
    uint16_t v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }
  std::optional<uint32_t> U32() {
    if (remaining() < 4) return std::nullopt;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::optional<uint64_t> U64() {
    if (remaining() < 8) return std::nullopt;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  std::optional<int32_t> I32() {
    auto v = U32();
    if (!v) return std::nullopt;
    return static_cast<int32_t>(*v);
  }
  std::optional<int64_t> I64() {
    auto v = U64();
    if (!v) return std::nullopt;
    return static_cast<int64_t>(*v);
  }
  std::optional<bool> Bool() {
    auto v = U8();
    if (!v) return std::nullopt;
    return *v != 0;
  }
  std::optional<std::string> Str();
  std::optional<std::vector<uint8_t>> Blob();

  // Skips `n` bytes of padding; false on underflow.
  bool Skip(size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

  size_t remaining() const { return len_ - pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected), the framing
// checksum of the durable-store journal (src/store/).  Stronger than the
// Fletcher-16 used on wire frames because journal frames must survive a
// different adversary: a crash can cut a frame at any byte, and a torn
// tail must never be mistaken for a record.
uint32_t Crc32(const uint8_t* data, size_t len);
uint32_t Crc32(const std::vector<uint8_t>& data);

}  // namespace ppm::util

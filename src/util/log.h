// log.h — leveled logging for the PPM library.
//
// Log lines carry the simulated-time prefix when a simulation clock is
// registered, so traces read like the event logs the paper's METRIC-style
// monitor would produce.  Logging is off (kWarn) by default: the paper's
// design rule 3 — "overhead proportional to the amount of service
// provided" — applies to our diagnostics too.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace ppm::util {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

const char* ToString(LogLevel lvl);
// Case-insensitive level name ("trace" … "error"); nullopt on anything else.
std::optional<LogLevel> ParseLogLevel(std::string_view name);

class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel lvl) { level_ = lvl; }
  LogLevel level() const { return level_; }

  // The simulation registers a now() provider so every line is stamped
  // with virtual microseconds; nullptr reverts to unstamped output.
  void set_time_source(std::function<uint64_t()> now) { now_ = std::move(now); }

  // Redirects output, e.g. into a test capture buffer.  nullptr restores
  // stderr.
  void set_sink(std::function<void(const std::string&)> sink) { sink_ = std::move(sink); }

  // Restricts output to components whose name starts with `prefix`
  // (e.g. "lpm" keeps "lpm" and "lpm.snapshot" but drops "net").  Empty
  // prefix — the default — passes everything.
  void set_component_filter(std::string prefix) { component_filter_ = std::move(prefix); }
  const std::string& component_filter() const { return component_filter_; }

  bool Enabled(LogLevel lvl) const { return lvl >= level_; }
  void Write(LogLevel lvl, const char* component, const std::string& msg);

 private:
  // Applies the PPM_LOG_LEVEL environment override ("debug", "info", …)
  // so headless runs can raise verbosity without recompiling.
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  std::function<uint64_t()> now_;
  std::function<void(const std::string&)> sink_;
  std::string component_filter_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel lvl, const char* component) : lvl_(lvl), component_(component) {}
  ~LogLine() { Logger::Instance().Write(lvl_, component_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  const char* component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ppm::util

#define PPM_LOG(lvl, component)                                   \
  if (!::ppm::util::Logger::Instance().Enabled(lvl)) {            \
  } else                                                          \
    ::ppm::util::detail::LogLine(lvl, component)

#define PPM_TRACE(component) PPM_LOG(::ppm::util::LogLevel::kTrace, component)
#define PPM_DEBUG(component) PPM_LOG(::ppm::util::LogLevel::kDebug, component)
#define PPM_INFO(component) PPM_LOG(::ppm::util::LogLevel::kInfo, component)
#define PPM_WARN(component) PPM_LOG(::ppm::util::LogLevel::kWarn, component)
#define PPM_ERROR(component) PPM_LOG(::ppm::util::LogLevel::kError, component)

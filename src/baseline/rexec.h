// rexec.h — the 4.2BSD rexec-style baseline.
//
// Paper Section 6: "Rexec allows the creation of remote processes and
// the delivery of signals to these processes.  By itself, however, it is
// insufficient for starting distributed computations since no provision
// is made for flexibly configuring the communication links and open
// files of the remote process, or for separately signalling any children
// of the remote process. […] Remote processes must therefore be
// explicitly hunted for and signalled."
//
// We implement exactly that: a per-host rexecd that can (a) spawn a
// process for an authenticated user and (b) signal *that specific pid*.
// There is no adoption, no tracking, no genealogy, no forwarding: if the
// created process forks, its children are invisible to the caller.  The
// baseline bench shows the functional gap (orphaned grandchildren
// survive a "kill") and the latency gap (rexec is *cheaper* per
// operation, because it does less — the paper's case for the PPM is
// capability, not raw speed).
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "host/host.h"
#include "net/network.h"

namespace ppm::baseline {

constexpr net::Port kRexecPort = 514;

struct RexecResult {
  bool ok = false;
  std::string error;
  host::Pid pid = host::kNoPid;  // for exec requests
};

// The per-host daemon.
class Rexecd : public host::ProcessBody {
 public:
  explicit Rexecd(host::Host& host);

  void OnStart() override;
  void OnShutdown() override;

  uint64_t execs() const { return execs_; }
  uint64_t signals() const { return signals_; }

 private:
  void HandleRequest(net::ConnId conn, const std::vector<uint8_t>& bytes);

  host::Host& host_;
  std::set<net::ConnId> conns_;
  uint64_t execs_ = 0;
  uint64_t signals_ = 0;
};

host::Pid StartRexecd(host::Host& host);

// Client-side calls (issued from a process on `from`).  Each call opens
// a fresh connection to the remote rexecd, exactly like the original.
void RexecSpawn(host::Host& from, const std::string& target_host, const std::string& user,
                const std::string& command,
                std::function<void(const RexecResult&)> done);

void RexecSignal(host::Host& from, const std::string& target_host, const std::string& user,
                 host::Pid pid, host::Signal sig,
                 std::function<void(const RexecResult&)> done);

}  // namespace ppm::baseline

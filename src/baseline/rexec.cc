#include "baseline/rexec.h"

#include "host/calibration.h"
#include "util/bytes.h"
#include "util/panic.h"

namespace ppm::baseline {

using host::BaseCosts;

namespace {

constexpr uint8_t kOpExec = 1;
constexpr uint8_t kOpSignal = 2;
constexpr uint8_t kRespMagic = 0x9a;

std::vector<uint8_t> EncodeExec(const std::string& user, const std::string& command) {
  util::ByteWriter w;
  w.U8(kOpExec);
  w.Str(user);
  w.Str(command);
  return w.Take();
}

std::vector<uint8_t> EncodeSignal(const std::string& user, host::Pid pid, host::Signal sig) {
  util::ByteWriter w;
  w.U8(kOpSignal);
  w.Str(user);
  w.I32(pid);
  w.U8(static_cast<uint8_t>(sig));
  return w.Take();
}

std::vector<uint8_t> EncodeResult(const RexecResult& r) {
  util::ByteWriter w;
  w.U8(kRespMagic);
  w.Bool(r.ok);
  w.Str(r.error);
  w.I32(r.pid);
  return w.Take();
}

std::optional<RexecResult> DecodeResult(const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  auto magic = r.U8();
  if (!magic || *magic != kRespMagic) return std::nullopt;
  RexecResult out;
  auto ok = r.Bool();
  auto err = r.Str();
  auto pid = r.I32();
  if (!ok || !err || !pid) return std::nullopt;
  out.ok = *ok;
  out.error = *err;
  out.pid = *pid;
  return out;
}

}  // namespace

Rexecd::Rexecd(host::Host& host) : host_(host) {}

void Rexecd::OnStart() {
  host_.network().Listen(host_.net_id(), kRexecPort,
                         [this](net::ConnId conn, net::SocketAddr) {
                           conns_.insert(conn);
                           net::ConnCallbacks cb;
                           cb.on_data = [this](net::ConnId c,
                                               const std::vector<uint8_t>& b) {
                             HandleRequest(c, b);
                           };
                           cb.on_close = [this](net::ConnId c, net::CloseReason) {
                             conns_.erase(c);
                           };
                           return cb;
                         });
}

void Rexecd::OnShutdown() {
  if (host_.up()) {
    host_.network().Unlisten(host_.net_id(), kRexecPort);
    for (net::ConnId c : conns_) host_.network().Close(c);
  }
  conns_.clear();
}

void Rexecd::HandleRequest(net::ConnId conn, const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  auto op = r.U8();
  RexecResult result;
  sim::SimDuration cost = host_.kernel().Charge(pid(), BaseCosts::kDispatch);
  if (op && *op == kOpExec) {
    auto user = r.Str();
    auto command = r.Str();
    if (!user || !command) {
      result.error = "malformed request";
    } else if (auto uid = host_.users().UidOf(*user)) {
      ++execs_;
      cost += host_.kernel().Charge(pid(), BaseCosts::kForkExec);
      // The child belongs to rexecd's process tree, not the caller's —
      // precisely why shell job control cannot reach it.
      result.pid = host_.kernel().Spawn(pid(), *uid, *command, nullptr,
                                        host::ProcState::kRunning);
      result.ok = true;
    } else {
      result.error = "unknown user";
    }
  } else if (op && *op == kOpSignal) {
    auto user = r.Str();
    auto target = r.I32();
    auto sig = r.U8();
    if (!user || !target || !sig) {
      result.error = "malformed request";
    } else if (auto uid = host_.users().UidOf(*user)) {
      ++signals_;
      cost += host_.kernel().Charge(pid(), BaseCosts::kSignal);
      std::string err;
      // Signals exactly one pid; descendants are not consulted.
      result.ok = host_.kernel().PostSignal(*target, static_cast<host::Signal>(*sig),
                                            *uid, &err);
      result.error = err;
    } else {
      result.error = "unknown user";
    }
  } else {
    result.error = "bad opcode";
  }
  host_.simulator().ScheduleIn(cost, [this, conn, result] {
    if (!host_.up()) return;
    host_.network().Send(conn, EncodeResult(result));
    host_.network().Close(conn);
    conns_.erase(conn);
  }, "rexecd-reply");
}

host::Pid StartRexecd(host::Host& host) {
  auto body = std::make_unique<Rexecd>(host);
  return host.kernel().Spawn(host::kNoPid, host::kRootUid, "rexecd", std::move(body),
                             host::ProcState::kSleeping);
}

namespace {

// One-shot request helper shared by spawn and signal.
void RexecCall(host::Host& from, const std::string& target_host,
               std::vector<uint8_t> request,
               std::function<void(const RexecResult&)> done) {
  auto target = from.network().FindHost(target_host);
  if (!target) {
    RexecResult r;
    r.error = "unknown host";
    done(r);
    return;
  }
  auto done_shared = std::make_shared<std::function<void(const RexecResult&)>>(std::move(done));
  net::ConnCallbacks cb;
  cb.on_data = [&from, done_shared](net::ConnId c, const std::vector<uint8_t>& bytes) {
    auto result = DecodeResult(bytes);
    from.network().Close(c);
    if (*done_shared) {
      auto fn = std::move(*done_shared);
      *done_shared = nullptr;
      RexecResult failed;
      failed.error = "bad response";
      fn(result ? *result : failed);
    }
  };
  cb.on_close = [done_shared](net::ConnId, net::CloseReason) {
    if (*done_shared) {
      auto fn = std::move(*done_shared);
      *done_shared = nullptr;
      RexecResult r;
      r.error = "connection lost";
      fn(r);
    }
  };
  from.network().Connect(from.net_id(), net::SocketAddr{*target, kRexecPort}, std::move(cb),
                         [&from, request = std::move(request), done_shared](
                             std::optional<net::ConnId> c) {
                           if (!c) {
                             if (*done_shared) {
                               auto fn = std::move(*done_shared);
                               *done_shared = nullptr;
                               RexecResult r;
                               r.error = "rexecd unreachable";
                               fn(r);
                             }
                             return;
                           }
                           from.network().Send(*c, request);
                         });
}

}  // namespace

void RexecSpawn(host::Host& from, const std::string& target_host, const std::string& user,
                const std::string& command,
                std::function<void(const RexecResult&)> done) {
  RexecCall(from, target_host, EncodeExec(user, command), std::move(done));
}

void RexecSignal(host::Host& from, const std::string& target_host, const std::string& user,
                 host::Pid pid, host::Signal sig,
                 std::function<void(const RexecResult&)> done) {
  RexecCall(from, target_host, EncodeSignal(user, pid, sig), std::move(done));
}

}  // namespace ppm::baseline

// central.h — the centralized process-control baseline.
//
// Paper Section 6: "in the Summer of 1984, a process control mechanism
// had been designed and implemented for 4.2BSD […] It required all
// processes to have a control socket, and there was a centralized system
// wide process control facility."  The paper credits that experience for
// several PPM design decisions — chiefly per-user decentralization:
// "It is not possible to require a site to be omniscient and still
// expect such a mechanism to scale well."  (Section 3.)
//
// We implement the omniscient variant: one CentralManager process on a
// designated host holds the registry of *every* registered process in
// the network (all users), and every control or snapshot operation goes
// through it.  Each host runs a CentralAgent that executes creations and
// signals on the manager's behalf.  The manager serializes its work (one
// request at a time, with per-request CPU cost), so queueing delay grows
// with cluster size — the scaling failure bench_baselines measures
// against the PPM's per-user, per-host managers.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "host/host.h"
#include "net/network.h"

namespace ppm::baseline {

constexpr net::Port kCentralPort = 700;
constexpr net::Port kAgentPort = 701;

struct CentralEntry {
  std::string host;
  host::Pid pid;
  host::Uid uid;
  std::string command;
};

struct CentralResult {
  bool ok = false;
  std::string error;
  std::string host;           // of a created process
  host::Pid pid = host::kNoPid;
  std::vector<CentralEntry> entries;  // snapshot results
};

// Per-host executor working for the manager.
class CentralAgent : public host::ProcessBody {
 public:
  explicit CentralAgent(host::Host& host);
  void OnStart() override;
  void OnShutdown() override;

 private:
  void HandleRequest(net::ConnId conn, const std::vector<uint8_t>& bytes);
  host::Host& host_;
  std::set<net::ConnId> conns_;
};

// The omniscient site.
class CentralManager : public host::ProcessBody {
 public:
  explicit CentralManager(host::Host& host);
  void OnStart() override;
  void OnShutdown() override;

  size_t registry_size() const { return registry_.size(); }
  uint64_t requests_served() const { return served_; }
  // Peak queueing delay observed at the manager, the scaling metric.
  sim::SimDuration max_queue_delay() const { return max_queue_delay_; }

 private:
  struct Job {
    net::ConnId conn;
    std::vector<uint8_t> request;
    sim::SimTime enqueued;
  };

  void HandleRequest(net::ConnId conn, const std::vector<uint8_t>& bytes);
  void PumpQueue();
  void ExecuteJob(const Job& job);
  void Reply(net::ConnId conn, const CentralResult& result);

  host::Host& host_;
  std::set<net::ConnId> conns_;
  std::map<uint64_t, CentralEntry> registry_;  // key: dense id
  uint64_t next_key_ = 1;
  std::deque<Job> queue_;
  bool busy_ = false;
  uint64_t served_ = 0;
  sim::SimDuration max_queue_delay_ = 0;
};

host::Pid StartCentralAgent(host::Host& host);
host::Pid StartCentralManager(host::Host& host);

// Client calls, issued from any host toward the manager on `manager_host`.
void CentralSpawn(host::Host& from, const std::string& manager_host,
                  const std::string& target_host, const std::string& user,
                  const std::string& command,
                  std::function<void(const CentralResult&)> done);

void CentralSignal(host::Host& from, const std::string& manager_host,
                   const std::string& target_host, host::Pid pid, const std::string& user,
                   host::Signal sig, std::function<void(const CentralResult&)> done);

// Global snapshot of one user's registered processes.
void CentralSnapshot(host::Host& from, const std::string& manager_host,
                     const std::string& user,
                     std::function<void(const CentralResult&)> done);

}  // namespace ppm::baseline

#include "baseline/central.h"

#include "host/calibration.h"
#include "util/bytes.h"
#include "util/panic.h"

namespace ppm::baseline {

using host::BaseCosts;

namespace {

constexpr uint8_t kOpSpawn = 1;
constexpr uint8_t kOpSignal = 2;
constexpr uint8_t kOpSnapshot = 3;
constexpr uint8_t kRespMagic = 0x77;

std::vector<uint8_t> EncodeSpawn(const std::string& target_host, const std::string& user,
                                 const std::string& command) {
  util::ByteWriter w;
  w.U8(kOpSpawn);
  w.Str(target_host);
  w.Str(user);
  w.Str(command);
  return w.Take();
}

std::vector<uint8_t> EncodeSignal(const std::string& target_host, host::Pid pid,
                                  const std::string& user, host::Signal sig) {
  util::ByteWriter w;
  w.U8(kOpSignal);
  w.Str(target_host);
  w.I32(pid);
  w.Str(user);
  w.U8(static_cast<uint8_t>(sig));
  return w.Take();
}

std::vector<uint8_t> EncodeSnapshot(const std::string& user) {
  util::ByteWriter w;
  w.U8(kOpSnapshot);
  w.Str(user);
  return w.Take();
}

std::vector<uint8_t> EncodeResult(const CentralResult& r) {
  util::ByteWriter w;
  w.U8(kRespMagic);
  w.Bool(r.ok);
  w.Str(r.error);
  w.Str(r.host);
  w.I32(r.pid);
  w.U32(static_cast<uint32_t>(r.entries.size()));
  for (const CentralEntry& e : r.entries) {
    w.Str(e.host);
    w.I32(e.pid);
    w.I32(e.uid);
    w.Str(e.command);
  }
  return w.Take();
}

std::optional<CentralResult> DecodeResult(const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  auto magic = r.U8();
  if (!magic || *magic != kRespMagic) return std::nullopt;
  CentralResult out;
  auto ok = r.Bool();
  auto err = r.Str();
  auto host = r.Str();
  auto pid = r.I32();
  auto n = r.U32();
  if (!ok || !err || !host || !pid || !n) return std::nullopt;
  out.ok = *ok;
  out.error = *err;
  out.host = *host;
  out.pid = *pid;
  for (uint32_t i = 0; i < *n; ++i) {
    CentralEntry e;
    auto eh = r.Str();
    auto ep = r.I32();
    auto eu = r.I32();
    auto ec = r.Str();
    if (!eh || !ep || !eu || !ec) return std::nullopt;
    e.host = *eh;
    e.pid = *ep;
    e.uid = *eu;
    e.command = *ec;
    out.entries.push_back(std::move(e));
  }
  return out;
}

// Generic one-shot call over a fresh circuit.
void OneShotCall(host::Host& from, const std::string& to_host, net::Port port,
                 std::vector<uint8_t> request,
                 std::function<void(const CentralResult&)> done) {
  auto target = from.network().FindHost(to_host);
  if (!target) {
    CentralResult r;
    r.error = "unknown host";
    done(r);
    return;
  }
  auto done_shared =
      std::make_shared<std::function<void(const CentralResult&)>>(std::move(done));
  net::ConnCallbacks cb;
  cb.on_data = [&from, done_shared](net::ConnId c, const std::vector<uint8_t>& bytes) {
    auto result = DecodeResult(bytes);
    from.network().Close(c);
    if (*done_shared) {
      auto fn = std::move(*done_shared);
      *done_shared = nullptr;
      CentralResult failed;
      failed.error = "bad response";
      fn(result ? *result : failed);
    }
  };
  cb.on_close = [done_shared](net::ConnId, net::CloseReason) {
    if (*done_shared) {
      auto fn = std::move(*done_shared);
      *done_shared = nullptr;
      CentralResult r;
      r.error = "connection lost";
      fn(r);
    }
  };
  from.network().Connect(from.net_id(), net::SocketAddr{*target, port}, std::move(cb),
                         [&from, request = std::move(request), done_shared](
                             std::optional<net::ConnId> c) {
                           if (!c) {
                             if (*done_shared) {
                               auto fn = std::move(*done_shared);
                               *done_shared = nullptr;
                               CentralResult r;
                               r.error = "service unreachable";
                               fn(r);
                             }
                             return;
                           }
                           from.network().Send(*c, request);
                         });
}

}  // namespace

// --- agent ------------------------------------------------------------------

CentralAgent::CentralAgent(host::Host& host) : host_(host) {}

void CentralAgent::OnStart() {
  host_.network().Listen(host_.net_id(), kAgentPort, [this](net::ConnId conn, net::SocketAddr) {
    conns_.insert(conn);
    net::ConnCallbacks cb;
    cb.on_data = [this](net::ConnId c, const std::vector<uint8_t>& b) { HandleRequest(c, b); };
    cb.on_close = [this](net::ConnId c, net::CloseReason) { conns_.erase(c); };
    return cb;
  });
}

void CentralAgent::OnShutdown() {
  if (host_.up()) {
    host_.network().Unlisten(host_.net_id(), kAgentPort);
    for (net::ConnId c : conns_) host_.network().Close(c);
  }
  conns_.clear();
}

void CentralAgent::HandleRequest(net::ConnId conn, const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  auto op = r.U8();
  CentralResult result;
  sim::SimDuration cost = host_.kernel().Charge(pid(), BaseCosts::kDispatch);
  if (op && *op == kOpSpawn) {
    auto target_host = r.Str();
    auto user = r.Str();
    auto command = r.Str();
    if (user && command) {
      if (auto uid = host_.users().UidOf(*user)) {
        cost += host_.kernel().Charge(pid(), BaseCosts::kForkExec);
        result.pid = host_.kernel().Spawn(pid(), *uid, *command, nullptr,
                                          host::ProcState::kRunning);
        result.host = host_.name();
        result.ok = true;
      } else {
        result.error = "unknown user";
      }
    } else {
      result.error = "malformed";
    }
  } else if (op && *op == kOpSignal) {
    auto target_host = r.Str();
    auto target = r.I32();
    auto user = r.Str();
    auto sig = r.U8();
    (void)target_host;
    if (target && user && sig) {
      if (auto uid = host_.users().UidOf(*user)) {
        cost += host_.kernel().Charge(pid(), BaseCosts::kSignal);
        std::string err;
        result.ok = host_.kernel().PostSignal(*target, static_cast<host::Signal>(*sig),
                                              *uid, &err);
        result.error = err;
      } else {
        result.error = "unknown user";
      }
    } else {
      result.error = "malformed";
    }
  } else {
    result.error = "bad opcode";
  }
  host_.simulator().ScheduleIn(cost, [this, conn, result] {
    if (!host_.up()) return;
    host_.network().Send(conn, EncodeResult(result));
    host_.network().Close(conn);
    conns_.erase(conn);
  }, "central-agent-reply");
}

// --- manager -----------------------------------------------------------------

CentralManager::CentralManager(host::Host& host) : host_(host) {}

void CentralManager::OnStart() {
  host_.network().Listen(host_.net_id(), kCentralPort,
                         [this](net::ConnId conn, net::SocketAddr) {
                           conns_.insert(conn);
                           net::ConnCallbacks cb;
                           cb.on_data = [this](net::ConnId c, const std::vector<uint8_t>& b) {
                             HandleRequest(c, b);
                           };
                           cb.on_close = [this](net::ConnId c, net::CloseReason) {
                             conns_.erase(c);
                           };
                           return cb;
                         });
}

void CentralManager::OnShutdown() {
  if (host_.up()) {
    host_.network().Unlisten(host_.net_id(), kCentralPort);
    for (net::ConnId c : conns_) host_.network().Close(c);
  }
  conns_.clear();
}

void CentralManager::HandleRequest(net::ConnId conn, const std::vector<uint8_t>& bytes) {
  queue_.push_back(Job{conn, bytes, host_.simulator().Now()});
  PumpQueue();
}

void CentralManager::PumpQueue() {
  // The omniscient site serves one request at a time: this serialization
  // is exactly what makes it a bottleneck at scale.
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  sim::SimDuration waited =
      static_cast<sim::SimDuration>(host_.simulator().Now() - job.enqueued);
  if (waited > max_queue_delay_) max_queue_delay_ = waited;
  sim::SimDuration cost = host_.kernel().Charge(pid(), BaseCosts::kDispatch);
  cost += host_.kernel().Charge(pid(), BaseCosts::kHandlerWork);
  host_.simulator().ScheduleIn(cost, [this, job = std::move(job)] {
    if (!host_.up()) return;
    ExecuteJob(job);
    busy_ = false;
    PumpQueue();
  }, "central-mgr-serve");
}

void CentralManager::ExecuteJob(const Job& job) {
  ++served_;
  util::ByteReader r(job.request);
  auto op = r.U8();
  if (op && *op == kOpSnapshot) {
    auto user = r.Str();
    CentralResult result;
    if (user) {
      auto uid = host_.users().UidOf(*user);
      result.ok = true;
      for (const auto& [key, entry] : registry_) {
        if (uid && entry.uid == *uid) result.entries.push_back(entry);
      }
    } else {
      result.error = "malformed";
    }
    Reply(job.conn, result);
    return;
  }
  if (op && *op == kOpSpawn) {
    auto target_host = r.Str();
    auto user = r.Str();
    auto command = r.Str();
    if (!target_host || !user || !command) {
      CentralResult result;
      result.error = "malformed";
      Reply(job.conn, result);
      return;
    }
    net::ConnId reply_conn = job.conn;
    std::string u = *user;
    std::string cmd = *command;
    OneShotCall(host_, *target_host, kAgentPort, EncodeSpawn(*target_host, u, cmd),
                [this, reply_conn, u, cmd](const CentralResult& agent_result) {
                  if (agent_result.ok) {
                    auto uid = host_.users().UidOf(u);
                    registry_[next_key_++] = CentralEntry{agent_result.host,
                                                          agent_result.pid,
                                                          uid.value_or(-1), cmd};
                  }
                  Reply(reply_conn, agent_result);
                });
    return;
  }
  if (op && *op == kOpSignal) {
    auto target_host = r.Str();
    auto target = r.I32();
    auto user = r.Str();
    auto sig = r.U8();
    if (!target_host || !target || !user || !sig) {
      CentralResult result;
      result.error = "malformed";
      Reply(job.conn, result);
      return;
    }
    net::ConnId reply_conn = job.conn;
    OneShotCall(host_, *target_host, kAgentPort,
                EncodeSignal(*target_host, *target, *user,
                             static_cast<host::Signal>(*sig)),
                [this, reply_conn](const CentralResult& agent_result) {
                  Reply(reply_conn, agent_result);
                });
    return;
  }
  CentralResult result;
  result.error = "bad opcode";
  Reply(job.conn, result);
}

void CentralManager::Reply(net::ConnId conn, const CentralResult& result) {
  if (!host_.up()) return;
  host_.network().Send(conn, EncodeResult(result));
  host_.network().Close(conn);
  conns_.erase(conn);
}

// --- boot & client helpers --------------------------------------------------------

host::Pid StartCentralAgent(host::Host& host) {
  auto body = std::make_unique<CentralAgent>(host);
  return host.kernel().Spawn(host::kNoPid, host::kRootUid, "central-agent",
                             std::move(body), host::ProcState::kSleeping);
}

host::Pid StartCentralManager(host::Host& host) {
  auto body = std::make_unique<CentralManager>(host);
  return host.kernel().Spawn(host::kNoPid, host::kRootUid, "central-mgr",
                             std::move(body), host::ProcState::kSleeping);
}

void CentralSpawn(host::Host& from, const std::string& manager_host,
                  const std::string& target_host, const std::string& user,
                  const std::string& command,
                  std::function<void(const CentralResult&)> done) {
  OneShotCall(from, manager_host, kCentralPort, EncodeSpawn(target_host, user, command),
              std::move(done));
}

void CentralSignal(host::Host& from, const std::string& manager_host,
                   const std::string& target_host, host::Pid pid, const std::string& user,
                   host::Signal sig, std::function<void(const CentralResult&)> done) {
  OneShotCall(from, manager_host, kCentralPort,
              EncodeSignal(target_host, pid, user, sig), std::move(done));
}

void CentralSnapshot(host::Host& from, const std::string& manager_host,
                     const std::string& user,
                     std::function<void(const CentralResult&)> done) {
  OneShotCall(from, manager_host, kCentralPort, EncodeSnapshot(user), std::move(done));
}

}  // namespace ppm::baseline

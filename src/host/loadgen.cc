#include "host/loadgen.h"

#include "util/panic.h"

namespace ppm::host {

LoadGenerator::LoadGenerator(Host& host, Uid uid, int n, double duty,
                             sim::SimDuration period)
    : host_(host),
      host_generation_(host.generation()),
      duty_(duty),
      period_(period),
      target_(static_cast<double>(n) * duty) {
  PPM_CHECK(duty >= 0.0 && duty <= 1.0);
  PPM_CHECK(n >= 0);
  for (int i = 0; i < n; ++i) {
    Pid pid = host_.kernel().Spawn(kNoPid, uid, "loadgen", nullptr,
                                   ProcState::kSleeping);
    pids_.push_back(pid);
    if (duty_ >= 1.0) {
      host_.kernel().SetRunnable(pid);
      continue;  // pinned on the run queue forever
    }
    if (duty_ <= 0.0) continue;
    // Stagger phases across the period.
    sim::SimDuration phase = period_ * i / n;
    ScheduleToggle(pid, true, phase);
  }
}

LoadGenerator::~LoadGenerator() { Stop(); }

void LoadGenerator::ScheduleToggle(Pid pid, bool to_running, sim::SimDuration delay) {
  host_.simulator().ScheduleIn(delay, [this, pid, to_running] {
    if (stopped_) return;
    // A crash/reboot replaced the kernel; our pids are meaningless now.
    if (!host_.up() || host_.generation() != host_generation_) return;
    Process* p = host_.kernel().Find(pid);
    if (!p || !p->alive()) return;
    sim::SimDuration on = static_cast<sim::SimDuration>(static_cast<double>(period_) * duty_);
    sim::SimDuration off = period_ - on;
    if (to_running) {
      host_.kernel().SetRunnable(pid);
      p->rusage.cpu_time += on;  // it will burn the whole on-phase
      ScheduleToggle(pid, false, on);
    } else {
      host_.kernel().SetSleeping(pid);
      ScheduleToggle(pid, true, off);
    }
  }, "loadgen-toggle");
}

void LoadGenerator::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (!host_.up() || host_.generation() != host_generation_) return;
  for (Pid pid : pids_) {
    Process* p = host_.kernel().Find(pid);
    if (p && p->alive()) {
      host_.kernel().PostSignal(pid, Signal::kSigKill, kRootUid);
    }
  }
}

}  // namespace ppm::host

#include "host/kernel.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"
#include "util/panic.h"

namespace ppm::host {

const char* ToString(ProcState s) {
  switch (s) {
    case ProcState::kRunning: return "running";
    case ProcState::kSleeping: return "sleeping";
    case ProcState::kStopped: return "stopped";
    case ProcState::kZombie: return "zombie";
    case ProcState::kDead: return "dead";
  }
  return "?";
}

const char* ToString(Signal s) {
  switch (s) {
    case Signal::kSigHup: return "SIGHUP";
    case Signal::kSigInt: return "SIGINT";
    case Signal::kSigKill: return "SIGKILL";
    case Signal::kSigUsr1: return "SIGUSR1";
    case Signal::kSigTerm: return "SIGTERM";
    case Signal::kSigStop: return "SIGSTOP";
    case Signal::kSigCont: return "SIGCONT";
  }
  return "SIG?";
}

const char* ToString(KEvent e) {
  switch (e) {
    case KEvent::kFork: return "fork";
    case KEvent::kExec: return "exec";
    case KEvent::kExit: return "exit";
    case KEvent::kSignal: return "signal";
    case KEvent::kStop: return "stop";
    case KEvent::kContinue: return "continue";
    case KEvent::kFileOpen: return "file-open";
    case KEvent::kFileClose: return "file-close";
    case KEvent::kIpcSend: return "ipc-send";
    case KEvent::kIpcRecv: return "ipc-recv";
  }
  return "?";
}

namespace {
uint32_t EventFlag(KEvent e) {
  switch (e) {
    case KEvent::kFork: return kTraceFork;
    case KEvent::kExec: return kTraceExec;
    case KEvent::kExit: return kTraceExit;
    case KEvent::kSignal: return kTraceSignal;
    case KEvent::kStop:
    case KEvent::kContinue: return kTraceStateChange;
    case KEvent::kFileOpen:
    case KEvent::kFileClose: return kTraceFile;
    case KEvent::kIpcSend:
    case KEvent::kIpcRecv: return kTraceIpc;
  }
  return 0;
}
}  // namespace

Kernel::Kernel(sim::Simulator& simulator, HostType type, std::string host_name,
               sim::SimDuration la_tau)
    : sim_(simulator), type_(type), host_name_(std::move(host_name)), la_tau_(la_tau) {
  // init: the root of all reparenting, never exits.
  Process init;
  init.pid = kInitPid;
  init.ppid = 0;
  init.uid = kRootUid;
  init.command = "init";
  init.state = ProcState::kSleeping;
  init.start_time = sim_.Now();
  table_.emplace(kInitPid, std::move(init));
}

Kernel::~Kernel() = default;

// --- load estimator ------------------------------------------------------

void Kernel::UpdateLoad() {
  sim::SimTime now = sim_.Now();
  if (now <= la_updated_) {
    la_updated_ = now;
    return;
  }
  double dt = static_cast<double>(now - la_updated_);
  double alpha = std::exp(-dt / static_cast<double>(la_tau_));
  la_ = la_ * alpha + static_cast<double>(run_count_) * (1.0 - alpha);
  la_updated_ = now;
}

void Kernel::EnterRunQueue() {
  UpdateLoad();
  ++run_count_;
}

void Kernel::LeaveRunQueue() {
  UpdateLoad();
  --run_count_;
  PPM_CHECK(run_count_ >= 0);
}

double Kernel::LoadAverage() {
  UpdateLoad();
  return la_;
}

sim::SimDuration Kernel::Charge(Pid pid, sim::SimDuration base) {
  sim::SimDuration cost = ScaledCost(type_, base, LoadAverage());
  if (Process* p = Find(pid)) p->rusage.cpu_time += cost;
  return cost;
}

sim::SimDuration Kernel::CurrentKernelMsgDelay() {
  return KernelMsgDelay(type_, LoadAverage());
}

// --- lifecycle -------------------------------------------------------------

Pid Kernel::Spawn(Pid parent, Uid uid, std::string command,
                  std::unique_ptr<ProcessBody> body, ProcState initial,
                  uint32_t trace_mask, Pid adopter) {
  PPM_CHECK(initial == ProcState::kRunning || initial == ProcState::kSleeping);
  Process* par = (parent == kNoPid) ? Find(kInitPid) : Find(parent);
  PPM_CHECK_MSG(par != nullptr && par->alive(), "spawn from dead parent");

  Pid pid = next_pid_++;
  Process proc;
  proc.pid = pid;
  proc.ppid = par->pid;
  proc.uid = uid;
  proc.command = std::move(command);
  proc.state = initial;
  proc.start_time = sim_.Now();
  // Adoption is hereditary: children of a tracked process are tracked by
  // the same LPM from birth (paper Section 4).  An explicit adopter (the
  // LPM acting as creation server) overrides inheritance.
  if (adopter != kNoPid) {
    proc.trace_mask = trace_mask;
    proc.adopter = adopter;
  } else {
    proc.trace_mask = par->trace_mask;
    proc.adopter = par->adopter;
  }
  if (body) body->set_pid(pid);
  proc.body = std::move(body);
  par->children.push_back(pid);
  par->rusage.forks++;
  ++stats_.forks;
  if (initial == ProcState::kRunning) EnterRunQueue();

  ProcessBody* body_ptr = proc.body.get();
  table_.emplace(pid, std::move(proc));

  if (par->trace_mask & kTraceFork) {
    KernelEvent ev;
    ev.kind = KEvent::kFork;
    ev.pid = par->pid;
    ev.other = pid;
    EmitEvent(*Find(par->pid), ev);
  }
  if (Process* self = Find(pid); self && (self->trace_mask & kTraceExec)) {
    KernelEvent ev;
    ev.kind = KEvent::kExec;
    ev.pid = pid;
    ev.detail = Find(pid)->command;
    EmitEvent(*self, ev);
  }
  if (body_ptr) {
    sim_.ScheduleIn(0, [this, pid, body_ptr] {
      // The body may have died between scheduling and firing.
      Process* p = Find(pid);
      if (p && p->alive() && p->body.get() == body_ptr) body_ptr->OnStart();
    }, "proc-start");
  }
  return pid;
}

void Kernel::ReparentChildren(Process& proc) {
  Process* init = Find(kInitPid);
  for (Pid child_pid : proc.children) {
    Process* child = Find(child_pid);
    if (!child) continue;
    child->ppid = kInitPid;
    if (child->state == ProcState::kZombie) {
      // init reaps immediately.
      child->state = ProcState::kDead;
      child->body.reset();
    } else {
      init->children.push_back(child_pid);
    }
  }
  proc.children.clear();
}

void Kernel::Terminate(Process& proc, bool by_signal, Signal sig, int status) {
  if (!proc.alive()) return;
  if (proc.state == ProcState::kRunning) LeaveRunQueue();
  if (proc.body) proc.body->OnShutdown();
  proc.state = ProcState::kZombie;
  proc.end_time = sim_.Now();
  proc.exit_status = status;
  proc.killed_by_signal = by_signal;
  if (by_signal) proc.death_signal = sig;
  proc.body.reset();
  ++stats_.exits;

  if (proc.trace_mask & kTraceExit) {
    KernelEvent ev;
    ev.kind = KEvent::kExit;
    ev.pid = proc.pid;
    ev.status = status;
    if (by_signal) {
      ev.sig = sig;
      ev.other = kNoPid;
    }
    EmitEvent(proc, ev);
  }

  ReparentChildren(proc);

  // If the parent cannot or will not wait (init, or already gone), the
  // zombie is reaped at once.
  Process* parent = Find(proc.ppid);
  if (!parent || !parent->alive() || proc.ppid == kInitPid) {
    proc.state = ProcState::kDead;
  }
}

void Kernel::Exit(Pid pid, int status) {
  Process* proc = Find(pid);
  PPM_CHECK_MSG(proc != nullptr, "exit of unknown pid");
  PPM_CHECK_MSG(pid != kInitPid, "init cannot exit");
  Terminate(*proc, false, Signal::kSigTerm, status);
}

std::vector<Pid> Kernel::Reap(Pid parent) {
  Process* par = Find(parent);
  std::vector<Pid> reaped;
  if (!par) return reaped;
  for (auto it = par->children.begin(); it != par->children.end();) {
    Process* child = Find(*it);
    if (child && child->state == ProcState::kZombie) {
      child->state = ProcState::kDead;
      child->body.reset();
      reaped.push_back(*it);
      it = par->children.erase(it);
    } else {
      ++it;
    }
  }
  return reaped;
}

bool Kernel::PostSignal(Pid target, Signal sig, Uid sender_uid, std::string* err) {
  Process* proc = Find(target);
  if (!proc || proc->state == ProcState::kDead) {
    if (err) *err = "no such process";
    return false;
  }
  if (sender_uid != kRootUid && sender_uid != proc->uid) {
    if (err) *err = "permission denied";
    return false;
  }
  if (proc->state == ProcState::kZombie) return true;  // accepted, no effect
  ++stats_.signals_posted;

  switch (sig) {
    case Signal::kSigStop: {
      if (proc->state == ProcState::kStopped) return true;
      if (proc->state == ProcState::kRunning) LeaveRunQueue();
      proc->state = ProcState::kStopped;
      if (proc->trace_mask & kTraceStateChange) {
        KernelEvent ev;
        ev.kind = KEvent::kStop;
        ev.pid = target;
        ev.sig = sig;
        EmitEvent(*proc, ev);
      }
      return true;
    }
    case Signal::kSigCont: {
      if (proc->state != ProcState::kStopped) return true;
      proc->state = ProcState::kRunning;
      EnterRunQueue();
      if (proc->trace_mask & kTraceStateChange) {
        KernelEvent ev;
        ev.kind = KEvent::kContinue;
        ev.pid = target;
        ev.sig = sig;
        EmitEvent(*proc, ev);
      }
      return true;
    }
    case Signal::kSigKill: {
      Terminate(*proc, true, sig, 128 + static_cast<int>(sig));
      return true;
    }
    default: {
      // Catchable signals: a stopped process queues nothing in this
      // model — delivery happens now, body first.
      bool consumed = false;
      if (proc->body) consumed = proc->body->OnSignal(sig);
      if (proc->trace_mask & kTraceSignal) {
        KernelEvent ev;
        ev.kind = KEvent::kSignal;
        ev.pid = target;
        ev.sig = sig;
        EmitEvent(*proc, ev);
      }
      if (!consumed) Terminate(*proc, true, sig, 128 + static_cast<int>(sig));
      return true;
    }
  }
}

// --- adoption ---------------------------------------------------------------

bool Kernel::Adopt(Pid adopter, Pid target, uint32_t trace_mask, Uid requester_uid,
                   std::vector<Pid>* adopted, std::string* err) {
  Process* lpm = Find(adopter);
  Process* proc = Find(target);
  if (!lpm || !lpm->alive()) {
    if (err) *err = "adopter not alive";
    return false;
  }
  if (!proc || !proc->alive()) {
    if (err) *err = "no such process";
    return false;
  }
  // Paper Section 4: "The adoption operations fail if the process and
  // the PPM belong to different users."
  if (proc->uid != requester_uid || lpm->uid != requester_uid) {
    if (err) *err = "permission denied: uid mismatch";
    return false;
  }
  // Breadth-first over live descendants; pid order within each level.
  std::vector<Pid> frontier{target};
  while (!frontier.empty()) {
    Pid pid = frontier.front();
    frontier.erase(frontier.begin());
    Process* p = Find(pid);
    if (!p || !p->alive()) continue;
    p->trace_mask = trace_mask;
    p->adopter = adopter;
    if (adopted) adopted->push_back(pid);
    std::vector<Pid> kids = p->children;
    std::sort(kids.begin(), kids.end());
    for (Pid k : kids) frontier.push_back(k);
  }
  return true;
}

bool Kernel::SetTraceMask(Pid target, uint32_t trace_mask, Uid requester_uid,
                          std::string* err) {
  Process* proc = Find(target);
  if (!proc || !proc->alive()) {
    if (err) *err = "no such process";
    return false;
  }
  if (proc->uid != requester_uid && requester_uid != kRootUid) {
    if (err) *err = "permission denied";
    return false;
  }
  if (proc->adopter == kNoPid) {
    if (err) *err = "process not adopted";
    return false;
  }
  proc->trace_mask = trace_mask;
  return true;
}

// --- event sink ---------------------------------------------------------------

void Kernel::RegisterEventSink(Uid uid, Pid lpm_pid, EventSink sink) {
  // Last writer wins: if a second manager registers for the same user
  // (the duplicate-LPM anomaly after a volatile-registry pmd crash), the
  // first silently stops receiving events — one concrete way the paper's
  // "mechanism does not operate correctly" plays out.
  sinks_[uid] = Sink{lpm_pid, std::move(sink)};
}

void Kernel::UnregisterEventSink(Uid uid) { sinks_.erase(uid); }

bool Kernel::HasEventSink(Uid uid) const { return sinks_.count(uid) > 0; }

void Kernel::EmitEvent(const Process& proc, KernelEvent ev) {
  if (!(proc.trace_mask & EventFlag(ev.kind))) return;
  auto it = sinks_.find(proc.uid);
  if (it == sinks_.end()) {
    ++stats_.events_dropped;
    return;
  }
  ++stats_.events_emitted;
  ev.at = sim_.Now();
  // Delivery cost is the quantity of Table 1: a 112-byte copy from the
  // kernel to the LPM's kernel socket, load- and machine-dependent.
  sim::SimDuration delay = CurrentKernelMsgDelay();
  Pid lpm_pid = it->second.lpm_pid;
  Uid uid = proc.uid;
  sim_.ScheduleIn(delay, [this, ev, uid, lpm_pid] {
    // Deliver only if the same LPM is still registered (it may have died
    // or been replaced while the message was in flight).
    auto sit = sinks_.find(uid);
    if (sit == sinks_.end() || sit->second.lpm_pid != lpm_pid) return;
    sit->second.fn(ev);
  }, "kernel-event");
}

// --- introspection -------------------------------------------------------------

Process* Kernel::Find(Pid pid) {
  auto it = table_.find(pid);
  return it == table_.end() ? nullptr : &it->second;
}

const Process* Kernel::Find(Pid pid) const {
  auto it = table_.find(pid);
  return it == table_.end() ? nullptr : &it->second;
}

std::vector<Pid> Kernel::ProcessesOf(Uid uid) const {
  std::vector<Pid> out;
  for (const auto& [pid, proc] : table_) {
    if (proc.uid == uid && proc.alive()) out.push_back(pid);
  }
  return out;
}

std::vector<Pid> Kernel::AllPids() const {
  std::vector<Pid> out;
  for (const auto& [pid, proc] : table_) {
    if (proc.alive() || proc.state == ProcState::kZombie) out.push_back(pid);
  }
  return out;
}

size_t Kernel::live_count() const {
  size_t n = 0;
  for (const auto& [pid, proc] : table_) {
    if (proc.alive()) ++n;
  }
  return n;
}

void Kernel::SetRunnable(Pid pid) {
  Process* p = Find(pid);
  PPM_CHECK(p != nullptr);
  if (p->state == ProcState::kSleeping) {
    p->state = ProcState::kRunning;
    EnterRunQueue();
  }
}

void Kernel::SetSleeping(Pid pid) {
  Process* p = Find(pid);
  PPM_CHECK(p != nullptr);
  if (p->state == ProcState::kRunning) {
    p->state = ProcState::kSleeping;
    LeaveRunQueue();
  }
}

// --- files / IPC -----------------------------------------------------------------

int Kernel::OpenFileFor(Pid pid, const std::string& path, const std::string& mode) {
  Process* p = Find(pid);
  if (!p || !p->alive()) return -1;
  int fd = p->next_fd++;
  p->open_files.push_back(OpenFile{fd, path, mode});
  p->rusage.files_opened++;
  if (p->trace_mask & kTraceFile) {
    KernelEvent ev;
    ev.kind = KEvent::kFileOpen;
    ev.pid = pid;
    ev.detail = path;
    EmitEvent(*p, ev);
  }
  return fd;
}

bool Kernel::CloseFileFor(Pid pid, int fd) {
  Process* p = Find(pid);
  if (!p) return false;
  for (auto it = p->open_files.begin(); it != p->open_files.end(); ++it) {
    if (it->fd == fd) {
      std::string path = it->path;
      p->open_files.erase(it);
      if (p->trace_mask & kTraceFile) {
        KernelEvent ev;
        ev.kind = KEvent::kFileClose;
        ev.pid = pid;
        ev.detail = path;
        EmitEvent(*p, ev);
      }
      return true;
    }
  }
  return false;
}

void Kernel::RecordIpc(Pid pid, bool sent, size_t bytes) {
  Process* p = Find(pid);
  if (!p || !p->alive()) return;
  if (sent) {
    p->rusage.messages_sent++;
  } else {
    p->rusage.messages_received++;
  }
  if (p->trace_mask & kTraceIpc) {
    KernelEvent ev;
    ev.kind = sent ? KEvent::kIpcSend : KEvent::kIpcRecv;
    ev.pid = pid;
    ev.status = static_cast<int>(bytes);
    EmitEvent(*p, ev);
  }
}

// --- catastrophe -------------------------------------------------------------------

void Kernel::CrashAll() {
  // Bodies are shut down in pid order; no events are emitted — the host
  // is gone, and with it the kernel socket.
  sinks_.clear();
  for (auto& [pid, proc] : table_) {
    if (proc.body) {
      proc.body->OnShutdown();
      proc.body.reset();
    }
    if (proc.state == ProcState::kRunning) LeaveRunQueue();
    proc.state = ProcState::kDead;
    proc.end_time = sim_.Now();
  }
}

}  // namespace ppm::host

#include "host/host.h"

#include "obs/flight.h"
#include "util/log.h"
#include "util/panic.h"

namespace ppm::host {

Host::Host(sim::Simulator& simulator, net::Network& network, net::HostId net_id,
           HostType type, std::string name, sim::SimDuration la_tau)
    : sim_(simulator),
      network_(network),
      net_id_(net_id),
      type_(type),
      name_(std::move(name)),
      la_tau_(la_tau),
      kernel_(std::make_unique<Kernel>(simulator, type, name_, la_tau)) {}

void Host::Crash() {
  if (!up_) return;
  PPM_INFO("host") << name_ << " crashing";
  obs::FlightRecorder::Instance().Record(obs::FlightKind::kHostCrash, name_, "");
  obs::FlightRecorder::Instance().Dump("host crash: " + name_);
  up_ = false;
  // Order matters: take the network down first so that nothing a dying
  // body does in OnShutdown can still reach the wire.
  network_.SetHostUp(net_id_, false);
  kernel_->CrashAll();
  // The disk keeps every synced prefix but the buffer cache is gone:
  // unsynced appended tails tear at a random byte (possibly mid-record).
  fs_.TearUnsynced(sim_.rng());
}

void Host::Reboot() {
  if (up_) return;
  PPM_INFO("host") << name_ << " rebooting";
  ++generation_;
  kernel_ = std::make_unique<Kernel>(sim_, type_, name_, la_tau_);
  network_.SetHostUp(net_id_, true);
  up_ = true;
  if (boot_fn_) boot_fn_(*this);
}

}  // namespace ppm::host

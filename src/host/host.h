// host.h — one machine of the networked environment.
//
// A Host couples a Kernel (volatile: rebuilt on reboot) with a
// Filesystem and UserDb (persistent: they are the disk) and a network
// identity.  Crash() models a machine failure: every process vanishes,
// circuits break, binds disappear.  Reboot() brings the machine back with
// a fresh kernel and runs the boot function (which the cluster layer uses
// to restart inetd).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "host/calibration.h"
#include "host/filesystem.h"
#include "host/kernel.h"
#include "host/users.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ppm::host {

class Host {
 public:
  Host(sim::Simulator& simulator, net::Network& network, net::HostId net_id,
       HostType type, std::string name, sim::SimDuration la_tau = sim::Seconds(5));

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  Kernel& kernel() { return *kernel_; }
  const Kernel& kernel() const { return *kernel_; }
  Filesystem& fs() { return fs_; }
  UserDb& users() { return users_; }
  net::Network& network() { return network_; }
  sim::Simulator& simulator() { return sim_; }

  net::HostId net_id() const { return net_id_; }
  HostType type() const { return type_; }
  const std::string& name() const { return name_; }
  bool up() const { return up_; }
  uint32_t generation() const { return generation_; }

  // Runs at every (re)boot, after the kernel exists; the cluster layer
  // installs one that starts inetd.
  void set_boot_fn(std::function<void(Host&)> fn) { boot_fn_ = std::move(fn); }

  // Machine failure: all processes are destroyed (no events, no exits —
  // the power is simply gone), the network sees the host down, and every
  // file's unsynced appended tail tears (Filesystem::TearUnsynced).
  void Crash();

  // Power-on after a crash: fresh kernel, network back up, boot function
  // re-run.  Disk state (fs, users) is whatever it was.
  void Reboot();

 private:
  sim::Simulator& sim_;
  net::Network& network_;
  net::HostId net_id_;
  HostType type_;
  std::string name_;
  sim::SimDuration la_tau_;
  bool up_ = true;
  uint32_t generation_ = 0;  // bumped on every reboot
  std::unique_ptr<Kernel> kernel_;
  Filesystem fs_;
  UserDb users_;
  std::function<void(Host&)> boot_fn_;
};

}  // namespace ppm::host

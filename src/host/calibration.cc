#include "host/calibration.h"

#include "util/panic.h"

namespace ppm::host {

const char* ToString(HostType t) {
  switch (t) {
    case HostType::kVax780: return "VAX 11/780";
    case HostType::kVax750: return "VAX 11/750";
    case HostType::kSun2: return "SUN II";
  }
  return "?";
}

const CostModel& Costs(HostType t) {
  // Polynomials interpolate the Table 1 bucket midpoints exactly; see the
  // header comment for the fit.
  static const CostModel kVax780Model{6.35, 1.4, 0.6, 0.0, 1.0, 0.30};
  static const CostModel kVax750Model{5.64375, 3.6125, -1.175, 0.35, 1.05, 0.35};
  static const CostModel kSun2Model{2.80, 14.101, -7.06, 1.7967, 1.35, 0.55};
  switch (t) {
    case HostType::kVax780: return kVax780Model;
    case HostType::kVax750: return kVax750Model;
    case HostType::kSun2: return kSun2Model;
  }
  PPM_PANIC("unknown host type");
}

sim::SimDuration KernelMsgDelay(HostType t, double la) {
  const CostModel& m = Costs(t);
  if (la < 0) la = 0;
  double ms = m.kmsg_c0 + m.kmsg_c1 * la + m.kmsg_c2 * la * la + m.kmsg_c3 * la * la * la;
  if (ms < 0.5) ms = 0.5;  // floor: a copyout can never be free
  return static_cast<sim::SimDuration>(ms * 1000.0);
}

sim::SimDuration ScaledCost(HostType t, sim::SimDuration base, double la) {
  const CostModel& m = Costs(t);
  if (la < 0) la = 0;
  double us = static_cast<double>(base) * m.speed_factor * (1.0 + m.load_sensitivity * la);
  return static_cast<sim::SimDuration>(us);
}

}  // namespace ppm::host

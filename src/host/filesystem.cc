#include "host/filesystem.h"

namespace ppm::host {

void Filesystem::Write(Uid uid, const std::string& name, const std::string& content) {
  homes_[uid][name] = content;
}

std::optional<std::string> Filesystem::Read(Uid uid, const std::string& name) const {
  auto uit = homes_.find(uid);
  if (uit == homes_.end()) return std::nullopt;
  auto fit = uit->second.find(name);
  if (fit == uit->second.end()) return std::nullopt;
  return fit->second;
}

bool Filesystem::Remove(Uid uid, const std::string& name) {
  auto uit = homes_.find(uid);
  if (uit == homes_.end()) return false;
  return uit->second.erase(name) > 0;
}

bool Filesystem::Exists(Uid uid, const std::string& name) const {
  return Read(uid, name).has_value();
}

std::vector<std::string> Filesystem::List(Uid uid) const {
  std::vector<std::string> out;
  auto uit = homes_.find(uid);
  if (uit == homes_.end()) return out;
  for (const auto& [name, _] : uit->second) out.push_back(name);
  return out;
}

}  // namespace ppm::host

#include "host/filesystem.h"

namespace ppm::host {

void Filesystem::Write(Uid uid, const std::string& name, const std::string& content) {
  File& f = homes_[uid][name];
  f.content = content;
  f.synced_len = content.size();
}

void Filesystem::Append(Uid uid, const std::string& name, const std::string& data) {
  homes_[uid][name].content += data;
}

size_t Filesystem::Sync(Uid uid, const std::string& name) {
  auto uit = homes_.find(uid);
  if (uit == homes_.end()) return 0;
  auto fit = uit->second.find(name);
  if (fit == uit->second.end()) return 0;
  size_t flushed = fit->second.content.size() - fit->second.synced_len;
  fit->second.synced_len = fit->second.content.size();
  return flushed;
}

std::optional<std::string> Filesystem::Read(Uid uid, const std::string& name) const {
  auto uit = homes_.find(uid);
  if (uit == homes_.end()) return std::nullopt;
  auto fit = uit->second.find(name);
  if (fit == uit->second.end()) return std::nullopt;
  return fit->second.content;
}

bool Filesystem::Remove(Uid uid, const std::string& name) {
  auto uit = homes_.find(uid);
  if (uit == homes_.end()) return false;
  return uit->second.erase(name) > 0;
}

bool Filesystem::Exists(Uid uid, const std::string& name) const {
  return Read(uid, name).has_value();
}

std::vector<std::string> Filesystem::List(Uid uid) const {
  std::vector<std::string> out;
  auto uit = homes_.find(uid);
  if (uit == homes_.end()) return out;
  for (const auto& [name, _] : uit->second) out.push_back(name);
  return out;
}

size_t Filesystem::Size(Uid uid, const std::string& name) const {
  auto uit = homes_.find(uid);
  if (uit == homes_.end()) return 0;
  auto fit = uit->second.find(name);
  if (fit == uit->second.end()) return 0;
  return fit->second.content.size();
}

size_t Filesystem::SyncedSize(Uid uid, const std::string& name) const {
  auto uit = homes_.find(uid);
  if (uit == homes_.end()) return 0;
  auto fit = uit->second.find(name);
  if (fit == uit->second.end()) return 0;
  return fit->second.synced_len;
}

void Filesystem::TearUnsynced(sim::Rng& rng) {
  for (auto& [uid, home] : homes_) {
    for (auto& [name, f] : home) {
      if (f.content.size() <= f.synced_len) continue;
      size_t keep = static_cast<size_t>(
          rng.Range(static_cast<int64_t>(f.synced_len),
                    static_cast<int64_t>(f.content.size())));
      f.content.resize(keep);
      f.synced_len = keep;
    }
  }
}

}  // namespace ppm::host

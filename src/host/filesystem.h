// filesystem.h — a miniature per-host filesystem.
//
// Only what the PPM needs from disk: per-user home directories holding
// small files.  Two text files carry policy, exactly as in the paper:
//
//   ~/.recovery   hosts in decreasing priority where the crash
//                 coordinator site should reside (paper Section 5);
//   ~/.rhosts     remote hosts/users allowed to act as this user
//                 (paper Section 4's authentication flexibility).
//
// The filesystem survives host crashes (it is a disk), which is what
// makes .recovery usable as the driving search strategy for recovery.
//
// Durability model.  Each file tracks how much of its content has
// reached stable storage (`synced_len`):
//
//   * Write()  atomically replaces a file and syncs it — the whole new
//     content is durable.  This models the small-file rename trick and
//     is what the policy files and checkpoints use.
//   * Append() grows a file WITHOUT syncing: the new tail sits in the
//     buffer cache until Sync() is called.  This is the journal path.
//   * On Crash() the host calls TearUnsynced(): every file keeps at
//     least its synced prefix, but the unsynced tail is cut at a
//     random byte drawn from the simulation RNG — possibly mid-record,
//     exactly the torn write a journal's framing must detect.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "host/process.h"
#include "sim/rng.h"

namespace ppm::host {

class Filesystem {
 public:
  // Writes (creates or replaces) a file in uid's home directory.
  // Atomic and durable: the entire content is synced.
  void Write(Uid uid, const std::string& name, const std::string& content);

  // Appends to a file (creating it empty first if absent) without
  // syncing; the appended bytes are vulnerable until Sync().
  void Append(Uid uid, const std::string& name, const std::string& data);

  // Flushes a file's unsynced tail to stable storage.  Returns the
  // number of bytes that became durable (0 if already clean or absent).
  size_t Sync(Uid uid, const std::string& name);

  // Reads a file; nullopt if absent.  Returns the live view, unsynced
  // tail included (a crash-free reader sees the buffer cache).
  std::optional<std::string> Read(Uid uid, const std::string& name) const;

  bool Remove(Uid uid, const std::string& name);
  bool Exists(Uid uid, const std::string& name) const;
  // Names in a user's home, sorted — iteration order is stable.
  std::vector<std::string> List(Uid uid) const;

  size_t Size(Uid uid, const std::string& name) const;
  size_t SyncedSize(Uid uid, const std::string& name) const;

  // Crash semantics: every file is cut at a uniformly random point in
  // [synced_len, size] — the synced prefix always survives, any part of
  // the unsynced tail may be lost, including a cut mid-record.  Called
  // by Host::Crash() with the simulator's RNG so runs stay reproducible.
  void TearUnsynced(sim::Rng& rng);

 private:
  struct File {
    std::string content;
    size_t synced_len = 0;
  };

  std::map<Uid, std::map<std::string, File>> homes_;
};

// Disk — the append-oriented view of one user's home that the durable
// store (src/store/) writes through.  A thin handle: it adds no state,
// it just binds a Filesystem reference to a uid so store code cannot
// stray outside its owner's home directory.
class Disk {
 public:
  Disk(Filesystem& fs, Uid uid) : fs_(fs), uid_(uid) {}

  void Write(const std::string& name, const std::string& content) {
    fs_.Write(uid_, name, content);
  }
  void Append(const std::string& name, const std::string& data) {
    fs_.Append(uid_, name, data);
  }
  size_t Sync(const std::string& name) { return fs_.Sync(uid_, name); }
  std::optional<std::string> Read(const std::string& name) const {
    return fs_.Read(uid_, name);
  }
  bool Remove(const std::string& name) { return fs_.Remove(uid_, name); }
  bool Exists(const std::string& name) const { return fs_.Exists(uid_, name); }
  size_t Size(const std::string& name) const { return fs_.Size(uid_, name); }
  size_t SyncedSize(const std::string& name) const { return fs_.SyncedSize(uid_, name); }

  Uid uid() const { return uid_; }

 private:
  Filesystem& fs_;
  Uid uid_;
};

}  // namespace ppm::host

// filesystem.h — a miniature per-host filesystem.
//
// Only what the PPM needs from disk: per-user home directories holding
// small text files.  Two files carry policy, exactly as in the paper:
//
//   ~/.recovery   hosts in decreasing priority where the crash
//                 coordinator site should reside (paper Section 5);
//   ~/.rhosts     remote hosts/users allowed to act as this user
//                 (paper Section 4's authentication flexibility).
//
// The filesystem survives host crashes (it is a disk), which is what
// makes .recovery usable as the driving search strategy for recovery.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "host/process.h"

namespace ppm::host {

class Filesystem {
 public:
  // Writes (creates or replaces) a file in uid's home directory.
  void Write(Uid uid, const std::string& name, const std::string& content);

  // Reads a file; nullopt if absent.
  std::optional<std::string> Read(Uid uid, const std::string& name) const;

  bool Remove(Uid uid, const std::string& name);
  bool Exists(Uid uid, const std::string& name) const;
  std::vector<std::string> List(Uid uid) const;

 private:
  std::map<Uid, std::map<std::string, std::string>> homes_;
};

}  // namespace ppm::host

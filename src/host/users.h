// users.h — the per-host password file.
//
// The paper (Section 4): "It is the responsibility of network system
// administrators to have consistent password files across machines that
// trust each other."  We therefore keep a *per-host* user database —
// consistency is a property tests can violate on purpose — plus a helper
// to install the same account everywhere.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "host/process.h"

namespace ppm::host {

class UserDb {
 public:
  // Adds or replaces an account.  Returns false if the uid or name is
  // already taken by a *different* account.
  bool AddUser(const std::string& name, Uid uid);
  bool RemoveUser(const std::string& name);

  std::optional<Uid> UidOf(const std::string& name) const;
  std::optional<std::string> NameOf(Uid uid) const;

 private:
  std::map<std::string, Uid> by_name_;
  std::map<Uid, std::string> by_uid_;
};

}  // namespace ppm::host

#include "host/procfs.h"

#include <sstream>

#include "host/calibration.h"
#include "util/bytes.h"

namespace ppm::host {

// --- local /proc -------------------------------------------------------------

std::vector<Pid> ProcFs::List() const { return kernel_.AllPids(); }

std::optional<std::string> ProcFs::ReadStatus(Pid pid) const {
  const Process* proc = kernel_.Find(pid);
  if (!proc || proc->state == ProcState::kDead) return std::nullopt;
  std::ostringstream out;
  out << "pid " << proc->pid << "\n";
  out << "ppid " << proc->ppid << "\n";
  out << "uid " << proc->uid << "\n";
  out << "state " << ToString(proc->state) << "\n";
  out << "command " << proc->command << "\n";
  char cpu[32];
  std::snprintf(cpu, sizeof(cpu), "%.1f", sim::ToMillis(proc->rusage.cpu_time));
  out << "cpu_ms " << cpu << "\n";
  return out.str();
}

bool ProcFs::WriteCtl(Pid pid, const std::string& op, Uid requester, std::string* err) {
  Signal sig;
  if (op == "stop") {
    sig = Signal::kSigStop;
  } else if (op == "cont") {
    sig = Signal::kSigCont;
  } else if (op == "kill") {
    sig = Signal::kSigKill;
  } else if (op == "term") {
    sig = Signal::kSigTerm;
  } else {
    if (err) *err = "bad ctl op: " + op;
    return false;
  }
  return kernel_.PostSignal(pid, sig, requester, err);
}

// --- wire format ----------------------------------------------------------------

namespace {
constexpr uint8_t kOpList = 1;
constexpr uint8_t kOpRead = 2;
constexpr uint8_t kOpWrite = 3;
constexpr uint8_t kRespMagic = 0x6e;

std::vector<uint8_t> EncodeResult(const ProcFsResult& r) {
  util::ByteWriter w;
  w.U8(kRespMagic);
  w.Bool(r.ok);
  w.Str(r.error);
  w.Str(r.content);
  w.U32(static_cast<uint32_t>(r.pids.size()));
  for (Pid p : r.pids) w.I32(p);
  return w.Take();
}

std::optional<ProcFsResult> DecodeResult(const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  auto magic = r.U8();
  if (!magic || *magic != kRespMagic) return std::nullopt;
  ProcFsResult out;
  auto ok = r.Bool();
  auto err = r.Str();
  auto content = r.Str();
  auto n = r.U32();
  if (!ok || !err || !content || !n) return std::nullopt;
  out.ok = *ok;
  out.error = *err;
  out.content = *content;
  for (uint32_t i = 0; i < *n; ++i) {
    auto p = r.I32();
    if (!p) return std::nullopt;
    out.pids.push_back(*p);
  }
  return out;
}

void OneShot(Host& from, const std::string& target_host, std::vector<uint8_t> request,
             std::function<void(const ProcFsResult&)> done) {
  auto target = from.network().FindHost(target_host);
  if (!target) {
    ProcFsResult r;
    r.error = "unknown host";
    done(r);
    return;
  }
  auto done_shared =
      std::make_shared<std::function<void(const ProcFsResult&)>>(std::move(done));
  net::ConnCallbacks cb;
  cb.on_data = [&from, done_shared](net::ConnId c, const std::vector<uint8_t>& bytes) {
    auto result = DecodeResult(bytes);
    from.network().Close(c);
    if (*done_shared) {
      auto fn = std::move(*done_shared);
      *done_shared = nullptr;
      ProcFsResult failed;
      failed.error = "bad response";
      fn(result ? *result : failed);
    }
  };
  cb.on_close = [done_shared](net::ConnId, net::CloseReason) {
    if (*done_shared) {
      auto fn = std::move(*done_shared);
      *done_shared = nullptr;
      ProcFsResult r;
      r.error = "connection lost";
      fn(r);
    }
  };
  from.network().Connect(from.net_id(), net::SocketAddr{*target, kProcFsPort},
                         std::move(cb),
                         [&from, request = std::move(request), done_shared](
                             std::optional<net::ConnId> c) {
                           if (!c) {
                             if (*done_shared) {
                               auto fn = std::move(*done_shared);
                               *done_shared = nullptr;
                               ProcFsResult r;
                               r.error = "procfs server unreachable";
                               fn(r);
                             }
                             return;
                           }
                           from.network().Send(*c, request);
                         });
}
}  // namespace

// --- server ------------------------------------------------------------------------

ProcFsServer::ProcFsServer(Host& host) : host_(host) {}

void ProcFsServer::OnStart() {
  host_.network().Listen(host_.net_id(), kProcFsPort,
                         [this](net::ConnId conn, net::SocketAddr) {
                           conns_.push_back(conn);
                           net::ConnCallbacks cb;
                           cb.on_data = [this](net::ConnId c,
                                               const std::vector<uint8_t>& b) {
                             HandleRequest(c, b);
                           };
                           return cb;
                         });
}

void ProcFsServer::OnShutdown() {
  if (host_.up()) {
    host_.network().Unlisten(host_.net_id(), kProcFsPort);
    for (net::ConnId c : conns_) host_.network().Close(c);
  }
  conns_.clear();
}

void ProcFsServer::HandleRequest(net::ConnId conn, const std::vector<uint8_t>& bytes) {
  util::ByteReader r(bytes);
  auto op = r.U8();
  ProcFsResult result;
  ProcFs fs(host_.kernel());
  sim::SimDuration cost = host_.kernel().Charge(pid(), BaseCosts::kDispatch);
  if (op && *op == kOpList) {
    result.ok = true;
    result.pids = fs.List();
    cost += host_.kernel().Charge(
        pid(), BaseCosts::kPerProcessScan * static_cast<int64_t>(result.pids.size()));
  } else if (op && *op == kOpRead) {
    auto pid_arg = r.I32();
    if (pid_arg) {
      cost += host_.kernel().Charge(pid(), BaseCosts::kPerProcessScan);
      auto status = fs.ReadStatus(*pid_arg);
      if (status) {
        result.ok = true;
        result.content = *status;
      } else {
        result.error = "no such process";
      }
    } else {
      result.error = "malformed";
    }
  } else if (op && *op == kOpWrite) {
    auto pid_arg = r.I32();
    auto ctl = r.Str();
    auto uid = r.I32();
    if (pid_arg && ctl && uid) {
      // AUTH_UNIX-style trust: the claimed uid is believed.  This is the
      // documented weakness of the NFS path relative to pmd channels.
      cost += host_.kernel().Charge(pid(), BaseCosts::kSignal);
      std::string err;
      result.ok = fs.WriteCtl(*pid_arg, *ctl, *uid, &err);
      result.error = err;
    } else {
      result.error = "malformed";
    }
  } else {
    result.error = "bad opcode";
  }
  host_.simulator().ScheduleIn(cost, [this, conn, result] {
    if (!host_.up()) return;
    host_.network().Send(conn, EncodeResult(result));
    host_.network().Close(conn);
  }, "procfs-reply");
}

Pid StartProcFsServer(Host& host) {
  auto body = std::make_unique<ProcFsServer>(host);
  return host.kernel().Spawn(kNoPid, kRootUid, "procfsd", std::move(body),
                             ProcState::kSleeping);
}

// --- client calls ---------------------------------------------------------------------

void ProcFsList(Host& from, const std::string& target_host,
                std::function<void(const ProcFsResult&)> done) {
  util::ByteWriter w;
  w.U8(kOpList);
  OneShot(from, target_host, w.Take(), std::move(done));
}

void ProcFsRead(Host& from, const std::string& target_host, Pid pid,
                std::function<void(const ProcFsResult&)> done) {
  util::ByteWriter w;
  w.U8(kOpRead);
  w.I32(pid);
  OneShot(from, target_host, w.Take(), std::move(done));
}

void ProcFsWriteCtl(Host& from, const std::string& target_host, Pid pid,
                    const std::string& op, Uid claimed_uid,
                    std::function<void(const ProcFsResult&)> done) {
  util::ByteWriter w;
  w.U8(kOpWrite);
  w.I32(pid);
  w.Str(op);
  w.I32(claimed_uid);
  OneShot(from, target_host, w.Take(), std::move(done));
}

}  // namespace ppm::host

#include "host/users.h"

namespace ppm::host {

bool UserDb::AddUser(const std::string& name, Uid uid) {
  auto nit = by_name_.find(name);
  auto uit = by_uid_.find(uid);
  if (nit != by_name_.end() && nit->second != uid) return false;
  if (uit != by_uid_.end() && uit->second != name) return false;
  by_name_[name] = uid;
  by_uid_[uid] = name;
  return true;
}

bool UserDb::RemoveUser(const std::string& name) {
  auto nit = by_name_.find(name);
  if (nit == by_name_.end()) return false;
  by_uid_.erase(nit->second);
  by_name_.erase(nit);
  return true;
}

std::optional<Uid> UserDb::UidOf(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> UserDb::NameOf(Uid uid) const {
  auto it = by_uid_.find(uid);
  if (it == by_uid_.end()) return std::nullopt;
  return it->second;
}

}  // namespace ppm::host

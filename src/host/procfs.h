// procfs.h — the "processes as files" alternative (Killian's /proc).
//
// Paper Section 6: "A software interrupt delivery mechanism based on the
// processes as files approach presented in (10) is a very elegant
// alternative to our message based approach.  Through the incorporation
// in the file system of the /proc directory, one is able to access any
// process in the system.  With the advent of a network file system (25),
// that mechanism extends to multiple hosts.  Had we had such code, we
// would have used it for message delivery…"
//
// We build that code, so the comparison the authors could only argue can
// be run: a per-host ProcFs exposing status files and control files over
// the process table, plus an NFS-style server that extends it across
// machine boundaries.  The paper's two caveats are reproduced as
// properties of the implementation (and asserted in tests):
//
//   * "those aspects of process management that incorporate event
//      detection cannot be handled by that approach" — ProcFs is pull-
//      only; there is no event stream, no history, no triggers;
//   * "Nor does the /proc mechanism easily generalize to provide the
//      creation and configuration of remote processes" — there is no
//      create operation, only access to processes that already exist.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "host/host.h"
#include "net/network.h"

namespace ppm::host {

// The local /proc view over one kernel.
class ProcFs {
 public:
  explicit ProcFs(Kernel& kernel) : kernel_(kernel) {}

  // Directory listing: every live or zombie pid (like ls /proc).
  std::vector<Pid> List() const;

  // Reads /proc/<pid>/status; nullopt if no such process.
  //   "pid 12\nppid 1\nuid 100\nstate running\ncommand worker\ncpu_ms 3.5\n"
  std::optional<std::string> ReadStatus(Pid pid) const;

  // Writes /proc/<pid>/ctl.  Ops: "stop", "cont", "kill", "term".
  // Enforces the same uid rules as kill(2).
  bool WriteCtl(Pid pid, const std::string& op, Uid requester, std::string* err = nullptr);

 private:
  Kernel& kernel_;
};

// --- the network-file-system extension -------------------------------------
//
// One server per host exports its /proc; a client mounts it by host name
// and issues reads/writes over one-shot circuits (the granularity NFS
// RPCs would have).  Root-owned, trusts the client's *claimed* uid — NFS
// circa 1986 did exactly that (AUTH_UNIX), which is itself part of the
// story: the PPM's pmd-mediated channels are stronger.

constexpr net::Port kProcFsPort = 2049;

class ProcFsServer : public ProcessBody {
 public:
  explicit ProcFsServer(Host& host);
  void OnStart() override;
  void OnShutdown() override;

 private:
  void HandleRequest(net::ConnId conn, const std::vector<uint8_t>& bytes);
  Host& host_;
  std::vector<net::ConnId> conns_;
};

Pid StartProcFsServer(Host& host);

struct ProcFsResult {
  bool ok = false;
  std::string error;
  std::string content;            // status text for reads
  std::vector<Pid> pids;          // directory listing
};

// Remote ls /proc.
void ProcFsList(Host& from, const std::string& target_host,
                std::function<void(const ProcFsResult&)> done);
// Remote read of /proc/<pid>/status.
void ProcFsRead(Host& from, const std::string& target_host, Pid pid,
                std::function<void(const ProcFsResult&)> done);
// Remote write to /proc/<pid>/ctl with a *claimed* uid.
void ProcFsWriteCtl(Host& from, const std::string& target_host, Pid pid,
                    const std::string& op, Uid claimed_uid,
                    std::function<void(const ProcFsResult&)> done);

}  // namespace ppm::host

// calibration.h — cost model constants, calibrated against the paper.
//
// The paper measured three host types: VAX 11/780, VAX 11/750 and SUN II
// workstations.  We reproduce their *relative* behaviour with per-type
// cost polynomials fitted to Table 1 of the paper (112-byte kernel→LPM
// message delivery time as a function of the time-averaged run-queue
// length `la`):
//
//       la bucket      VAX 11/780   VAX 11/750   SUN II
//       0 < la <= 1        7.2          7.2        8.31    (ms)
//       1 < la <= 2        9.8          9.6       14.13
//       2 < la <= 3       13.6         12.8       22.0
//       3 < la <= 4         —          18.9       42.7
//
// Fitting a polynomial through the bucket midpoints gives the
// coefficients below (exact interpolation; see tests/host/calibration_test).
// Everything else in the cost model (fork/exec, signal delivery, LPM
// dispatch) is expressed as a base cost at zero load on a VAX 11/780,
// scaled by the host's speed factor and its current load; those bases are
// tuned so that the Table 2 and Table 3 benches land near the paper's
// numbers (see EXPERIMENTS.md).
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace ppm::host {

enum class HostType : uint8_t { kVax780, kVax750, kSun2 };

const char* ToString(HostType t);

struct CostModel {
  // Kernel → LPM message delivery polynomial, milliseconds:
  //   t(la) = c0 + c1*la + c2*la^2 + c3*la^3
  double kmsg_c0, kmsg_c1, kmsg_c2, kmsg_c3;
  // Relative CPU speed (1.0 = VAX 11/780); >1 means slower.
  double speed_factor;
  // Fractional slowdown of CPU-bound work per unit of load average.
  double load_sensitivity;
};

// Returns the cost model for a host type.
const CostModel& Costs(HostType t);

// Kernel→LPM delivery time for a 112-byte message at load `la`.
sim::SimDuration KernelMsgDelay(HostType t, double la);

// Base CPU costs at zero load on a VAX 11/780, microseconds.  These are
// the remaining degrees of freedom of the calibration; Table 2 ("create"
// 77 ms within host, stop/terminate 30 ms within host, 199/210 ms at one
// and two hops) pins them down together with the link latencies in
// core/cluster.h.
struct BaseCosts {
  // fork(2) + exec(2) of a user process issued by the LPM acting as
  // creation server.  With dispatch (6) + handler work (7), a local
  // create lands at the paper's 77 ms (Table 2).
  static constexpr sim::SimDuration kForkExec = sim::Micros(64'000);
  // Creating one LPM handler process (fork only, no exec).
  static constexpr sim::SimDuration kHandlerFork = sim::Micros(18'000);
  // kill(2)-style signal post + context switch until the target stops.
  // dispatch (6) + handler work (7) + this = the paper's 30 ms local
  // stop/terminate (Table 2).
  static constexpr sim::SimDuration kSignal = sim::Micros(17'000);
  // Marshalling + socket write of one message onto a sibling channel.
  // This is the dominant cost of every cross-machine operation in the
  // paper (one-hop stop = 199 ms against 30 ms locally, i.e. ~170 ms of
  // channel overhead split over the two directions).
  static constexpr sim::SimDuration kSiblingSend = sim::Micros(70'000);
  // Re-sending an already-marshalled message to one more sibling (the
  // second and later targets of a flood): write-only.
  static constexpr sim::SimDuration kSiblingSendExtra = sim::Micros(20'000);
  // LPM dispatcher: parse one request and route it to a handler.
  static constexpr sim::SimDuration kDispatch = sim::Micros(6'000);
  // LPM handler: marshal/unmarshal one request or reply.
  static constexpr sim::SimDuration kHandlerWork = sim::Micros(7'000);
  // Forwarding a request to a sibling LPM (lookup + framing).
  static constexpr sim::SimDuration kForward = sim::Micros(8'000);
  // pmd: verify user, look up or create an LPM registry entry.
  static constexpr sim::SimDuration kPmdLookup = sim::Micros(5'000);
  // pmd writing its registry to stable storage (the paper's proposed but
  // unimplemented extension; measured by bench_ablate_pmd_storage).
  static constexpr sim::SimDuration kPmdStableWrite = sim::Micros(25'000);
  // Collecting the snapshot record of one local process.
  static constexpr sim::SimDuration kPerProcessScan = sim::Micros(2'500);
  // inetd accepting and re-dispatching one service request.
  static constexpr sim::SimDuration kInetdDispatch = sim::Micros(4'000);
  // Checkpoint + image transfer of one migrating process (our extension;
  // sized like shipping a few hundred KB over a mid-80s Ethernet).
  static constexpr sim::SimDuration kMigrateImage = sim::Micros(150'000);
  // Building + writing one StatDelta push frame (a handful of counters,
  // no per-process scan, no full marshalling pass).  Deliberately far
  // below kSiblingSend: a watch at a 100 ms interval must not consume a
  // meaningful fraction of the dispatcher (bench_watch holds the
  // overhead under 5%).
  static constexpr sim::SimDuration kStatPush = sim::Micros(3'000);
  // One journal fsync of the durable store (src/store/): a synchronous
  // seek + write on a mid-80s Winchester disk.  Group commit exists to
  // amortize exactly this cost (measured by bench_store).
  static constexpr sim::SimDuration kStoreSync = sim::Micros(30'000);
};

// Scales a base cost by host speed and current load:
//   cost * speed_factor * (1 + load_sensitivity * la)
sim::SimDuration ScaledCost(HostType t, sim::SimDuration base, double la);

}  // namespace ppm::host

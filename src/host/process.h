// process.h — the simulated UNIX process.
//
// Processes are bookkeeping records in the per-host kernel, not threads:
// the simulation is single-threaded and event-driven.  A process may have
// a Body — a C++ object that reacts to being started, signalled or torn
// down — which is how the daemons, LPMs and tools of the reproduction
// "run".  Plain user processes (the things the PPM administers) usually
// have no body, or a load-generator body that occupies the run queue.
//
// State model (paper Section 1: "running, stopped, or dead" — we keep the
// intermediate zombie state of real UNIX because the PPM's decision to
// retain exit information while children are alive depends on it):
//
//     kRunning  on the run queue (counts toward the load average)
//     kSleeping alive but blocked (daemons waiting for messages)
//     kStopped  SIGSTOP'd; resumable with SIGCONT
//     kZombie   exited, exit record not yet reaped by the parent
//     kDead     reaped; the pid may be reused eventually
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.h"

namespace ppm::host {

using Pid = int32_t;
using Uid = int32_t;

constexpr Pid kNoPid = -1;
constexpr Uid kRootUid = 0;

enum class ProcState : uint8_t { kRunning, kSleeping, kStopped, kZombie, kDead };

const char* ToString(ProcState s);

// The signal vocabulary the PPM's control operations use.
enum class Signal : uint8_t {
  kSigHup = 1,
  kSigInt = 2,
  kSigKill = 9,
  kSigUsr1 = 10,
  kSigTerm = 15,
  kSigStop = 17,
  kSigCont = 19,
};

const char* ToString(Signal s);

// Tracing flags set on adopted processes (paper Section 4: "user
// processes are modified to contain specific tracing flags used
// thereafter by the kernel for event detection").  The granularity is
// user-settable, which is what makes the facility usable by a debugger.
enum TraceFlag : uint32_t {
  kTraceFork = 1u << 0,
  kTraceExec = 1u << 1,
  kTraceExit = 1u << 2,
  kTraceSignal = 1u << 3,
  kTraceStateChange = 1u << 4,  // stop / continue
  kTraceFile = 1u << 5,         // open / close
  kTraceIpc = 1u << 6,          // socket send / recv
  kTraceAll = 0x7f,
};

// Resource usage accumulated by a process, reported by the exited-process
// statistics tool (paper Section 4's second built-in tool).
struct Rusage {
  sim::SimDuration cpu_time = 0;     // virtual CPU microseconds consumed
  uint64_t messages_sent = 0;        // IPC messages
  uint64_t messages_received = 0;
  uint64_t files_opened = 0;
  uint64_t max_rss_kb = 0;
  uint64_t forks = 0;

  bool operator==(const Rusage&) const = default;
};

class Kernel;

// Behaviour attached to a simulated process.  Lifetime: owned by the
// process record; destroyed when the process is reaped or the host
// crashes.
class ProcessBody {
 public:
  virtual ~ProcessBody() = default;

  // The kernel installs the owning pid before OnStart runs.
  void set_pid(Pid pid) { pid_ = pid; }
  Pid pid() const { return pid_; }

  // Called once, right after the process is created and scheduled.
  virtual void OnStart() {}

  // Called when a catchable signal is posted to the process before the
  // default disposition is applied.  Return true to consume the signal
  // (the default action is then suppressed).  SIGKILL and SIGSTOP are
  // never offered.
  virtual bool OnSignal(Signal) { return false; }

  // Called when the process is about to die for any reason (exit, kill,
  // host crash).  The kernel is still alive unless the host crashed.
  virtual void OnShutdown() {}

 private:
  Pid pid_ = kNoPid;
};

struct OpenFile {
  int fd;
  std::string path;
  std::string mode;  // "r", "w", "rw"
};

// The kernel-side process record.
struct Process {
  Pid pid = kNoPid;
  Pid ppid = kNoPid;
  Uid uid = 0;
  std::string command;       // argv[0] for display
  ProcState state = ProcState::kRunning;
  sim::SimTime start_time = 0;
  sim::SimTime end_time = 0;
  int exit_status = 0;
  Signal death_signal = static_cast<Signal>(0);
  bool killed_by_signal = false;
  uint32_t trace_mask = 0;   // TraceFlag bits; nonzero means adopted
  Pid adopter = kNoPid;      // LPM pid that adopted this process
  std::vector<Pid> children;
  Rusage rusage;
  std::vector<OpenFile> open_files;
  int next_fd = 3;  // 0/1/2 are the stdio triple
  std::unique_ptr<ProcessBody> body;

  bool alive() const {
    return state == ProcState::kRunning || state == ProcState::kSleeping ||
           state == ProcState::kStopped;
  }
};

}  // namespace ppm::host

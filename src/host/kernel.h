// kernel.h — the per-host simulated UNIX kernel.
//
// This is the substrate the paper modified: process table, signals, an
// extended ptrace-style adoption call that grants an LPM write access to
// the process control blocks of its user's processes, tracing flags set
// on adopted processes, and a message-delivery function that pushes
// kernel events to the per-user LPM's kernel socket (paper Section 4 and
// Table 1).
//
// Design notes:
//   * Syscalls are instantaneous state transitions; *costs* are modelled
//     where the paper measured them — kernel→LPM message delivery obeys
//     the Table 1 polynomial, and all manager-level work is charged via
//     Charge(), which scales base costs by host speed and current load.
//   * The load average `la` is a time-averaged run-queue length
//     maintained as an exponentially-weighted moving average updated
//     lazily on every run-queue transition, matching the paper's "time-
//     averaged cpu run queue length" estimator.
//   * Event delivery to the LPM is asynchronous: an adopted process's
//     fork is visible to the manager only KernelMsgDelay(la) later, so
//     snapshots genuinely race with process activity, as on real hosts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "host/calibration.h"
#include "host/process.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ppm::host {

// Kinds of events the modified kernel reports to an adopting LPM.
enum class KEvent : uint8_t {
  kFork = 0,
  kExec = 1,
  kExit = 2,
  kSignal = 3,
  kStop = 4,
  kContinue = 5,
  kFileOpen = 6,
  kFileClose = 7,
  kIpcSend = 8,
  kIpcRecv = 9,
};

const char* ToString(KEvent e);

// One kernel→LPM event record.  Serialized by the PPM layer into the
// 112-byte wire format whose delivery time Table 1 reports.
struct KernelEvent {
  KEvent kind;
  Pid pid = kNoPid;        // subject process
  Pid other = kNoPid;      // child pid for kFork, sender for kSignal
  Signal sig = Signal::kSigHup;
  int status = 0;          // exit status for kExit
  sim::SimTime at = 0;     // kernel-side timestamp
  std::string detail;      // path for file events, etc.
  bool operator==(const KernelEvent&) const = default;
};

struct KernelStats {
  uint64_t events_emitted = 0;   // events that matched a trace mask
  uint64_t events_dropped = 0;   // traced but no LPM registered
  uint64_t signals_posted = 0;
  uint64_t forks = 0;
  uint64_t exits = 0;
};

class Kernel {
 public:
  // `la_tau` is the averaging window of the load estimator.
  Kernel(sim::Simulator& simulator, HostType type, std::string host_name,
         sim::SimDuration la_tau = sim::Seconds(5));
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- process lifecycle ----------------------------------------------
  // Creates a process.  `parent` may be kNoPid for boot-time processes
  // (they become children of init).  Bodies start in the given state;
  // OnStart runs asynchronously (next event).  Returns the new pid.
  // `trace_mask`/`adopter` let a process creation server (the LPM) mark
  // the child as adopted at birth, so even its exec event is traced; by
  // default children inherit the parent's tracing state.
  Pid Spawn(Pid parent, Uid uid, std::string command,
            std::unique_ptr<ProcessBody> body = nullptr,
            ProcState initial = ProcState::kRunning, uint32_t trace_mask = 0,
            Pid adopter = kNoPid);

  // Voluntary exit.  The record lingers as a zombie until the parent
  // reaps it (or immediately if the parent is init or gone).
  void Exit(Pid pid, int status);

  // Reaps all zombie children of `parent`; returns their pids.
  std::vector<Pid> Reap(Pid parent);

  // Posts a signal, enforcing UNIX permission (sender uid must match the
  // target's uid, or be root).  Returns false with *err set on failure.
  bool PostSignal(Pid target, Signal sig, Uid sender_uid, std::string* err = nullptr);

  // --- adoption (the extended ptrace of paper Section 4) ---------------
  // Grants LPM `adopter` tracking rights over `target` and all its live
  // descendants: sets the trace mask, records the adopter, and arranges
  // for children forked later to inherit both.  Fails if requester_uid
  // does not own the target.  On success appends every adopted pid
  // (target first, then descendants in pid order) to *adopted.
  bool Adopt(Pid adopter, Pid target, uint32_t trace_mask, Uid requester_uid,
             std::vector<Pid>* adopted, std::string* err = nullptr);

  // Adjusts the event granularity on an already-adopted process.
  bool SetTraceMask(Pid target, uint32_t trace_mask, Uid requester_uid,
                    std::string* err = nullptr);

  // --- event sink (the LPM "kernel socket") -----------------------------
  using EventSink = std::function<void(const KernelEvent&)>;
  // Registers the per-user LPM event sink; at most one per uid.
  void RegisterEventSink(Uid uid, Pid lpm_pid, EventSink sink);
  void UnregisterEventSink(Uid uid);
  bool HasEventSink(Uid uid) const;

  // --- introspection ----------------------------------------------------
  Process* Find(Pid pid);
  const Process* Find(Pid pid) const;
  std::vector<Pid> ProcessesOf(Uid uid) const;        // live processes
  std::vector<Pid> AllPids() const;                    // live + zombie
  size_t live_count() const;

  // --- state control (used by bodies and by the LPM via its ptrace
  //     write-access to process control blocks) -------------------------
  void SetRunnable(Pid pid);   // kSleeping -> kRunning
  void SetSleeping(Pid pid);   // kRunning  -> kSleeping

  // --- files (for the open-files display tool) --------------------------
  int OpenFileFor(Pid pid, const std::string& path, const std::string& mode);
  bool CloseFileFor(Pid pid, int fd);

  // --- IPC accounting (for the IPC tracing tool) ------------------------
  void RecordIpc(Pid pid, bool sent, size_t bytes);

  // --- cost model --------------------------------------------------------
  // Time-averaged run-queue length (the paper's `la`).
  double LoadAverage();
  // Scales `base` by host speed and load, charges it to pid's rusage.
  sim::SimDuration Charge(Pid pid, sim::SimDuration base);
  // Delivery delay of one kernel→LPM message right now.
  sim::SimDuration CurrentKernelMsgDelay();

  // --- catastrophes ------------------------------------------------------
  // Host crash: every body is shut down, the table is cleared.
  void CrashAll();

  HostType type() const { return type_; }
  const std::string& host_name() const { return host_name_; }
  sim::Simulator& simulator() { return sim_; }
  const KernelStats& stats() const { return stats_; }
  Pid init_pid() const { return kInitPid; }

  static constexpr Pid kInitPid = 1;

 private:
  void UpdateLoad();
  void EnterRunQueue();
  void LeaveRunQueue();
  void Terminate(Process& proc, bool by_signal, Signal sig, int status);
  void EmitEvent(const Process& proc, KernelEvent ev);
  void ReparentChildren(Process& proc);

  sim::Simulator& sim_;
  HostType type_;
  std::string host_name_;
  std::map<Pid, Process> table_;  // ordered: deterministic iteration
  Pid next_pid_ = 2;              // 1 is init
  struct Sink {
    Pid lpm_pid;
    EventSink fn;
  };
  std::map<Uid, Sink> sinks_;
  // Load estimator state.
  sim::SimDuration la_tau_;
  double la_ = 0.0;
  sim::SimTime la_updated_ = 0;
  int run_count_ = 0;
  KernelStats stats_;
};

}  // namespace ppm::host

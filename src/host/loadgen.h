// loadgen.h — background CPU load generation.
//
// Table 1 of the paper buckets measurements by the load estimator `la`
// (time-averaged run-queue length).  To place a host inside a bucket we
// spawn CPU-bound processes with a configurable duty cycle: `n`
// processes at duty `d` converge the EWMA load average to n*d.  The
// phase of each process is staggered so the instantaneous run-queue
// length stays near the mean rather than sawing between 0 and n.
#pragma once

#include <vector>

#include "host/host.h"
#include "sim/time.h"

namespace ppm::host {

class LoadGenerator {
 public:
  // Spawns `n` load processes owned by `uid` on `host`.  Each cycles
  // through `period` with `duty` in [0,1] of it on the run queue.
  LoadGenerator(Host& host, Uid uid, int n, double duty,
                sim::SimDuration period = sim::Millis(200));
  ~LoadGenerator();

  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  // Kills the load processes.
  void Stop();

  const std::vector<Pid>& pids() const { return pids_; }

  // Convenience: expected steady-state load average.
  double target_load() const { return target_; }

 private:
  void ScheduleToggle(Pid pid, bool to_running, sim::SimDuration delay);

  Host& host_;
  uint32_t host_generation_;
  std::vector<Pid> pids_;
  double duty_;
  sim::SimDuration period_;
  double target_;
  bool stopped_ = false;
};

}  // namespace ppm::host

#include "obs/series.h"

#include "obs/metrics.h"

namespace ppm::obs {

void Series::Push(uint64_t t_us, double value) {
  if (size_ > 0 && t_us < last_t_us_) t_us = last_t_us_;
  ++total_pushed_;
  if (size_ == 0) {
    base_t_us_ = t_us;
    base_value_ = value;
    head_ = 0;
    entries_[0] = Entry{0, 0};
    size_ = 1;
    last_t_us_ = t_us;
    last_value_ = value;
    return;
  }
  Entry next{t_us - last_t_us_, value - last_value_};
  if (size_ < entries_.size()) {
    entries_[(head_ + size_) % entries_.size()] = next;
    ++size_;
  } else {
    // Full: fold the evicted head delta into the base so the chain
    // still decodes, then reuse its slot for the new tail.
    base_t_us_ += entries_[head_].dt_us;
    base_value_ += entries_[head_].dvalue;
    entries_[head_] = next;
    head_ = (head_ + 1) % entries_.size();
  }
  last_t_us_ = t_us;
  last_value_ = value;
}

Series::Point Series::At(size_t i) const {
  if (size_ == 0) return {};
  if (i >= size_) i = size_ - 1;
  uint64_t t = base_t_us_;
  double v = base_value_;
  for (size_t k = 0; k <= i; ++k) {
    const Entry& e = entries_[(head_ + k) % entries_.size()];
    t += e.dt_us;
    v += e.dvalue;
  }
  return {t, v};
}

std::vector<Series::Point> Series::Snapshot() const {
  std::vector<Point> out;
  out.reserve(size_);
  uint64_t t = base_t_us_;
  double v = base_value_;
  for (size_t k = 0; k < size_; ++k) {
    const Entry& e = entries_[(head_ + k) % entries_.size()];
    t += e.dt_us;
    v += e.dvalue;
    out.push_back({t, v});
  }
  return out;
}

double Series::RatePerSec() const {
  if (size_ < 2) return 0;
  Point first = Front();
  if (last_t_us_ <= first.t_us) return 0;
  return (last_value_ - first.value) * 1e6 /
         static_cast<double>(last_t_us_ - first.t_us);
}

Series* SeriesStore::Get(const std::string& name) {
  auto& slot = series_[name];
  if (!slot) slot = std::make_unique<Series>(capacity_);
  return slot.get();
}

const Series* SeriesStore::Find(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

std::vector<std::string> SeriesStore::Names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

size_t SeriesStore::SampleRegistry(uint64_t t_us) {
  const Registry& reg = Registry::Instance();
  size_t touched = 0;
  reg.ForEachCounter([&](const std::string& name, const Counter& c) {
    Get(name)->Push(t_us, static_cast<double>(c.value()));
    ++touched;
  });
  reg.ForEachGauge([&](const std::string& name, const Gauge& g) {
    Get(name)->Push(t_us, g.value());
    ++touched;
  });
  reg.ForEachHistogram([&](const std::string& name, const Histogram& h) {
    Get(name + ".p50")->Push(t_us, h.Quantile(0.50));
    Get(name + ".p99")->Push(t_us, h.Quantile(0.99));
    touched += 2;
  });
  return touched;
}

}  // namespace ppm::obs

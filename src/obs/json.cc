#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ppm::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> Run() {
    SkipWs();
    Value v;
    if (!ParseValue(v)) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool EatWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  bool ParseValue(Value& out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out.type = Value::Type::kString;
        return ParseString(out.str);
      case 't':
        out.type = Value::Type::kBool;
        out.boolean = true;
        return EatWord("true");
      case 'f':
        out.type = Value::Type::kBool;
        out.boolean = false;
        return EatWord("false");
      case 'n':
        out.type = Value::Type::kNull;
        return EatWord("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Value& out) {
    out.type = Value::Type::kObject;
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(key)) return false;
      SkipWs();
      if (!Eat(':')) return false;
      Value member;
      if (!ParseValue(member)) return false;
      out.obj.emplace(std::move(key), std::move(member));
      SkipWs();
      if (Eat(',')) continue;
      return Eat('}');
    }
  }

  bool ParseArray(Value& out) {
    out.type = Value::Type::kArray;
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      Value elem;
      if (!ParseValue(elem)) return false;
      out.arr.push_back(std::move(elem));
      SkipWs();
      if (Eat(',')) continue;
      return Eat(']');
    }
  }

  bool ParseString(std::string& out) {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(Value& out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digits = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) return false;
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out.type = Value::Type::kNumber;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const Value* Value::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::optional<Value> Parse(std::string_view text) { return Parser(text).Run(); }

void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace ppm::obs::json

// json.h — a minimal JSON reader/escaper for the observability layer.
//
// Registry::DumpJson() and the bench reports need machine-readable
// output, and the tests need to prove the output round-trips — so this
// is a real (if small) parser, not a regex.  It covers the JSON we
// emit: objects, arrays, strings with \-escapes, numbers, booleans,
// null.  It is not a general-purpose validator (no \u surrogate pairs,
// no depth limit) and is not meant for untrusted input.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ppm::obs::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> arr;
  std::map<std::string, Value> obj;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;
};

// nullopt on any syntax error or trailing garbage.
std::optional<Value> Parse(std::string_view text);

// Appends `s` to `out` with JSON string escaping applied (quotes not
// included).  Shared by every JSON emitter in the repo.
void AppendEscaped(std::string& out, std::string_view s);

}  // namespace ppm::obs::json

#include "obs/prof.h"

namespace ppm::obs::prof {

thread_local Scope* Scope::tls_current = nullptr;

#if defined(__x86_64__)
namespace fastclock {

// One-shot TSC calibration: sample (steady_clock, tsc) at both ends of
// a ~1ms spin and take the slope.  Preemption inside the window shifts
// both clocks equally, so the estimate's error is dominated by the two
// ~30ns steady_clock reads — parts-per-million over a 1ms window.
double NsPerTickSlow() {
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t c0 = NowTicks();
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now - t0 >= std::chrono::milliseconds(1)) {
      const uint64_t c1 = NowTicks();
      const double ns = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now - t0).count());
      const double ticks = static_cast<double>(c1 - c0);
      // A TSC that did not advance (emulators, clamped counters) would
      // make every span zero; fall back to a 1 tick = 1 ns identity so
      // the profiler degrades to "wrong scale" rather than "no data".
      return ticks > 0.0 ? ns / ticks : 1.0;
    }
  }
}

}  // namespace fastclock

namespace {
// Force calibration during static init: the ~1ms spin must not land
// inside the first live span, where it would inflate every enclosing
// span's measured duration.
[[maybe_unused]] const double ppm_tsc_calibrated = fastclock::NsPerTick();
}  // namespace
#endif

namespace {

// The accumulator discipline: relaxed load + store instead of lock-
// prefixed fetch_add.  Every access is still atomic (no torn reads, no
// UB), but two threads racing on the same site can lose an update —
// acceptable for statistics, and exact in the single-threaded simulator
// where every hot span lives.  A locked RMW costs 10-20ns on this
// class of machine; a span closes with ~7 of these, so the swap is the
// difference between the profiler being observable and being the
// bottleneck it is meant to find.
inline void BumpAdd(std::atomic<uint64_t>& slot, uint64_t v) {
  slot.store(slot.load(std::memory_order_relaxed) + v, std::memory_order_relaxed);
}

inline void BumpMin(std::atomic<uint64_t>& slot, uint64_t v) {
  if (v < slot.load(std::memory_order_relaxed)) slot.store(v, std::memory_order_relaxed);
}

inline void BumpMax(std::atomic<uint64_t>& slot, uint64_t v) {
  if (v > slot.load(std::memory_order_relaxed)) slot.store(v, std::memory_order_relaxed);
}

}  // namespace

// --- Site ------------------------------------------------------------

void Site::AddSample(uint64_t dur_ns, uint64_t child_ns, const Site* parent) {
  BumpAdd(count_, 1);
  BumpAdd(total_ns_, dur_ns);
  BumpAdd(child_ns_, child_ns);
  BumpMin(min_ns_, dur_ns);
  BumpMax(max_ns_, dur_ns);
  for (size_t i = 0; i < kEdgeSlots; ++i) {
    Edge& e = edges_[i];
    if (!e.claimed.load(std::memory_order_acquire)) {
      // Claim the slot for this parent; losing the race just means
      // re-inspecting the slot the winner claimed.  Slot claims are the
      // one place that keeps a real CAS: a mis-claimed slot would skew
      // every later sample, not just drop one.
      bool expected = false;
      if (e.claimed.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
        e.parent.store(parent, std::memory_order_release);
      }
    }
    if (e.parent.load(std::memory_order_acquire) == parent) {
      BumpAdd(e.count, 1);
      BumpAdd(e.total_ns, dur_ns);
      return;
    }
  }
  BumpAdd(overflow_edge_.count, 1);
  BumpAdd(overflow_edge_.total_ns, dur_ns);
}

void Site::ResetStats() {
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(UINT64_MAX, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
  child_ns_.store(0, std::memory_order_relaxed);
  for (Edge& e : edges_) {
    e.count.store(0, std::memory_order_relaxed);
    e.total_ns.store(0, std::memory_order_relaxed);
    e.parent.store(nullptr, std::memory_order_relaxed);
    e.claimed.store(false, std::memory_order_release);
  }
  overflow_edge_.count.store(0, std::memory_order_relaxed);
  overflow_edge_.total_ns.store(0, std::memory_order_relaxed);
}

// --- Scope -----------------------------------------------------------

Scope::~Scope() {
  const uint64_t end_ticks = fastclock::NowTicks();
  // end < start only on exotic unsynchronized-TSC migrations; clamp.
  const uint64_t dur_ns =
      end_ticks > start_ticks_ ? fastclock::TicksToNs(end_ticks - start_ticks_) : 0;
  tls_current = parent_;
  site_->AddSample(dur_ns, child_ns_, parent_ ? parent_->site_ : nullptr);
  if (parent_ != nullptr) parent_->child_ns_ += dur_ns;
  ProfRegistry& reg = ProfRegistry::Instance();
  if (reg.timeline_active()) {
    uint32_t depth = 0;
    for (Scope* s = parent_; s != nullptr; s = s->parent_) ++depth;
    reg.RecordTimelineSpan(site_, start_ticks_, end_ticks, depth);
  }
}

// --- ProfRegistry ----------------------------------------------------

ProfRegistry& ProfRegistry::Instance() {
  static ProfRegistry* registry = new ProfRegistry();  // never destroyed
  return *registry;
}

Site* ProfRegistry::GetSite(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sites_[name];
  if (!slot) slot.reset(new Site(name));
  return slot.get();
}

const Site* ProfRegistry::FindSite(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  return it == sites_.end() ? nullptr : it->second.get();
}

size_t ProfRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_.size();
}

std::vector<SiteSnapshot> ProfRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiteSnapshot> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    SiteSnapshot s;
    s.name = name;
    s.count = site->count_.load(std::memory_order_relaxed);
    s.total_ns = site->total_ns_.load(std::memory_order_relaxed);
    uint64_t mn = site->min_ns_.load(std::memory_order_relaxed);
    s.min_ns = mn == UINT64_MAX ? 0 : mn;
    s.max_ns = site->max_ns_.load(std::memory_order_relaxed);
    s.child_ns = site->child_ns_.load(std::memory_order_relaxed);
    auto add_edge = [&s](const Site::Edge& e, const std::string& label) {
      uint64_t n = e.count.load(std::memory_order_relaxed);
      if (n == 0) return;
      EdgeSnapshot es;
      es.parent = label;
      es.count = n;
      es.total_ns = e.total_ns.load(std::memory_order_relaxed);
      s.edges.push_back(std::move(es));
    };
    for (const Site::Edge& e : site->edges_) {
      if (!e.claimed.load(std::memory_order_acquire)) continue;
      const Site* p = e.parent.load(std::memory_order_acquire);
      add_edge(e, p == nullptr ? std::string() : p->name());
    }
    add_edge(site->overflow_edge_, "(other)");
    out.push_back(std::move(s));
  }
  return out;
}

void ProfRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) site->ResetStats();
  timeline_.clear();
  timeline_dropped_ = 0;
}

void ProfRegistry::StartTimeline(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  timeline_.clear();
  timeline_.reserve(capacity);
  timeline_capacity_ = capacity;
  timeline_dropped_ = 0;
  timeline_epoch_ticks_ = fastclock::NowTicks();
  timeline_on_.store(capacity > 0, std::memory_order_release);
}

std::vector<TimelineSpan> ProfRegistry::StopTimeline() {
  timeline_on_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(timeline_);
}

void ProfRegistry::RecordTimelineSpan(const Site* site, uint64_t start_ticks,
                                      uint64_t end_ticks, uint32_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  if (timeline_.size() >= timeline_capacity_) {
    ++timeline_dropped_;
    return;
  }
  if (start_ticks < timeline_epoch_ticks_) start_ticks = timeline_epoch_ticks_;
  if (end_ticks < start_ticks) end_ticks = start_ticks;
  TimelineSpan span;
  span.site = site;
  span.start_ns = fastclock::TicksToNs(start_ticks - timeline_epoch_ticks_);
  span.dur_ns = fastclock::TicksToNs(end_ticks - start_ticks);
  span.depth = depth;
  timeline_.push_back(span);
}

}  // namespace ppm::obs::prof

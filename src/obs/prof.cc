#include "obs/prof.h"

namespace ppm::obs::prof {

thread_local Scope* Scope::tls_current = nullptr;

namespace {

void AtomicMin(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& slot, uint64_t v) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

// --- Site ------------------------------------------------------------

void Site::AddSample(uint64_t dur_ns, uint64_t child_ns, const Site* parent) {
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(dur_ns, std::memory_order_relaxed);
  child_ns_.fetch_add(child_ns, std::memory_order_relaxed);
  AtomicMin(min_ns_, dur_ns);
  AtomicMax(max_ns_, dur_ns);
  for (size_t i = 0; i < kEdgeSlots; ++i) {
    Edge& e = edges_[i];
    if (!e.claimed.load(std::memory_order_acquire)) {
      // Claim the slot for this parent; losing the race just means
      // re-inspecting the slot the winner claimed.
      bool expected = false;
      if (e.claimed.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
        e.parent.store(parent, std::memory_order_release);
      }
    }
    if (e.parent.load(std::memory_order_acquire) == parent) {
      e.count.fetch_add(1, std::memory_order_relaxed);
      e.total_ns.fetch_add(dur_ns, std::memory_order_relaxed);
      return;
    }
  }
  overflow_edge_.count.fetch_add(1, std::memory_order_relaxed);
  overflow_edge_.total_ns.fetch_add(dur_ns, std::memory_order_relaxed);
}

void Site::ResetStats() {
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
  min_ns_.store(UINT64_MAX, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
  child_ns_.store(0, std::memory_order_relaxed);
  for (Edge& e : edges_) {
    e.count.store(0, std::memory_order_relaxed);
    e.total_ns.store(0, std::memory_order_relaxed);
    e.parent.store(nullptr, std::memory_order_relaxed);
    e.claimed.store(false, std::memory_order_release);
  }
  overflow_edge_.count.store(0, std::memory_order_relaxed);
  overflow_edge_.total_ns.store(0, std::memory_order_relaxed);
}

// --- Scope -----------------------------------------------------------

Scope::~Scope() {
  auto end = std::chrono::steady_clock::now();
  auto dur = std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_);
  uint64_t dur_ns = dur.count() > 0 ? static_cast<uint64_t>(dur.count()) : 0;
  tls_current = parent_;
  site_->AddSample(dur_ns, child_ns_, parent_ ? parent_->site_ : nullptr);
  if (parent_ != nullptr) parent_->child_ns_ += dur_ns;
  ProfRegistry& reg = ProfRegistry::Instance();
  if (reg.timeline_active()) {
    uint32_t depth = 0;
    for (Scope* s = parent_; s != nullptr; s = s->parent_) ++depth;
    reg.RecordTimelineSpan(site_, start_, end, depth);
  }
}

// --- ProfRegistry ----------------------------------------------------

ProfRegistry& ProfRegistry::Instance() {
  static ProfRegistry* registry = new ProfRegistry();  // never destroyed
  return *registry;
}

Site* ProfRegistry::GetSite(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = sites_[name];
  if (!slot) slot.reset(new Site(name));
  return slot.get();
}

const Site* ProfRegistry::FindSite(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(name);
  return it == sites_.end() ? nullptr : it->second.get();
}

size_t ProfRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sites_.size();
}

std::vector<SiteSnapshot> ProfRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SiteSnapshot> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    SiteSnapshot s;
    s.name = name;
    s.count = site->count_.load(std::memory_order_relaxed);
    s.total_ns = site->total_ns_.load(std::memory_order_relaxed);
    uint64_t mn = site->min_ns_.load(std::memory_order_relaxed);
    s.min_ns = mn == UINT64_MAX ? 0 : mn;
    s.max_ns = site->max_ns_.load(std::memory_order_relaxed);
    s.child_ns = site->child_ns_.load(std::memory_order_relaxed);
    auto add_edge = [&s](const Site::Edge& e, const std::string& label) {
      uint64_t n = e.count.load(std::memory_order_relaxed);
      if (n == 0) return;
      EdgeSnapshot es;
      es.parent = label;
      es.count = n;
      es.total_ns = e.total_ns.load(std::memory_order_relaxed);
      s.edges.push_back(std::move(es));
    };
    for (const Site::Edge& e : site->edges_) {
      if (!e.claimed.load(std::memory_order_acquire)) continue;
      const Site* p = e.parent.load(std::memory_order_acquire);
      add_edge(e, p == nullptr ? std::string() : p->name());
    }
    add_edge(site->overflow_edge_, "(other)");
    out.push_back(std::move(s));
  }
  return out;
}

void ProfRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, site] : sites_) site->ResetStats();
  timeline_.clear();
  timeline_dropped_ = 0;
}

void ProfRegistry::StartTimeline(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  timeline_.clear();
  timeline_.reserve(capacity);
  timeline_capacity_ = capacity;
  timeline_dropped_ = 0;
  timeline_epoch_ = std::chrono::steady_clock::now();
  timeline_on_.store(capacity > 0, std::memory_order_release);
}

std::vector<TimelineSpan> ProfRegistry::StopTimeline() {
  timeline_on_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(timeline_);
}

void ProfRegistry::RecordTimelineSpan(const Site* site,
                                      std::chrono::steady_clock::time_point start,
                                      std::chrono::steady_clock::time_point end,
                                      uint32_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  if (timeline_.size() >= timeline_capacity_) {
    ++timeline_dropped_;
    return;
  }
  if (start < timeline_epoch_) start = timeline_epoch_;
  if (end < start) end = start;
  TimelineSpan span;
  span.site = site;
  span.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(start - timeline_epoch_)
          .count());
  span.dur_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count());
  span.depth = depth;
  timeline_.push_back(span);
}

}  // namespace ppm::obs::prof

#include "obs/flight.h"

#include <cstdio>
#include <cstring>

namespace ppm::obs {

namespace {

constexpr size_t kDefaultCapacity = 256;

void CopyField(char* dst, size_t cap, std::string_view src) {
  size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

const char* ToString(FlightKind k) {
  switch (k) {
    case FlightKind::kFrameSent: return "frame.sent";
    case FlightKind::kFrameRecv: return "frame.recv";
    case FlightKind::kKernelEvent: return "kernel.event";
    case FlightKind::kStateTransition: return "state";
    case FlightKind::kTimerFired: return "timer";
    case FlightKind::kJournalSync: return "journal.sync";
    case FlightKind::kInvariantViolation: return "invariant.violation";
    case FlightKind::kHostCrash: return "host.crash";
    case FlightKind::kRequestShed: return "request.shed";
    case FlightKind::kRequestExpired: return "request.expired";
    case FlightKind::kRetry: return "request.retry";
    case FlightKind::kBreakerOpen: return "breaker.open";
    case FlightKind::kBreakerClose: return "breaker.close";
    case FlightKind::kGroupSpawn: return "group.spawn";
    case FlightKind::kBarrierRelease: return "barrier.release";
    case FlightKind::kEnvarUpdate: return "envar.update";
  }
  return "?";
}

FlightRecorder::FlightRecorder() : ring_(kDefaultCapacity) {}

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

void FlightRecorder::set_capacity(size_t n) {
  if (n == 0) n = 1;
  ring_.assign(n, FlightRecord{});
  head_ = 0;
  count_ = 0;
}

void FlightRecorder::Record(FlightKind kind, std::string_view host,
                            std::string_view detail, uint64_t trace_id, uint64_t a,
                            uint64_t b) {
  if (!enabled_) return;
  FlightRecord& slot = ring_[head_];
  slot.at_us = Now();
  slot.trace_id = trace_id;
  slot.a = a;
  slot.b = b;
  slot.kind = kind;
  CopyField(slot.host, sizeof(slot.host), host);
  CopyField(slot.detail, sizeof(slot.detail), detail);
  head_ = (head_ + 1) % ring_.size();
  ++count_;
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> out;
  size_t n = size();
  out.reserve(n);
  // Oldest retained record sits at head_ once the ring has wrapped;
  // before that, slot 0.
  size_t start = (count_ >= ring_.size()) ? head_ : 0;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string FormatFlightRecord(const FlightRecord& rec) {
  char buf[160];
  int len = std::snprintf(buf, sizeof(buf), "[%10llu us] %-19s %-12s %s",
                          static_cast<unsigned long long>(rec.at_us), ToString(rec.kind),
                          rec.host, rec.detail);
  std::string out(buf, len > 0 ? static_cast<size_t>(len) : 0);
  if (rec.a != 0 || rec.b != 0) {
    out += " a=" + std::to_string(rec.a);
    if (rec.b != 0) out += " b=" + std::to_string(rec.b);
  }
  if (rec.trace_id != 0) out += " trace=" + std::to_string(rec.trace_id);
  return out;
}

std::string FlightRecorder::Dump(std::string_view reason) {
  std::vector<FlightRecord> records = Snapshot();
  std::string out = "=== flight recorder dump: ";
  out += reason;
  out += " ===\n";
  out += "last " + std::to_string(records.size()) + " of " + std::to_string(count_) +
         " records";
  if (count_ > records.size()) {
    out += " (" + std::to_string(count_ - records.size()) + " older records lost to the ring)";
  }
  out += "\n";
  for (const FlightRecord& rec : records) {
    out += FormatFlightRecord(rec);
    out += '\n';
  }
  out += "=== end of dump ===\n";
  ++dumps_;
  last_dump_ = out;
  return out;
}

void FlightRecorder::Clear() {
  for (FlightRecord& rec : ring_) rec = FlightRecord{};
  head_ = 0;
  count_ = 0;
  dumps_ = 0;
  last_dump_.clear();
}

}  // namespace ppm::obs

// prof.h — the wall-clock hot-path profiler (ppmprof's data source).
//
// Everything else in obs/ is denominated in *virtual* time; ROADMAP
// item 2 ("millions of events/sec wall-clock") needs the other clock.
// PPM_PROF_SCOPE("name") opens a scoped span over the wall clock; spans
// accumulate into a process-wide flat registry of Sites holding
// count/total/min/max nanoseconds plus the time spent in *child* spans,
// so self (exclusive) time falls out as total - child.  A thread-local
// stack of open scopes provides the parent links, and each Site keeps a
// small parent->edge table so a top-down (caller tree) view can be
// reconstructed offline by tools/ppmprof.
//
// Cost model: one clock read at open, one at close, and a handful of
// relaxed atomic adds — no allocation, no locking, no formatting on the
// hot path.  On x86-64 the clock is the raw TSC (a single rdtsc, ~6ns)
// calibrated once against steady_clock so every reported figure stays
// nanosecond-denominated; elsewhere it falls back to steady_clock.
// Site lookup happens once per call site (function-local static) or
// once per dynamic name (caller-cached pointer).
//
// Compile-out: building with -DPPM_PROFILE=OFF (which defines
// PPM_PROFILE_DISABLED) turns PPM_PROF_SCOPE into `(void)0` — zero code
// on the hot path.  The registry API itself stays compiled in both
// modes so report tooling links unconditionally; it simply sees no data.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#if defined(PPM_PROFILE_DISABLED)
#define PPM_PROF_ENABLED 0
#else
#define PPM_PROF_ENABLED 1
#endif

namespace ppm::obs::prof {

class Site;

// The profiler's time source.  Spans are measured in opaque ticks
// (cheapest available monotonic counter) and converted to nanoseconds
// only when a span closes.  On x86-64 ticks are raw TSC reads and the
// tick->ns rate is calibrated once per process against steady_clock;
// on other targets ticks already ARE steady_clock nanoseconds.
namespace fastclock {
#if defined(__x86_64__)
inline uint64_t NowTicks() { return __builtin_ia32_rdtsc(); }
// Calibrates (spins ~1ms against steady_clock) on first use; prof.cc.
double NsPerTickSlow();
inline double NsPerTick() {
  static const double rate = NsPerTickSlow();
  return rate;
}
inline uint64_t TicksToNs(uint64_t ticks) {
  return static_cast<uint64_t>(static_cast<double>(ticks) * NsPerTick() + 0.5);
}
#else
inline uint64_t NowTicks() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
inline uint64_t TicksToNs(uint64_t ticks) { return ticks; }
#endif
}  // namespace fastclock

// One caller edge of a site, as captured by Snapshot().  `parent` is the
// enclosing span's site name, "" when the span opened with no enclosing
// span (a root), "(other)" for callers beyond the fixed edge table.
struct EdgeSnapshot {
  std::string parent;
  uint64_t count = 0;
  uint64_t total_ns = 0;
};

// Point-in-time copy of one site's accumulators.
struct SiteSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;
  uint64_t child_ns = 0;  // wall time spent inside nested spans
  std::vector<EdgeSnapshot> edges;

  // Exclusive (self) time: total minus nested spans.
  uint64_t self_ns() const { return total_ns >= child_ns ? total_ns - child_ns : 0; }
};

// One captured span occurrence (timeline mode only; see
// ProfRegistry::StartTimeline).  Times are wall nanoseconds relative to
// the capture epoch.
struct TimelineSpan {
  const Site* site = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t depth = 0;  // open scopes above this one when it closed
};

// A named accumulation point.  Sites are created by the registry, never
// destroyed, and safe to touch from any thread: the accumulators are
// relaxed atomics updated load+store (no locked RMW on the hot path, so
// concurrent writers to one site may lose individual samples — exact in
// the single-threaded simulator) and the edge table is a fixed array
// whose slots are claimed by CAS.
class Site {
 public:
  const std::string& name() const { return name_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t total_ns() const { return total_ns_.load(std::memory_order_relaxed); }

  // Folds one closed span into the accumulators.  `parent` is the site
  // of the enclosing open span (nullptr = root).
  void AddSample(uint64_t dur_ns, uint64_t child_ns, const Site* parent);

 private:
  friend class ProfRegistry;
  explicit Site(std::string name) : name_(std::move(name)) {}
  void ResetStats();

  // Distinct parents per site are few (typically 1-3); kEdgeSlots slots
  // are claimed first-come by CAS and everything past them lands in one
  // shared overflow edge reported as "(other)".
  static constexpr size_t kEdgeSlots = 8;
  struct Edge {
    std::atomic<const Site*> parent{nullptr};
    std::atomic<bool> claimed{false};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> total_ns{0};
  };

  std::string name_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> min_ns_{UINT64_MAX};
  std::atomic<uint64_t> max_ns_{0};
  std::atomic<uint64_t> child_ns_{0};
  Edge edges_[kEdgeSlots];
  Edge overflow_edge_;
};

// Process-wide span registry, the wall-clock sibling of obs::Registry.
// GetSite resolves a name once into a stable Site*; Reset() zeroes the
// accumulators but keeps every handle valid (same lifetime contract as
// the metrics registry).
class ProfRegistry {
 public:
  static ProfRegistry& Instance();

  Site* GetSite(const std::string& name);
  // nullptr when absent — for tests and exporters.
  const Site* FindSite(const std::string& name) const;

  std::vector<SiteSnapshot> Snapshot() const;
  void Reset();
  size_t size() const;

  // Timeline capture: while active, every closed scope appends one
  // TimelineSpan (up to `capacity`; later spans are dropped and counted).
  // Used to merge profiler spans into the trace_export timeline.
  void StartTimeline(size_t capacity);
  std::vector<TimelineSpan> StopTimeline();
  bool timeline_active() const {
    return timeline_on_.load(std::memory_order_relaxed);
  }
  uint64_t timeline_dropped() const { return timeline_dropped_; }

  // Internal: called by Scope's destructor in timeline mode.  Times are
  // fastclock ticks; conversion to epoch-relative ns happens here, off
  // the span-close fast path.
  void RecordTimelineSpan(const Site* site, uint64_t start_ticks,
                          uint64_t end_ticks, uint32_t depth);

 private:
  ProfRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Site>> sites_;
  std::atomic<bool> timeline_on_{false};
  uint64_t timeline_epoch_ticks_ = 0;
  size_t timeline_capacity_ = 0;
  uint64_t timeline_dropped_ = 0;
  std::vector<TimelineSpan> timeline_;
};

// RAII span.  Construction pushes onto the thread-local open-scope
// stack; destruction pops, charges the duration to the site, and adds it
// to the parent's child time (that is the whole exclusive-time scheme).
class Scope {
 public:
  explicit Scope(Site* site) noexcept
      : site_(site), parent_(tls_current), start_ticks_(fastclock::NowTicks()) {
    tls_current = this;
  }
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  static Scope* Current() { return tls_current; }

 private:
  Site* site_;
  Scope* parent_;
  uint64_t start_ticks_;
  uint64_t child_ns_ = 0;
  static thread_local Scope* tls_current;
};

}  // namespace ppm::obs::prof

#define PPM_PROF_CONCAT_(a, b) a##b
#define PPM_PROF_CONCAT(a, b) PPM_PROF_CONCAT_(a, b)

#if PPM_PROF_ENABLED
// Opens a span named `name` (a string literal or std::string; resolved
// to a Site* once per call site) covering the rest of the block.
#define PPM_PROF_SCOPE(name)                                                 \
  static ::ppm::obs::prof::Site* PPM_PROF_CONCAT(ppm_prof_site_, __LINE__) = \
      ::ppm::obs::prof::ProfRegistry::Instance().GetSite(name);              \
  ::ppm::obs::prof::Scope PPM_PROF_CONCAT(ppm_prof_scope_, __LINE__)(        \
      PPM_PROF_CONCAT(ppm_prof_site_, __LINE__))
// Opens a span on an already-resolved Site* (for dynamic names whose
// lookup the caller caches, e.g. the simulator's per-label sites).
#define PPM_PROF_SCOPE_SITE(site) \
  ::ppm::obs::prof::Scope PPM_PROF_CONCAT(ppm_prof_scope_, __LINE__)(site)
#else
#define PPM_PROF_SCOPE(name) static_cast<void>(0)
#define PPM_PROF_SCOPE_SITE(site) static_cast<void>(0)
#endif

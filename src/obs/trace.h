// trace.h — causal tracing across the PPM's message fabric.
//
// The paper's snapshot broadcast records "the exact source-destination
// route" every request travelled so replies can retrace it.  Tracing
// generalises that: a TraceContext (trace id + span id + parent span)
// rides on wire messages (core/wire.h prepends a compact trace header
// when a context is present), every hop opens a child span at the
// sender and closes it when the message arrives, and all spans are
// stamped in VIRTUAL time.  A finished snapshot therefore replays as
// the covering-graph tree it actually traversed — render it with
// tools/trace_export.h.
//
// Like the Logger and the metrics Registry, the Tracer is a process
// singleton with a pluggable time source; the Simulator registers its
// virtual clock on construction.  Span storage is bounded (a ring like
// core/history's EventLog): old spans fall off, the span counter does
// not — design rule 3 again.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace ppm::obs {

// The context carried on a wire message.  trace_id == 0 means "not
// traced" — the wire format then stays byte-identical to the untraced
// encoding, so tracing costs nothing when off.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;

  bool valid() const { return trace_id != 0; }
};

// One hop (or one root) of a trace: opened at the sender, closed when
// the message reaches the destination.  Times are virtual microseconds.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;  // 0 for the root span
  std::string name;          // usually the wire message type
  std::string src_host;
  std::string dst_host;  // empty until the message arrives
  uint64_t start_us = 0;
  uint64_t end_us = 0;
  bool arrived = false;
};

class Tracer {
 public:
  static Tracer& Instance();

  // Virtual-time provider (registered by sim::Simulator, like the
  // Logger's); nullptr reverts to zero stamps.
  void set_time_source(std::function<uint64_t()> now) { now_ = std::move(now); }

  // Bounded span storage; oldest spans are evicted first.
  void set_capacity(size_t spans);
  size_t capacity() const { return capacity_; }

  // Opens a new trace rooted at `host`; the returned context seeds the
  // first sends.  The root span is complete immediately (it represents
  // the originating operation, not a hop).
  TraceContext StartTrace(const std::string& name, const std::string& host);

  // Opens a hop span under `parent`.  No-op ({}) when the parent is
  // invalid, so call sites need no "is tracing on?" branches.
  TraceContext StartSpan(const TraceContext& parent, const std::string& name,
                         const std::string& src_host);

  // Closes the hop: the message carrying `ctx` reached `dst_host` now.
  void RecordArrival(const TraceContext& ctx, const std::string& dst_host);

  // All retained spans of a trace, ordered by start time then span id.
  std::vector<SpanRecord> Trace(uint64_t trace_id) const;

  uint64_t last_trace_id() const { return next_trace_id_ - 1; }
  uint64_t traces_started() const { return next_trace_id_ - 1; }
  size_t span_count() const { return spans_.size(); }
  uint64_t spans_dropped() const { return dropped_; }

  // Forgets retained spans; ids keep advancing (a cleared tracer never
  // reuses a trace id).
  void Clear();

 private:
  Tracer() = default;
  uint64_t Now() const { return now_ ? now_() : 0; }
  SpanRecord* Find(uint64_t span_id);
  void Push(SpanRecord rec);

  std::function<uint64_t()> now_;
  std::deque<SpanRecord> spans_;
  size_t capacity_ = 65536;
  uint64_t next_trace_id_ = 1;
  uint64_t next_span_id_ = 1;
  uint64_t dropped_ = 0;
};

}  // namespace ppm::obs

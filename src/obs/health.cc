#include "obs/health.h"

#include <cstdio>

#include "obs/json.h"

namespace ppm::obs {

namespace {

void AppendNum(std::string& out, double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<int64_t>(v)) && v < 1e15 && v > -1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

std::string Ratio(uint64_t num, uint64_t den) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f",
                den ? static_cast<double>(num) / static_cast<double>(den) : 0.0);
  return buf;
}

}  // namespace

const char* ToString(HealthLevel level) {
  return level == HealthLevel::kHealthy ? "healthy" : "degraded";
}

HealthReport ClassifyLpm(const LpmHealthInputs& in, const HealthThresholds& t) {
  HealthReport out;
  if (in.eventlog_recorded > 0) {
    double drop = static_cast<double>(in.eventlog_dropped) /
                  static_cast<double>(in.eventlog_recorded);
    if (drop > t.eventlog_drop_ratio) {
      out.reasons.push_back("event log dropping (" +
                            Ratio(in.eventlog_dropped, in.eventlog_recorded) +
                            " of recorded events evicted)");
    }
  }
  if (in.bcasts_handled > 0) {
    double dup = static_cast<double>(in.bcast_duplicates) /
                 static_cast<double>(in.bcasts_handled);
    if (dup > t.bcast_dup_ratio) {
      out.reasons.push_back("broadcast duplicate storm (" +
                            Ratio(in.bcast_duplicates, in.bcasts_handled) +
                            " dups per broadcast)");
    }
  }
  if (in.requests > 0) {
    // Deadline-expired cancellations are missed requests just like
    // explicit timeouts — the origin got an error either way.
    uint64_t missed = in.request_timeouts + in.deadline_expired;
    double to = static_cast<double>(missed) / static_cast<double>(in.requests);
    if (to > t.timeout_ratio) {
      out.reasons.push_back("request timeouts (" + Ratio(missed, in.requests) +
                            " of requests timed out or expired)");
    }
  }
  if (in.handler_queue_depth > t.handler_queue_depth) {
    out.reasons.push_back("dispatcher backlog (" +
                          std::to_string(in.handler_queue_depth) + " queued)");
  }
  if (in.journal_pending > t.journal_pending) {
    out.reasons.push_back("journal sync lag (" + std::to_string(in.journal_pending) +
                          " frames unsynced)");
  }
  // Shed requests never entered `requests` (rejected at admission), so
  // the offered load is requests + shed.
  uint64_t offered = in.requests + in.requests_shed;
  if (offered > 0) {
    double shed = static_cast<double>(in.requests_shed) /
                  static_cast<double>(offered);
    if (shed > t.shed_ratio) {
      out.reasons.push_back("load shedding (" + Ratio(in.requests_shed, offered) +
                            " of offered requests rejected)");
    }
  }
  if (in.breaker_open >= t.breaker_open && in.breaker_open > 0) {
    out.reasons.push_back("circuit breakers open (" +
                          std::to_string(in.breaker_open) + " peers quarantined)");
  }
  out.level = out.reasons.empty() ? HealthLevel::kHealthy : HealthLevel::kDegraded;
  return out;
}

HealthMonitor::HealthMonitor() {
  // Default SLO thresholds for the cluster-wide signals; call sites and
  // tests may override.  Units: watermarks in their native unit, rates
  // in events/second.
  thresholds_["lpm.queue.depth"] = 8;
  thresholds_["store.journal.pending"] = 64;
  thresholds_["net.rdp.retransmit"] = 50;
  thresholds_["lpm.bcast.dup"] = 100;
}

HealthMonitor& HealthMonitor::Instance() {
  static HealthMonitor* monitor = new HealthMonitor();  // never destroyed
  return *monitor;
}

void HealthMonitor::Watermark(const std::string& name, double v) {
  auto it = watermarks_.find(name);
  if (it == watermarks_.end()) {
    watermarks_[name] = v;
  } else if (v > it->second) {
    it->second = v;
  }
}

double HealthMonitor::WatermarkOf(const std::string& name) const {
  auto it = watermarks_.find(name);
  return it == watermarks_.end() ? 0 : it->second;
}

void HealthMonitor::EvictOld(std::deque<std::pair<uint64_t, uint64_t>>& window) const {
  uint64_t now = Now();
  uint64_t cutoff = now > window_us_ ? now - window_us_ : 0;
  while (!window.empty() && window.front().first < cutoff) window.pop_front();
}

void HealthMonitor::RateEvent(const std::string& name, uint64_t n) {
  auto& window = rates_[name];
  window.emplace_back(Now(), n);
  EvictOld(window);
}

double HealthMonitor::RateOf(const std::string& name) const {
  auto it = rates_.find(name);
  if (it == rates_.end()) return 0;
  EvictOld(it->second);
  uint64_t total = 0;
  for (const auto& [at, n] : it->second) total += n;
  return static_cast<double>(total) / (static_cast<double>(window_us_) / 1e6);
}

bool HealthMonitor::degraded() const {
  for (const auto& [name, hi] : watermarks_) {
    auto t = thresholds_.find(name);
    if (t != thresholds_.end() && hi > t->second) return true;
  }
  for (const auto& [name, window] : rates_) {
    auto t = thresholds_.find(name);
    if (t != thresholds_.end() && RateOf(name) > t->second) return true;
  }
  return false;
}

std::string HealthMonitor::DumpJsonFragment() const {
  std::string out = "{\"level\":\"";
  out += ToString(degraded() ? HealthLevel::kDegraded : HealthLevel::kHealthy);
  out += "\",\"watermarks\":{";
  bool first = true;
  for (const auto& [name, hi] : watermarks_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json::AppendEscaped(out, name);
    out += "\":{\"hi\":";
    AppendNum(out, hi);
    auto t = thresholds_.find(name);
    if (t != thresholds_.end()) {
      out += ",\"threshold\":";
      AppendNum(out, t->second);
      out += ",\"degraded\":";
      out += hi > t->second ? "true" : "false";
    }
    out += '}';
  }
  out += "},\"rates\":{";
  first = true;
  for (const auto& [name, window] : rates_) {
    if (!first) out += ',';
    first = false;
    double rate = RateOf(name);
    out += '"';
    json::AppendEscaped(out, name);
    out += "\":{\"per_sec\":";
    AppendNum(out, rate);
    auto t = thresholds_.find(name);
    if (t != thresholds_.end()) {
      out += ",\"threshold\":";
      AppendNum(out, t->second);
      out += ",\"degraded\":";
      out += rate > t->second ? "true" : "false";
    }
    out += '}';
  }
  out += "}}";
  return out;
}

void HealthMonitor::Reset() {
  watermarks_.clear();
  rates_.clear();
  thresholds_.clear();
  HealthMonitor defaults;
  thresholds_ = defaults.thresholds_;
}

}  // namespace ppm::obs

// metrics.h — the METRIC-style measurement registry of the PPM.
//
// The paper couples the PPM to METRIC: LPMs "record historical processing
// information" whose volume the user tunes, and design rule 3 demands
// overhead proportional to service provided.  This registry is that idea
// as a library: named counters, gauges, and log-linear histograms behind
// a process-wide Registry.  Call sites resolve a name ONCE into a stable
// handle (Counter*/Gauge*/Histogram*) and the hot path is a plain
// increment — no map lookups, no allocation, no formatting.
//
// Lifetime contract: instruments are never deallocated while the process
// lives.  Registry::Reset() zeroes every value but keeps every handle
// valid, so function-local static handles (the common idiom at call
// sites) survive test-to-test resets.
//
// The registry is single-threaded like the rest of the simulation; the
// interesting concurrency in this codebase is simulated, not native.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ppm::obs {

class Counter {
 public:
  void Inc(uint64_t by = 1) { value_ += by; }
  uint64_t value() const { return value_; }

 private:
  friend class Registry;
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  friend class Registry;
  double value_ = 0;
};

// Decimal log-linear histogram: decades 1e-3 .. 1e12, nine linear
// sub-buckets per decade (lower bound digit*10^d), 144 buckets total.
// Values <= 0 land in a separate underflow bucket; values at or beyond
// the top bucket's upper edge (1e13) land in a symmetric overflow
// bucket.  Within the decade range, BucketIndex clamps small values to
// the first bucket.  The scheme is fixed (no per-histogram
// configuration) so every dump is comparable and the bucket math is
// trivially testable.
class Histogram {
 public:
  static constexpr int kMinDecade = -3;
  static constexpr int kMaxDecade = 12;
  static constexpr int kDecades = kMaxDecade - kMinDecade + 1;  // 16
  static constexpr int kBucketCount = kDecades * 9;             // 144

  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }

  // Lower-bound estimate: the lower edge of the bucket holding the
  // q-th quantile observation (q in [0,1]).  Deterministic, which
  // matters more for regression tracking than interpolation accuracy.
  // An observation exactly on a bucket's lower edge reports that edge:
  // Quantile never invents a value between bucket boundaries.
  double Quantile(double q) const;

  // Percentile(p) == Quantile(p/100), p in [0,100].
  double Percentile(double p) const { return Quantile(p / 100.0); }

  struct Bucket {
    double lo;
    double hi;
    uint64_t count;
  };
  std::vector<Bucket> NonZeroBuckets() const;

  // Exposed for tests: the bucket index a value maps to (-1 = underflow)
  // and the [lo, hi) bounds of a bucket index.
  static int BucketIndex(double v);
  static Bucket BucketBounds(int idx);

 private:
  friend class Registry;
  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Process-wide instrument registry.  Get* returns the instrument with
// that name, creating it on first use; the returned pointer is stable
// for the life of the process.  Names are dotted paths, lowercase:
// "<subsystem>.<object>.<measure>[.<unit>]" — e.g. "net.frames.sent",
// "lpm.snapshot.ms" (see DESIGN.md §Observability).
class Registry {
 public:
  static Registry& Instance();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // nullptr when absent — for tests and exporters, not hot paths.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  size_t size() const { return counters_.size() + gauges_.size() + histograms_.size(); }

  // Ordered iteration over every instrument — exporters and the series
  // sampler walk these; hot paths never do.
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    for (const auto& [name, c] : counters_) fn(name, *c);
  }
  template <typename Fn>
  void ForEachGauge(Fn&& fn) const {
    for (const auto& [name, g] : gauges_) fn(name, *g);
  }
  template <typename Fn>
  void ForEachHistogram(Fn&& fn) const {
    for (const auto& [name, h] : histograms_) fn(name, *h);
  }

  // Zeroes every instrument's value.  Handles stay valid (instruments
  // are never deallocated); names stay registered.
  void Reset();

  // Full snapshot as one JSON object:
  //   {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  //    min,max,mean,p50,p90,p99,underflow,buckets:[{lo,hi,n},...]}}}
  // Keys are emitted in sorted order so dumps diff cleanly.
  std::string DumpJson() const;

 private:
  Registry() = default;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ppm::obs

#include "obs/trace.h"

#include <algorithm>

#include "obs/metrics.h"

namespace ppm::obs {

Tracer& Tracer::Instance() {
  static Tracer* tracer = new Tracer();  // never destroyed: mirrors Registry
  return *tracer;
}

void Tracer::set_capacity(size_t spans) {
  capacity_ = spans == 0 ? 1 : spans;
  while (spans_.size() > capacity_) {
    spans_.pop_front();
    ++dropped_;
  }
}

void Tracer::Push(SpanRecord rec) {
  if (spans_.size() >= capacity_) {
    spans_.pop_front();
    ++dropped_;
  }
  spans_.push_back(std::move(rec));
}

TraceContext Tracer::StartTrace(const std::string& name, const std::string& host) {
  static Counter* traces = Registry::Instance().GetCounter("obs.traces.started");
  traces->Inc();
  TraceContext ctx;
  ctx.trace_id = next_trace_id_++;
  ctx.span_id = next_span_id_++;
  ctx.parent_span = 0;
  SpanRecord rec;
  rec.trace_id = ctx.trace_id;
  rec.span_id = ctx.span_id;
  rec.parent_span = 0;
  rec.name = name;
  rec.src_host = host;
  rec.dst_host = host;
  rec.start_us = Now();
  rec.end_us = rec.start_us;
  rec.arrived = true;
  Push(std::move(rec));
  return ctx;
}

TraceContext Tracer::StartSpan(const TraceContext& parent, const std::string& name,
                               const std::string& src_host) {
  if (!parent.valid()) return {};
  static Counter* spans = Registry::Instance().GetCounter("obs.spans.started");
  spans->Inc();
  TraceContext ctx;
  ctx.trace_id = parent.trace_id;
  ctx.span_id = next_span_id_++;
  ctx.parent_span = parent.span_id;
  SpanRecord rec;
  rec.trace_id = ctx.trace_id;
  rec.span_id = ctx.span_id;
  rec.parent_span = ctx.parent_span;
  rec.name = name;
  rec.src_host = src_host;
  rec.start_us = Now();
  rec.end_us = rec.start_us;
  Push(std::move(rec));
  return ctx;
}

SpanRecord* Tracer::Find(uint64_t span_id) {
  // Arrivals close spans opened moments (of virtual time) ago, so scan
  // from the newest end.
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->span_id == span_id) return &*it;
  }
  return nullptr;
}

void Tracer::RecordArrival(const TraceContext& ctx, const std::string& dst_host) {
  if (!ctx.valid()) return;
  SpanRecord* rec = Find(ctx.span_id);
  if (rec == nullptr) {  // evicted before arrival
    static Counter* lost = Registry::Instance().GetCounter("obs.spans.arrival_after_evict");
    lost->Inc();
    return;
  }
  rec->dst_host = dst_host;
  rec->end_us = Now();
  rec->arrived = true;
}

std::vector<SpanRecord> Tracer::Trace(uint64_t trace_id) const {
  std::vector<SpanRecord> out;
  for (const SpanRecord& rec : spans_) {
    if (rec.trace_id == trace_id) out.push_back(rec);
  }
  std::stable_sort(out.begin(), out.end(), [](const SpanRecord& a, const SpanRecord& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.span_id < b.span_id;
  });
  return out;
}

void Tracer::Clear() { spans_.clear(); }

}  // namespace ppm::obs

// flight.h — the black-box flight recorder.
//
// A crashed aircraft is reconstructed from its last N seconds of
// instrument readings; a failed chaos seed should be reconstructible the
// same way.  The FlightRecorder is an always-on, fixed-size ring of
// compact structured records — wire frames sent and received, LPM state
// transitions, timer fires, journal syncs — each tagged with the trace
// id it belongs to, so a dump interleaves with the causal trace timeline
// (tools/trace_export.h).
//
// Cost discipline (design rule 3 again): one Record() is O(1) — a slot
// overwrite in a preallocated ring, no allocation, no formatting.  The
// record is plain-old-data with fixed char fields; long details truncate
// rather than allocate.  bench_overhead measures the recorder's cost on
// the kernel-message hot path and holds it under 5%.
//
// Dumps happen when a chaos invariant fails (chaos/engine.cc), when a
// Host crashes (host/host.cc), or on demand through the STAT protocol
// (a StatReq with dump_flight set).  Like the Tracer and the metrics
// Registry, the recorder is a process singleton with a pluggable
// virtual-time source registered by sim::Simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace ppm::obs {

enum class FlightKind : uint8_t {
  kFrameSent = 0,       // wire frame left an LPM (a = conn id)
  kFrameRecv,           // wire frame arrived (a = conn id)
  kKernelEvent,         // 112-byte kernel event hit the kernel socket (a = pid)
  kStateTransition,     // LPM mode change (detail = "from->to")
  kTimerFired,          // ttl / death / retry / probe timer fired
  kJournalSync,         // journal physical sync (a = bytes flushed)
  kInvariantViolation,  // chaos invariant failed (detail = invariant name)
  kHostCrash,           // host hard-crashed
  // Overload protection (PR 8):
  kRequestShed,         // admission rejected a request (a = req_id, b = depth)
  kRequestExpired,      // deadline-expired work cancelled (a = req_id)
  kRetry,               // forward attempt retried (a = req_id, b = attempt)
  kBreakerOpen,         // per-host circuit breaker tripped (detail = host)
  kBreakerClose,        // breaker readmitted the peer (detail = host)
  // Group operations (PR 9):
  kGroupSpawn,          // gang-spawn decided (a = members, b = 1 rollback)
  kBarrierRelease,      // barrier verdict (detail = name, a = epoch, b = released)
  kEnvarUpdate,         // envar change applied (detail = key, a = version)
};

const char* ToString(FlightKind k);

// One ring slot.  Fixed-size so the ring is a flat preallocated vector;
// host and detail truncate to their fields (NUL-terminated).
struct FlightRecord {
  uint64_t at_us = 0;
  uint64_t trace_id = 0;  // 0 = not part of a causal trace
  uint64_t a = 0;         // kind-specific numeric args
  uint64_t b = 0;
  FlightKind kind = FlightKind::kFrameSent;
  char host[16] = {0};
  char detail[24] = {0};
};

class FlightRecorder {
 public:
  static FlightRecorder& Instance();

  // Virtual-time provider (registered by sim::Simulator); nullptr
  // reverts to zero stamps.
  void set_time_source(std::function<uint64_t()> now) { now_ = std::move(now); }

  // Ring size; resizing clears retained records (counters survive).
  void set_capacity(size_t n);
  size_t capacity() const { return ring_.size(); }

  // The recorder is always-on by default; benches flip this to measure
  // exactly what always-on costs.
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // O(1): overwrite the oldest slot.  Never allocates.
  void Record(FlightKind kind, std::string_view host, std::string_view detail,
              uint64_t trace_id = 0, uint64_t a = 0, uint64_t b = 0);

  // Retained records, oldest first (at most capacity(), the newest ones).
  std::vector<FlightRecord> Snapshot() const;

  size_t size() const { return count_ < ring_.size() ? count_ : ring_.size(); }
  uint64_t total_recorded() const { return count_; }
  uint64_t dump_count() const { return dumps_; }
  // The text of the most recent Dump(), retained so post-mortem tooling
  // (and CI artifact upload) can fetch it after the fact.
  const std::string& last_dump() const { return last_dump_; }

  // Formats the retained records as a readable report headed by
  // `reason`, bumps dump_count(), and retains the text as last_dump().
  std::string Dump(std::string_view reason);

  // Forgets retained records and zeroes counters (test isolation).
  void Clear();

 private:
  FlightRecorder();
  uint64_t Now() const { return now_ ? now_() : 0; }

  std::function<uint64_t()> now_;
  std::vector<FlightRecord> ring_;
  size_t head_ = 0;       // next slot to overwrite
  uint64_t count_ = 0;    // lifetime records (count_ - size() were lost)
  uint64_t dumps_ = 0;
  bool enabled_ = true;
  std::string last_dump_;
};

// One record as a single report line (shared by Dump and the trace
// interleaving in tools/trace_export).
std::string FormatFlightRecord(const FlightRecord& rec);

}  // namespace ppm::obs

// series.h — fixed-capacity time-series history over the metrics
// Registry.
//
// The paper's METRIC coupling is not one-shot: an administrator watches
// trends ("historical processing information") whose retention the user
// tunes.  A Series is that retention policy made concrete: a ring of
// (virtual-time, value) points with a fixed capacity, so memory cost is
// chosen up front and old samples age out instead of growing without
// bound (design rule 3: overhead proportional to service provided).
//
// Storage is delta-encoded: the ring holds (dt, dvalue) pairs relative
// to the previous retained point, with one absolute base for the oldest
// sample.  Samples are monotone in time and (for counters) mostly small
// positive steps, so deltas are the natural representation — and the
// encode/decode symmetry is locked by unit tests, because this same
// delta discipline is what the StatDelta wire protocol relies on.
//
// SeriesStore::SampleRegistry snapshots every instrument in the
// process-wide Registry into its series: counters and gauges by value,
// histograms as <name>.p50 / <name>.p99 via Histogram::Quantile.  The
// caller supplies the virtual timestamp — this library does not depend
// on the simulator; ppmtop and tests drive it from their own timers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ppm::obs {

class Series {
 public:
  struct Point {
    uint64_t t_us = 0;
    double value = 0;
    bool operator==(const Point&) const = default;
  };

  explicit Series(size_t capacity) : entries_(capacity ? capacity : 1) {}

  size_t capacity() const { return entries_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint64_t total_pushed() const { return total_pushed_; }

  // Appends a sample.  Timestamps must be non-decreasing (samples come
  // from one virtual clock); a regression is clamped to the previous
  // timestamp rather than corrupting the delta chain.
  void Push(uint64_t t_us, double value);

  // i = 0 is the oldest retained point.  Materialized by walking the
  // delta chain from the base — O(i), fine for capacity-bounded rings.
  Point At(size_t i) const;
  Point Front() const { return At(0); }
  Point Back() const { return At(size_ ? size_ - 1 : 0); }

  std::vector<Point> Snapshot() const;

  // Average change per second across the retained window — the rate
  // reading for cumulative counters.  Zero until two points span a
  // nonzero interval.
  double RatePerSec() const;

 private:
  struct Entry {
    uint64_t dt_us = 0;  // vs previous retained point (vs base for head)
    double dvalue = 0;
  };
  std::vector<Entry> entries_;
  size_t head_ = 0;  // index of oldest entry
  size_t size_ = 0;
  uint64_t base_t_us_ = 0;  // absolutes just before the head entry
  double base_value_ = 0;
  uint64_t last_t_us_ = 0;  // absolutes of the newest point
  double last_value_ = 0;
  uint64_t total_pushed_ = 0;
};

// Named series, created on demand, all sharing one capacity.
class SeriesStore {
 public:
  explicit SeriesStore(size_t capacity_per_series = 256)
      : capacity_(capacity_per_series) {}

  Series* Get(const std::string& name);
  const Series* Find(const std::string& name) const;
  size_t size() const { return series_.size(); }
  std::vector<std::string> Names() const;

  // One sample per Registry instrument at virtual time t_us.  Returns
  // the number of series touched.
  size_t SampleRegistry(uint64_t t_us);

 private:
  size_t capacity_;
  std::map<std::string, std::unique_ptr<Series>> series_;
};

}  // namespace ppm::obs

// health.h — health/SLO watermarks and degraded/healthy classification.
//
// The METRIC registry (obs/metrics.h) answers "how much"; this module
// answers "is that OK".  Two pieces:
//
//   * ClassifyLpm — a pure function mapping one LPM's raw counters
//     (event-log drop ratio, broadcast duplicate ratio, request timeout
//     ratio, dispatcher backlog, journal sync lag) to a healthy/degraded
//     verdict with human-readable reasons.  The LPM embeds the verdict in
//     its STAT record so ppmstat can flag sick hosts; the thresholds are
//     plain data so tests pin them exactly.
//
//   * HealthMonitor — a process singleton keeping per-component
//     high-watermarks (the worst value ever seen) and rate windows
//     (events per second over a sliding virtual-time window) for the
//     cluster-wide signals that don't belong to any single LPM: RDP
//     retransmit rate, broadcast dup-suppression rate, journal sync
//     bytes, endpoint queue depth.  Registry::DumpJson() embeds its
//     JSON fragment under "health", so every bench report and metrics
//     dump carries the SLO view for free.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace ppm::obs {

enum class HealthLevel : uint8_t { kHealthy = 0, kDegraded = 1 };

const char* ToString(HealthLevel level);

// Classification thresholds.  Defaults are deliberately forgiving: a
// healthy cluster under normal load must classify healthy everywhere,
// and only sustained pathology (event loss, a jammed dispatcher, an
// unreachable sibling set) should trip them.
struct HealthThresholds {
  double eventlog_drop_ratio = 0.01;  // dropped / recorded
  double bcast_dup_ratio = 2.0;       // duplicates per broadcast handled
  // Deadline misses count alongside explicit timeouts: the numerator is
  // request_timeouts + deadline_expired, so a manager cancelling expired
  // work out of its queue classifies degraded exactly like one timing
  // out, even though the cancellations saved the handler-pool burn.
  double timeout_ratio = 0.10;        // (timeouts + expiries) / requests
  uint64_t handler_queue_depth = 8;   // dispatcher backlog (current)
  uint64_t journal_pending = 64;      // journal frames awaiting sync
  // Sustained load shedding is degradation even when it is the correct
  // response: callers are being turned away.
  double shed_ratio = 0.25;           // requests_shed / (requests + shed)
  uint64_t breaker_open = 1;          // open circuit breakers (current)
};

// One LPM's raw health inputs, as sampled for a STAT record.
struct LpmHealthInputs {
  uint64_t eventlog_recorded = 0;
  uint64_t eventlog_dropped = 0;
  uint64_t bcasts_handled = 0;  // originated + served
  uint64_t bcast_duplicates = 0;
  uint64_t requests = 0;
  uint64_t request_timeouts = 0;
  uint64_t handler_queue_depth = 0;
  uint64_t journal_pending = 0;
  uint64_t deadline_expired = 0;
  uint64_t requests_shed = 0;
  uint64_t breaker_open = 0;
};

struct HealthReport {
  HealthLevel level = HealthLevel::kHealthy;
  std::vector<std::string> reasons;  // one per tripped threshold
};

HealthReport ClassifyLpm(const LpmHealthInputs& in,
                         const HealthThresholds& thresholds = {});

class HealthMonitor {
 public:
  static HealthMonitor& Instance();

  // Virtual-time provider (registered by sim::Simulator); the rate
  // windows are meaningless without one.
  void set_time_source(std::function<uint64_t()> now) { now_ = std::move(now); }

  // Sliding window of the rate estimators, virtual microseconds.
  void set_window_us(uint64_t us) { window_us_ = us ? us : 1; }

  // Keeps the maximum ever observed for `name`.
  void Watermark(const std::string& name, double v);
  double WatermarkOf(const std::string& name) const;

  // Counts `n` events for `name` now; RateOf is events/second over the
  // sliding window.
  void RateEvent(const std::string& name, uint64_t n = 1);
  double RateOf(const std::string& name) const;

  // Degradation threshold for a watermark or rate name; entries without
  // one are informational only.
  void set_threshold(const std::string& name, double v) { thresholds_[name] = v; }

  // True when any thresholded watermark or rate is above its threshold.
  bool degraded() const;

  // {"level":"healthy","watermarks":{name:{"hi":v,"threshold":v,
  //  "degraded":b}},"rates":{name:{"per_sec":v,...}}} — embedded by
  // Registry::DumpJson() under the "health" key.
  std::string DumpJsonFragment() const;

  // Forgets everything, thresholds included (test isolation).
  void Reset();

 private:
  HealthMonitor();
  uint64_t Now() const { return now_ ? now_() : 0; }
  void EvictOld(std::deque<std::pair<uint64_t, uint64_t>>& window) const;

  std::function<uint64_t()> now_;
  uint64_t window_us_ = 60'000'000;  // 60 virtual seconds
  std::map<std::string, double> watermarks_;
  // name -> (timestamp us, count) events inside the window.
  mutable std::map<std::string, std::deque<std::pair<uint64_t, uint64_t>>> rates_;
  std::map<std::string, double> thresholds_;
};

}  // namespace ppm::obs

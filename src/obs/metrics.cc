#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "obs/health.h"
#include "obs/json.h"

namespace ppm::obs {

namespace {

double Pow10(int e) { return std::pow(10.0, e); }

void AppendNumber(std::string& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {  // JSON has no NaN/Inf
    out += "null";
    return;
  }
  char buf[40];
  if (v == static_cast<double>(static_cast<int64_t>(v)) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

void AppendKey(std::string& out, const std::string& key) {
  out += '"';
  json::AppendEscaped(out, key);
  out += "\":";
}

}  // namespace

// --- Histogram -------------------------------------------------------

int Histogram::BucketIndex(double v) {
  if (!(v > 0)) return -1;  // zero, negative, NaN -> underflow
  int d = static_cast<int>(std::floor(std::log10(v)));
  if (d < kMinDecade) d = kMinDecade;
  if (d > kMaxDecade) d = kMaxDecade;
  int digit = static_cast<int>(v / Pow10(d));
  if (digit < 1) digit = 1;
  if (digit > 9) digit = 9;
  return (d - kMinDecade) * 9 + (digit - 1);
}

Histogram::Bucket Histogram::BucketBounds(int idx) {
  if (idx < 0 || idx >= kBucketCount) return {0, 0, 0};
  int d = kMinDecade + idx / 9;
  int digit = 1 + idx % 9;
  double scale = Pow10(d);
  return {digit * scale, (digit == 9) ? Pow10(d + 1) : (digit + 1) * scale, 0};
}

void Histogram::Observe(double v) {
  // A non-finite observation must not poison min/max/sum: one stray NaN
  // would turn every summary statistic (and the JSON dump) into nulls
  // for the rest of the run.  Count it under underflow and move on.
  if (!std::isfinite(v)) {
    ++count_;
    ++underflow_;
    return;
  }
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
  sum_ += v;
  // At or beyond the top bucket's upper edge: count as overflow rather
  // than silently clamping into the 9e12 bucket, symmetric with
  // underflow below.  BucketIndex itself keeps its clamping contract.
  if (v >= Pow10(kMaxDecade + 1)) {
    ++overflow_;
    return;
  }
  int idx = BucketIndex(v);
  if (idx < 0) {
    ++underflow_;
  } else {
    ++buckets_[static_cast<size_t>(idx)];
  }
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (!(q > 0)) q = 0;  // NaN and negatives clamp to the minimum rank
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  uint64_t seen = underflow_;
  if (rank <= seen) return 0;  // underflow bucket: best lower bound is 0
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (rank <= seen) return BucketBounds(i).lo;
  }
  return max_;
}

std::vector<Histogram::Bucket> Histogram::NonZeroBuckets() const {
  std::vector<Bucket> out;
  for (int i = 0; i < kBucketCount; ++i) {
    uint64_t n = buckets_[static_cast<size_t>(i)];
    if (n == 0) continue;
    Bucket b = BucketBounds(i);
    b.count = n;
    out.push_back(b);
  }
  return out;
}

// --- Registry --------------------------------------------------------

Registry& Registry::Instance() {
  static Registry* registry = new Registry();  // never destroyed: handles outlive exit
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

const Counter* Registry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void Registry::Reset() {
  for (auto& [name, c] : counters_) *c = Counter{};
  for (auto& [name, g] : gauges_) *g = Gauge{};
  for (auto& [name, h] : histograms_) *h = Histogram{};
}

std::string Registry::DumpJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    AppendKey(out, name);
    AppendNumber(out, static_cast<double>(c->value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    AppendKey(out, name);
    AppendNumber(out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    AppendKey(out, name);
    out += "{\"count\":";
    AppendNumber(out, static_cast<double>(h->count()));
    out += ",\"sum\":";
    AppendNumber(out, h->sum());
    out += ",\"min\":";
    AppendNumber(out, h->min());
    out += ",\"max\":";
    AppendNumber(out, h->max());
    out += ",\"mean\":";
    AppendNumber(out, h->mean());
    out += ",\"p50\":";
    AppendNumber(out, h->Quantile(0.50));
    out += ",\"p90\":";
    AppendNumber(out, h->Quantile(0.90));
    out += ",\"p99\":";
    AppendNumber(out, h->Quantile(0.99));
    out += ",\"underflow\":";
    AppendNumber(out, static_cast<double>(h->underflow()));
    out += ",\"overflow\":";
    AppendNumber(out, static_cast<double>(h->overflow()));
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (const Histogram::Bucket& b : h->NonZeroBuckets()) {
      if (!bfirst) out += ',';
      bfirst = false;
      out += "{\"lo\":";
      AppendNumber(out, b.lo);
      out += ",\"hi\":";
      AppendNumber(out, b.hi);
      out += ",\"n\":";
      AppendNumber(out, static_cast<double>(b.count));
      out += '}';
    }
    out += "]}";
  }
  out += "},\"health\":";
  out += HealthMonitor::Instance().DumpJsonFragment();
  out += "}";
  return out;
}

}  // namespace ppm::obs

// group.h — group operations state: gang memberships, barriers, envars.
//
// The paper's computations are *groups* of processes spread over the
// network; the tooling of Section 4 observes them one process at a
// time.  This subsystem gives the LPM the collective operations a
// distributed computation actually wants: gang-spawn (a named group
// created across N hosts in one client round, all-or-nothing), cluster
// barriers (decided exactly once by the CCS), replicated global
// environment variables with change watchers, and group signal/join.
//
// GroupTable is the pure state behind all of that — no wire code, no
// simulator, no network.  The LPM (core/lpm.cc) drives it from message
// handlers and journals every mutation through store/lpm_store so the
// state survives a warm restart; chaos invariants (chaos/invariants.cc)
// read it directly through Lpm::group_table().
//
// Roles, by analogy with the CCS split the paper already makes:
//   * the LPM a gang-spawn was issued to is that group's *coordinator*:
//     it owns the member list and collects exit notifications;
//   * every member's local LPM tracks pid -> {group, coordinator} so a
//     kernel exit event can be routed to the coordinator;
//   * barriers are tallied and decided by the CCS (one verdict per
//     <name, epoch>, journaled before it is announced);
//   * the envar table is fully replicated: every LPM holds a copy,
//     merged by (version, origin) so concurrent writers converge.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/types.h"

namespace ppm::group {

// One member of a coordinated group (coordinator-side record).  Exited
// members are retained with their status — GroupJoin collects them.
struct Member {
  core::GPid gpid;
  bool exited = false;
  int32_t exit_status = 0;
};

// Member-host-side record: which group a local pid belongs to and which
// host coordinates that group.
struct LocalMember {
  std::string group;
  std::string coordinator;
};

// One replicated global environment variable.  `version` is assigned at
// the writing origin (its current max + 1); the merge rule below makes
// every replica converge on the same winner without coordination.
struct Envar {
  std::string value;
  uint64_t version = 0;
  std::string origin;
};

// A change watcher: fires its trigger action on every *applied* change
// of `key` at the LPM it is installed on.  Watchers are per-LPM (they
// act locally: signal a local worker, spawn a local process).
struct Watcher {
  std::string key;
  core::TriggerSpec spec;
};

// CCS-side barrier bookkeeping for one <name, epoch>: per-host joined
// counts (cumulative per host, so a retransmitted join is idempotent)
// against the expected total.
struct BarrierTally {
  uint32_t expected = 0;
  std::map<std::string, uint32_t> counts;  // reporting host -> waiters
  uint32_t Total() const {
    uint32_t n = 0;
    for (const auto& [host, c] : counts) n += c;
    return n;
  }
};

// Outcome bits recorded wherever a barrier verdict is *applied* to
// waiters.  The chaos invariant group.no_split_release asserts that the
// union across live LPMs is never kReleased|kTimedOut for one epoch.
constexpr uint8_t kOutcomeReleased = 1;
constexpr uint8_t kOutcomeTimedOut = 2;

class GroupTable {
 public:
  // --- coordinated groups (coordinator side) ---------------------------------
  void AddMember(const std::string& group, const core::GPid& gpid);
  bool RemoveMember(const std::string& group, const core::GPid& gpid);
  // Marks the member exited; false when the member is unknown or the
  // exit was already recorded (duplicate notify).
  bool MarkExited(const std::string& group, const core::GPid& gpid,
                  int32_t exit_status);
  bool HasGroup(const std::string& group) const;
  std::vector<core::GPid> LiveMembers(const std::string& group) const;
  // True when the group exists and every member has exited.
  bool AllExited(const std::string& group) const;
  const std::map<std::string, std::vector<Member>>& groups() const {
    return groups_;
  }

  // --- local memberships (member host side) ----------------------------------
  void AddLocal(host::Pid pid, const std::string& group,
                const std::string& coordinator);
  // Removes and returns the local membership (exit / undo path).
  std::optional<LocalMember> TakeLocal(host::Pid pid);
  const std::map<host::Pid, LocalMember>& locals() const { return locals_; }
  // Last coordinator seen for `group` on this host — what a trigger-
  // spawned replacement enrolls with after the original member is gone.
  const std::string* KnownCoordinator(const std::string& group) const;

  // --- global envars ---------------------------------------------------------
  // Merge rule: higher version wins; equal versions break the tie toward
  // the lexicographically larger origin.  Returns true when the entry
  // was applied (i.e. the table changed and watchers should fire).
  bool MergeEnvar(const std::string& key, const std::string& value,
                  uint64_t version, const std::string& origin);
  // Version a local write of `key` should claim: current version + 1.
  uint64_t NextVersion(const std::string& key) const;
  const Envar* FindEnvar(const std::string& key) const;
  const std::map<std::string, Envar>& envars() const { return envars_; }

  // --- watchers --------------------------------------------------------------
  uint64_t AddWatcher(const std::string& key, const core::TriggerSpec& spec);
  bool RemoveWatcher(uint64_t id);
  std::vector<std::pair<uint64_t, const Watcher*>> WatchersFor(
      const std::string& key) const;
  size_t watcher_count() const { return watchers_.size(); }

  // --- barriers --------------------------------------------------------------
  using BarrierKey = std::pair<std::string, uint64_t>;  // <name, epoch>

  // CCS side: the running tally for an undecided epoch (created on
  // first access) and whether one already exists.
  BarrierTally& Tally(const std::string& name, uint64_t epoch);
  bool HasTally(const std::string& name, uint64_t epoch) const;
  void EraseTally(const std::string& name, uint64_t epoch);
  const std::map<BarrierKey, BarrierTally>& tallies() const { return tallies_; }

  // Highest epoch ever decided for `name` (0 = none).  Journaled by the
  // CCS before the verdict is announced, so an epoch can never be
  // decided twice across a warm restart.
  uint64_t DecidedEpoch(const std::string& name) const;
  void NoteDecided(const std::string& name, uint64_t epoch);

  // Verdict as applied to local waiters, kept for the chaos invariant.
  void NoteOutcome(const std::string& name, uint64_t epoch, bool released);
  const std::map<BarrierKey, uint8_t>& outcomes() const { return outcomes_; }

 private:
  std::map<std::string, std::vector<Member>> groups_;
  std::map<host::Pid, LocalMember> locals_;
  std::map<std::string, std::string> known_coordinators_;
  std::map<std::string, Envar> envars_;
  std::map<uint64_t, Watcher> watchers_;
  uint64_t next_watch_id_ = 1;
  std::map<BarrierKey, BarrierTally> tallies_;
  std::map<std::string, uint64_t> decided_epochs_;
  std::map<BarrierKey, uint8_t> outcomes_;
};

}  // namespace ppm::group

#include "group/group.h"

#include <algorithm>

namespace ppm::group {

// --- coordinated groups -------------------------------------------------------

void GroupTable::AddMember(const std::string& group, const core::GPid& gpid) {
  auto& members = groups_[group];
  for (const Member& m : members) {
    if (m.gpid == gpid) return;  // duplicate add (retried notify)
  }
  members.push_back(Member{gpid, false, 0});
}

bool GroupTable::RemoveMember(const std::string& group, const core::GPid& gpid) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  auto& members = it->second;
  auto mit = std::find_if(members.begin(), members.end(),
                          [&](const Member& m) { return m.gpid == gpid; });
  if (mit == members.end()) return false;
  members.erase(mit);
  if (members.empty()) groups_.erase(it);
  return true;
}

bool GroupTable::MarkExited(const std::string& group, const core::GPid& gpid,
                            int32_t exit_status) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  for (Member& m : it->second) {
    if (m.gpid != gpid) continue;
    if (m.exited) return false;
    m.exited = true;
    m.exit_status = exit_status;
    return true;
  }
  return false;
}

bool GroupTable::HasGroup(const std::string& group) const {
  return groups_.count(group) > 0;
}

std::vector<core::GPid> GroupTable::LiveMembers(const std::string& group) const {
  std::vector<core::GPid> out;
  auto it = groups_.find(group);
  if (it == groups_.end()) return out;
  for (const Member& m : it->second) {
    if (!m.exited) out.push_back(m.gpid);
  }
  return out;
}

bool GroupTable::AllExited(const std::string& group) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  for (const Member& m : it->second) {
    if (!m.exited) return false;
  }
  return true;
}

// --- local memberships --------------------------------------------------------

void GroupTable::AddLocal(host::Pid pid, const std::string& group,
                          const std::string& coordinator) {
  locals_[pid] = LocalMember{group, coordinator};
  known_coordinators_[group] = coordinator;
}

std::optional<LocalMember> GroupTable::TakeLocal(host::Pid pid) {
  auto it = locals_.find(pid);
  if (it == locals_.end()) return std::nullopt;
  LocalMember out = std::move(it->second);
  locals_.erase(it);
  return out;
}

const std::string* GroupTable::KnownCoordinator(const std::string& group) const {
  auto it = known_coordinators_.find(group);
  return it == known_coordinators_.end() ? nullptr : &it->second;
}

// --- global envars ------------------------------------------------------------

bool GroupTable::MergeEnvar(const std::string& key, const std::string& value,
                            uint64_t version, const std::string& origin) {
  auto it = envars_.find(key);
  if (it != envars_.end()) {
    const Envar& cur = it->second;
    if (version < cur.version) return false;
    if (version == cur.version &&
        (origin < cur.origin ||
         (origin == cur.origin && value == cur.value))) {
      return false;
    }
  }
  envars_[key] = Envar{value, version, origin};
  return true;
}

uint64_t GroupTable::NextVersion(const std::string& key) const {
  auto it = envars_.find(key);
  return (it == envars_.end() ? 0 : it->second.version) + 1;
}

const Envar* GroupTable::FindEnvar(const std::string& key) const {
  auto it = envars_.find(key);
  return it == envars_.end() ? nullptr : &it->second;
}

// --- watchers -----------------------------------------------------------------

uint64_t GroupTable::AddWatcher(const std::string& key,
                                const core::TriggerSpec& spec) {
  uint64_t id = next_watch_id_++;
  watchers_[id] = Watcher{key, spec};
  return id;
}

bool GroupTable::RemoveWatcher(uint64_t id) { return watchers_.erase(id) > 0; }

std::vector<std::pair<uint64_t, const Watcher*>> GroupTable::WatchersFor(
    const std::string& key) const {
  std::vector<std::pair<uint64_t, const Watcher*>> out;
  for (const auto& [id, w] : watchers_) {
    if (w.key == key) out.emplace_back(id, &w);
  }
  return out;
}

// --- barriers -----------------------------------------------------------------

BarrierTally& GroupTable::Tally(const std::string& name, uint64_t epoch) {
  return tallies_[BarrierKey{name, epoch}];
}

bool GroupTable::HasTally(const std::string& name, uint64_t epoch) const {
  return tallies_.count(BarrierKey{name, epoch}) > 0;
}

void GroupTable::EraseTally(const std::string& name, uint64_t epoch) {
  tallies_.erase(BarrierKey{name, epoch});
}

uint64_t GroupTable::DecidedEpoch(const std::string& name) const {
  auto it = decided_epochs_.find(name);
  return it == decided_epochs_.end() ? 0 : it->second;
}

void GroupTable::NoteDecided(const std::string& name, uint64_t epoch) {
  uint64_t& e = decided_epochs_[name];
  if (epoch > e) e = epoch;
}

void GroupTable::NoteOutcome(const std::string& name, uint64_t epoch,
                             bool released) {
  outcomes_[BarrierKey{name, epoch}] |=
      released ? kOutcomeReleased : kOutcomeTimedOut;
}

}  // namespace ppm::group

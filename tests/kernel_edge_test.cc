// kernel_edge_test.cc — corner cases of the simulated UNIX kernel.
#include <gtest/gtest.h>

#include "host/host.h"
#include "host/kernel.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ppm::host {
namespace {

class KernelEdgeTest : public ::testing::Test {
 protected:
  KernelEdgeTest() : sim_(3), kernel_(sim_, HostType::kVax780, "edge") {}
  sim::Simulator sim_;
  Kernel kernel_;
};

TEST_F(KernelEdgeTest, DeepReparentingChain) {
  // a -> b -> c -> d; killing interior nodes walks everyone to init.
  Pid a = kernel_.Spawn(kNoPid, 100, "a");
  Pid b = kernel_.Spawn(a, 100, "b");
  Pid c = kernel_.Spawn(b, 100, "c");
  Pid d = kernel_.Spawn(c, 100, "d");
  kernel_.Exit(b, 0);
  EXPECT_EQ(kernel_.Find(c)->ppid, Kernel::kInitPid);
  kernel_.Exit(c, 0);
  EXPECT_EQ(kernel_.Find(d)->ppid, Kernel::kInitPid);
  // a's zombie child b was reaped by... b exited while a alive: zombie
  // until a reaps.
  EXPECT_EQ(kernel_.Find(b)->state, ProcState::kZombie);
  auto reaped = kernel_.Reap(a);
  EXPECT_EQ(reaped, std::vector<Pid>{b});
}

TEST_F(KernelEdgeTest, ReapOnlyCollectsOwnZombies) {
  Pid p1 = kernel_.Spawn(kNoPid, 100, "p1");
  Pid p2 = kernel_.Spawn(kNoPid, 100, "p2");
  Pid c1 = kernel_.Spawn(p1, 100, "c1");
  Pid c2 = kernel_.Spawn(p2, 100, "c2");
  kernel_.Exit(c1, 0);
  kernel_.Exit(c2, 0);
  auto reaped = kernel_.Reap(p1);
  EXPECT_EQ(reaped, std::vector<Pid>{c1});
  EXPECT_EQ(kernel_.Find(c2)->state, ProcState::kZombie);
}

TEST_F(KernelEdgeTest, ContOnRunningProcessIsNoop) {
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  EXPECT_TRUE(kernel_.PostSignal(p, Signal::kSigCont, 100));
  EXPECT_EQ(kernel_.Find(p)->state, ProcState::kRunning);
  double la_before = kernel_.LoadAverage();
  // Repeated CONT must not inflate the run queue.
  for (int i = 0; i < 5; ++i) kernel_.PostSignal(p, Signal::kSigCont, 100);
  sim_.RunUntil(sim_.Now() + sim::Seconds(30));
  EXPECT_NEAR(kernel_.LoadAverage(), 1.0, 0.1);
  (void)la_before;
}

TEST_F(KernelEdgeTest, KillStoppedProcessWorks) {
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  kernel_.PostSignal(p, Signal::kSigStop, 100);
  EXPECT_TRUE(kernel_.PostSignal(p, Signal::kSigKill, 100));
  EXPECT_FALSE(kernel_.Find(p)->alive());
  // It left the run queue exactly once (stop), not twice.
  sim_.RunUntil(sim_.Now() + sim::Seconds(30));
  EXPECT_NEAR(kernel_.LoadAverage(), 0.0, 0.05);
}

TEST_F(KernelEdgeTest, CatchableSignalToStoppedProcessStillDelivered) {
  struct Catcher : ProcessBody {
    int caught = 0;
    bool OnSignal(Signal) override {
      ++caught;
      return true;
    }
  };
  auto body = std::make_unique<Catcher>();
  Catcher* raw = body.get();
  Pid p = kernel_.Spawn(kNoPid, 100, "p", std::move(body));
  kernel_.PostSignal(p, Signal::kSigStop, 100);
  kernel_.PostSignal(p, Signal::kSigUsr1, 100);
  EXPECT_EQ(raw->caught, 1);
  EXPECT_EQ(kernel_.Find(p)->state, ProcState::kStopped);
}

TEST_F(KernelEdgeTest, AdoptDeadTargetFails) {
  Pid lpm = kernel_.Spawn(kNoPid, 100, "lpm");
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  kernel_.Exit(p, 0);
  std::vector<Pid> adopted;
  std::string err;
  EXPECT_FALSE(kernel_.Adopt(lpm, p, kTraceAll, 100, &adopted, &err));
  EXPECT_TRUE(adopted.empty());
}

TEST_F(KernelEdgeTest, AdoptSkipsDeadDescendants) {
  Pid lpm = kernel_.Spawn(kNoPid, 100, "lpm");
  Pid root = kernel_.Spawn(kNoPid, 100, "root");
  Pid live = kernel_.Spawn(root, 100, "live");
  Pid dead = kernel_.Spawn(root, 100, "dead");
  kernel_.Exit(dead, 0);
  std::vector<Pid> adopted;
  ASSERT_TRUE(kernel_.Adopt(lpm, root, kTraceAll, 100, &adopted));
  EXPECT_EQ(adopted, (std::vector<Pid>{root, live}));
}

TEST_F(KernelEdgeTest, ReAdoptionByNewManagerOverridesOld) {
  Pid lpm1 = kernel_.Spawn(kNoPid, 100, "lpm1");
  Pid lpm2 = kernel_.Spawn(kNoPid, 100, "lpm2");
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  std::vector<Pid> adopted;
  ASSERT_TRUE(kernel_.Adopt(lpm1, p, kTraceExit, 100, &adopted));
  adopted.clear();
  ASSERT_TRUE(kernel_.Adopt(lpm2, p, kTraceAll, 100, &adopted));
  EXPECT_EQ(kernel_.Find(p)->adopter, lpm2);
  EXPECT_EQ(kernel_.Find(p)->trace_mask, kTraceAll);
}

TEST_F(KernelEdgeTest, FileOpsOnDeadProcessRejected) {
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  int fd = kernel_.OpenFileFor(p, "/tmp/x", "r");
  EXPECT_GE(fd, 0);
  kernel_.PostSignal(p, Signal::kSigKill, 100);
  EXPECT_EQ(kernel_.OpenFileFor(p, "/tmp/y", "r"), -1);
}

TEST_F(KernelEdgeTest, ChargeAccumulatesRusage) {
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  sim::SimDuration c1 = kernel_.Charge(p, sim::Millis(10));
  sim::SimDuration c2 = kernel_.Charge(p, sim::Millis(5));
  EXPECT_EQ(kernel_.Find(p)->rusage.cpu_time, c1 + c2);
}

TEST_F(KernelEdgeTest, SpeedFactorScalesCosts) {
  sim::Simulator sim2(3);
  Kernel sun(sim2, HostType::kSun2, "sun");
  Pid p_vax = kernel_.Spawn(kNoPid, 100, "p");
  Pid p_sun = sun.Spawn(kNoPid, 100, "p");
  EXPECT_GT(sun.Charge(p_sun, sim::Millis(10)), kernel_.Charge(p_vax, sim::Millis(10)));
}

TEST_F(KernelEdgeTest, ProcessesOfExcludesZombiesAndOthers) {
  Pid mine = kernel_.Spawn(kNoPid, 100, "mine");
  Pid other = kernel_.Spawn(kNoPid, 200, "other");
  Pid gone = kernel_.Spawn(kNoPid, 100, "gone");
  kernel_.Exit(gone, 0);
  auto procs = kernel_.ProcessesOf(100);
  EXPECT_EQ(procs, std::vector<Pid>{mine});
  (void)other;
}

TEST_F(KernelEdgeTest, LoadTauGovernsConvergenceSpeed) {
  sim::Simulator fast_sim(3), slow_sim(3);
  Kernel fast(fast_sim, HostType::kVax780, "fast", sim::Seconds(1));
  Kernel slow(slow_sim, HostType::kVax780, "slow", sim::Seconds(60));
  fast.Spawn(kNoPid, 100, "spin");
  slow.Spawn(kNoPid, 100, "spin");
  fast_sim.RunUntil(sim::Seconds(5));
  slow_sim.RunUntil(sim::Seconds(5));
  EXPECT_GT(fast.LoadAverage(), 0.95);
  EXPECT_LT(slow.LoadAverage(), 0.35);
}

// Property: the kernel's fork bookkeeping stays consistent under random
// spawn/kill/reap churn.
class KernelChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelChurnTest, GenealogyInvariantsHoldUnderChurn) {
  sim::Simulator sim(GetParam());
  Kernel kernel(sim, HostType::kVax780, "churn");
  std::vector<Pid> live;
  for (int step = 0; step < 500; ++step) {
    uint64_t roll = sim.rng().Below(100);
    if (roll < 50 || live.empty()) {
      Pid parent = live.empty() ? kNoPid
                                : live[sim.rng().Below(live.size())];
      live.push_back(kernel.Spawn(parent, 100, "churn"));
    } else if (roll < 80) {
      size_t idx = sim.rng().Below(live.size());
      kernel.PostSignal(live[idx], Signal::kSigKill, 100);
      live.erase(live.begin() + static_cast<long>(idx));
    } else {
      size_t idx = sim.rng().Below(live.size());
      kernel.Reap(live[idx]);
    }
    sim.RunUntil(sim.Now() + sim::Millis(10));
  }
  // Invariants: every live process has a live-or-init parent pointer
  // that knows it as a child; live_count matches.
  size_t counted = 0;
  for (Pid pid : kernel.AllPids()) {
    const Process* proc = kernel.Find(pid);
    if (!proc->alive()) continue;
    ++counted;
    if (pid == Kernel::kInitPid) continue;
    const Process* parent = kernel.Find(proc->ppid);
    ASSERT_NE(parent, nullptr) << "dangling ppid";
    EXPECT_TRUE(parent->alive()) << "parent neither live nor reparented";
    bool listed = false;
    for (Pid child : parent->children) {
      if (child == pid) listed = true;
    }
    EXPECT_TRUE(listed) << "parent does not list child";
  }
  EXPECT_EQ(counted, kernel.live_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelChurnTest, ::testing::Values(1, 7, 42, 1986, 31337));

}  // namespace
}  // namespace ppm::host

// series_test.cc — the time-series history store (delta-encoded ring)
// and the histogram quantile estimator the STAT stream reports through.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/metrics.h"
#include "obs/series.h"

namespace ppm::obs {
namespace {

// --- Histogram::Quantile: exact bucket-boundary semantics ---------------------

// The estimator is a lower bound: it reports the lower edge of the
// bucket holding the rank-q observation, never a value between bucket
// boundaries.  Observations placed exactly ON lower edges must come
// back exactly.
TEST(HistogramQuantile, ExactBucketBoundaries) {
  Histogram h;
  // 1..10 are all bucket lower edges (1..9 in the 10^0 decade, 10 in
  // the 10^1 decade), one observation each.
  for (int v = 1; v <= 10; ++v) h.Observe(v);
  ASSERT_EQ(h.count(), 10u);
  // rank = ceil(q * 10): q=0.5 -> rank 5 -> the observation "5".
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.1), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.9), 9.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);
  // q=0 clamps to the minimum rank (the first observation).
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  // Percentile is sugar over Quantile.
  EXPECT_DOUBLE_EQ(h.Percentile(50), h.Quantile(0.5));
  EXPECT_DOUBLE_EQ(h.Percentile(99), h.Quantile(0.99));
}

TEST(HistogramQuantile, InteriorValuesReportBucketLowerEdge) {
  Histogram h;
  // 250 lands in the [200, 300) bucket: the estimate is the bucket's
  // lower edge, not an interpolation.
  for (int i = 0; i < 100; ++i) h.Observe(250);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 200.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 200.0);
}

TEST(HistogramQuantile, P99PicksTheTailBucket) {
  Histogram h;
  // 99 observations at 1ms, one at 1s (both exact lower edges).
  for (int i = 0; i < 99; ++i) h.Observe(1'000);
  h.Observe(1'000'000);
  EXPECT_DOUBLE_EQ(h.Quantile(0.50), 1'000.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 1'000.0);   // rank 99 is still the bulk
  EXPECT_DOUBLE_EQ(h.Quantile(0.995), 1'000'000.0);  // rank 100 is the tail
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1'000'000.0);
}

TEST(HistogramQuantile, EmptyUnderflowAndOverflow) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty histogram
  h.Observe(0.0);                           // zero cannot be bucketed
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // best lower bound for underflow
  Histogram tiny;
  tiny.Observe(1e-6);  // positive but below the bottom decade: clamps in
  EXPECT_EQ(tiny.underflow(), 0u);
  EXPECT_DOUBLE_EQ(tiny.Quantile(0.5), 1e-3);  // bottom bucket's lower edge
  Histogram big;
  big.Observe(1e15);  // above the largest bucket
  EXPECT_EQ(big.overflow(), 1u);
  EXPECT_DOUBLE_EQ(big.Quantile(0.5), 1e15);  // falls back to the max
}

TEST(HistogramQuantile, OutOfRangeArgumentsClamp) {
  Histogram h;
  h.Observe(5);
  h.Observe(7);
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), 7.0);
  EXPECT_DOUBLE_EQ(h.Quantile(std::nan("")), 5.0);
}

// --- Series: delta-encoded ring ----------------------------------------------

TEST(Series, PushAndReadBack) {
  Series s(8);
  s.Push(100, 1.0);
  s.Push(200, 3.0);
  s.Push(350, 2.5);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.Front(), (Series::Point{100, 1.0}));
  EXPECT_EQ(s.At(1), (Series::Point{200, 3.0}));
  EXPECT_EQ(s.Back(), (Series::Point{350, 2.5}));
  EXPECT_EQ(s.total_pushed(), 3u);
}

// Eviction folds the evicted delta into the base: the oldest retained
// point must stay exact after arbitrary wrap-around.
TEST(Series, RingEvictionFoldsIntoBase) {
  Series s(4);
  for (uint64_t i = 0; i < 10; ++i) {
    s.Push(i * 1000, static_cast<double>(i * i));
  }
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.total_pushed(), 10u);
  // Retained window is i = 6..9.
  for (size_t k = 0; k < 4; ++k) {
    const uint64_t i = 6 + k;
    EXPECT_EQ(s.At(k).t_us, i * 1000) << k;
    EXPECT_DOUBLE_EQ(s.At(k).value, static_cast<double>(i * i)) << k;
  }
}

TEST(Series, SnapshotMatchesAt) {
  Series s(3);
  for (uint64_t i = 0; i < 7; ++i) s.Push(i * 10, static_cast<double>(i) * 0.5);
  auto snap = s.Snapshot();
  ASSERT_EQ(snap.size(), s.size());
  for (size_t i = 0; i < snap.size(); ++i) EXPECT_EQ(snap[i], s.At(i)) << i;
}

TEST(Series, TimestampRegressionClampsInsteadOfCorrupting) {
  Series s(4);
  s.Push(1000, 1.0);
  s.Push(500, 2.0);  // clock cannot run backwards; clamp to 1000
  EXPECT_EQ(s.Back().t_us, 1000u);
  EXPECT_DOUBLE_EQ(s.Back().value, 2.0);
}

TEST(Series, RatePerSec) {
  Series s(8);
  EXPECT_DOUBLE_EQ(s.RatePerSec(), 0.0);  // empty
  s.Push(0, 10.0);
  EXPECT_DOUBLE_EQ(s.RatePerSec(), 0.0);  // one point spans no interval
  s.Push(2'000'000, 30.0);                // +20 over 2 virtual seconds
  EXPECT_DOUBLE_EQ(s.RatePerSec(), 10.0);
}

TEST(Series, ZeroCapacityIsClampedToOne) {
  Series s(0);
  EXPECT_EQ(s.capacity(), 1u);
  s.Push(1, 1.0);
  s.Push(2, 2.0);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.Back(), (Series::Point{2, 2.0}));
}

// --- SeriesStore: sampling the process-wide Registry --------------------------

TEST(SeriesStore, SampleRegistryCoversCountersGaugesAndQuantiles) {
  auto& reg = Registry::Instance();
  auto* c = reg.GetCounter("series_test.counter");
  auto* g = reg.GetGauge("series_test.gauge");
  auto* h = reg.GetHistogram("series_test.hist");
  c->Inc(41);
  g->Set(2.5);
  for (int v = 1; v <= 10; ++v) h->Observe(v);

  SeriesStore store(16);
  size_t touched = store.SampleRegistry(1'000);
  EXPECT_GT(touched, 0u);

  const Series* sc = store.Find("series_test.counter");
  ASSERT_NE(sc, nullptr);
  EXPECT_DOUBLE_EQ(sc->Back().value, static_cast<double>(c->value()));
  EXPECT_EQ(sc->Back().t_us, 1'000u);

  const Series* sg = store.Find("series_test.gauge");
  ASSERT_NE(sg, nullptr);
  EXPECT_DOUBLE_EQ(sg->Back().value, 2.5);

  // Histograms sample as p50/p99 via Quantile.
  const Series* p50 = store.Find("series_test.hist.p50");
  const Series* p99 = store.Find("series_test.hist.p99");
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p99, nullptr);
  EXPECT_DOUBLE_EQ(p50->Back().value, h->Quantile(0.50));
  EXPECT_DOUBLE_EQ(p99->Back().value, h->Quantile(0.99));

  // A second sample extends every series by one point.
  c->Inc();
  store.SampleRegistry(2'000);
  EXPECT_EQ(sc->size(), 2u);
  EXPECT_DOUBLE_EQ(sc->Back().value, static_cast<double>(c->value()));
}

TEST(SeriesStore, GetIsStableAndFindMissesAreNull) {
  SeriesStore store(4);
  Series* a = store.Get("x");
  EXPECT_EQ(store.Get("x"), a);
  EXPECT_EQ(store.Find("x"), a);
  EXPECT_EQ(store.Find("no-such-series"), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace ppm::obs

// net_test.cc — the simulated internetwork: routing, circuits, faults.
#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"

namespace ppm::net {
namespace {

class NetTest : public ::testing::Test {
 protected:
  NetTest() : sim_(1), net_(sim_) {}

  // Chain a—b—c—d.
  void BuildChain() {
    a_ = net_.AddHost("a");
    b_ = net_.AddHost("b");
    c_ = net_.AddHost("c");
    d_ = net_.AddHost("d");
    net_.AddLink(a_, b_);
    net_.AddLink(b_, c_);
    net_.AddLink(c_, d_);
  }

  sim::Simulator sim_;
  Network net_;
  HostId a_ = 0, b_ = 0, c_ = 0, d_ = 0;
};

TEST_F(NetTest, HopDistances) {
  BuildChain();
  EXPECT_EQ(net_.HopDistance(a_, a_), 0u);
  EXPECT_EQ(net_.HopDistance(a_, b_), 1u);
  EXPECT_EQ(net_.HopDistance(a_, c_), 2u);
  EXPECT_EQ(net_.HopDistance(a_, d_), 3u);
}

TEST_F(NetTest, UnreachableAfterLinkDown) {
  BuildChain();
  net_.SetLinkUp(b_, c_, false);
  EXPECT_FALSE(net_.HopDistance(a_, c_).has_value());
  EXPECT_EQ(net_.HopDistance(a_, b_), 1u);
  net_.SetLinkUp(b_, c_, true);
  EXPECT_EQ(net_.HopDistance(a_, c_), 2u);
}

TEST_F(NetTest, CrashedIntermediateBlocksRoute) {
  BuildChain();
  net_.SetHostUp(b_, false);
  EXPECT_FALSE(net_.HopDistance(a_, c_).has_value());
}

TEST_F(NetTest, FindHostByName) {
  BuildChain();
  EXPECT_EQ(net_.FindHost("c"), c_);
  EXPECT_FALSE(net_.FindHost("zebra").has_value());
}

TEST_F(NetTest, ConnectAcceptAndData) {
  BuildChain();
  std::vector<std::string> received;
  net_.Listen(b_, 99, [&](ConnId, SocketAddr) {
    ConnCallbacks cb;
    cb.on_data = [&received](ConnId, const std::vector<uint8_t>& d) {
      received.emplace_back(d.begin(), d.end());
    };
    return cb;
  });
  std::optional<ConnId> client;
  net_.Connect(a_, SocketAddr{b_, 99}, ConnCallbacks{},
               [&](std::optional<ConnId> c) { client = c; });
  sim_.Run();
  ASSERT_TRUE(client.has_value());
  EXPECT_TRUE(net_.ConnAlive(*client));
  net_.Send(*client, {'h', 'i'});
  net_.Send(*client, {'y', 'o'});
  sim_.Run();
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], "hi");
  EXPECT_EQ(received[1], "yo");  // FIFO preserved
}

TEST_F(NetTest, BidirectionalData) {
  BuildChain();
  std::string client_got, server_got;
  net_.Listen(b_, 99, [&](ConnId server_conn, SocketAddr) {
    ConnCallbacks cb;
    cb.on_data = [&, server_conn](ConnId, const std::vector<uint8_t>& d) {
      server_got.assign(d.begin(), d.end());
      net_.Send(server_conn, {'a', 'c', 'k'});
    };
    return cb;
  });
  ConnCallbacks ccb;
  ccb.on_data = [&](ConnId, const std::vector<uint8_t>& d) {
    client_got.assign(d.begin(), d.end());
  };
  net_.Connect(a_, SocketAddr{b_, 99}, ccb, [&](std::optional<ConnId> c) {
    ASSERT_TRUE(c.has_value());
    net_.Send(*c, {'p', 'i', 'n', 'g'});
  });
  sim_.Run();
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "ack");
}

TEST_F(NetTest, ConnectRefusedWithoutListener) {
  BuildChain();
  bool called = false;
  std::optional<ConnId> result = ConnId{1234};
  net_.Connect(a_, SocketAddr{b_, 7}, ConnCallbacks{}, [&](std::optional<ConnId> c) {
    called = true;
    result = c;
  });
  sim_.Run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(result.has_value());
}

TEST_F(NetTest, AcceptFnCanRefuse) {
  BuildChain();
  net_.Listen(b_, 99, [](ConnId, SocketAddr) { return std::optional<ConnCallbacks>(); });
  bool refused = false;
  net_.Connect(a_, SocketAddr{b_, 99}, ConnCallbacks{},
               [&](std::optional<ConnId> c) { refused = !c.has_value(); });
  sim_.Run();
  EXPECT_TRUE(refused);
}

TEST_F(NetTest, ConnectTimesOutToUnreachableHost) {
  BuildChain();
  net_.SetLinkUp(a_, b_, false);
  bool failed = false;
  sim::SimTime start = sim_.Now();
  net_.Connect(a_, SocketAddr{b_, 99}, ConnCallbacks{},
               [&](std::optional<ConnId> c) { failed = !c.has_value(); });
  sim_.Run();
  EXPECT_TRUE(failed);
  // The failure took the configured timeout, not forever and not zero.
  EXPECT_GE(sim_.Now() - start, static_cast<sim::SimTime>(net_.params().connect_timeout));
}

TEST_F(NetTest, PartitionBreaksCircuitsAfterDetectionDelay) {
  BuildChain();
  std::optional<CloseReason> client_reason, server_reason;
  net_.Listen(c_, 99, [&](ConnId, SocketAddr) {
    ConnCallbacks cb;
    cb.on_close = [&](ConnId, CloseReason r) { server_reason = r; };
    return cb;
  });
  std::optional<ConnId> client;
  ConnCallbacks ccb;
  ccb.on_close = [&](ConnId, CloseReason r) { client_reason = r; };
  net_.Connect(a_, SocketAddr{c_, 99}, ccb, [&](std::optional<ConnId> c) { client = c; });
  sim_.Run();
  ASSERT_TRUE(client.has_value());

  net_.Partition({{a_, b_}, {c_, d_}});
  sim_.Run();
  ASSERT_TRUE(client_reason.has_value());
  ASSERT_TRUE(server_reason.has_value());
  EXPECT_EQ(*client_reason, CloseReason::kNetBroken);
  EXPECT_EQ(*server_reason, CloseReason::kNetBroken);
}

TEST_F(NetTest, HostCrashBreaksCircuits) {
  BuildChain();
  std::optional<CloseReason> client_reason;
  net_.Listen(b_, 99, [&](ConnId, SocketAddr) { return ConnCallbacks{}; });
  std::optional<ConnId> client;
  ConnCallbacks ccb;
  ccb.on_close = [&](ConnId, CloseReason r) { client_reason = r; };
  net_.Connect(a_, SocketAddr{b_, 99}, ccb, [&](std::optional<ConnId> c) { client = c; });
  sim_.Run();
  ASSERT_TRUE(client.has_value());

  net_.SetHostUp(b_, false);
  sim_.Run();
  ASSERT_TRUE(client_reason.has_value());
  EXPECT_EQ(*client_reason, CloseReason::kPeerCrash);
  EXPECT_FALSE(net_.ConnAlive(*client));
}

TEST_F(NetTest, GracefulCloseNotifiesPeerAsPeerClose) {
  BuildChain();
  std::optional<CloseReason> server_reason;
  net_.Listen(b_, 99, [&](ConnId, SocketAddr) {
    ConnCallbacks cb;
    cb.on_close = [&](ConnId, CloseReason r) { server_reason = r; };
    return cb;
  });
  std::optional<ConnId> client;
  net_.Connect(a_, SocketAddr{b_, 99}, ConnCallbacks{},
               [&](std::optional<ConnId> c) { client = c; });
  sim_.Run();
  net_.Close(*client);
  sim_.Run();
  ASSERT_TRUE(server_reason.has_value());
  EXPECT_EQ(*server_reason, CloseReason::kPeerClose);
}

TEST_F(NetTest, AbortNotifiesPeerAsCrashAfterDelay) {
  BuildChain();
  std::optional<CloseReason> server_reason;
  net_.Listen(b_, 99, [&](ConnId, SocketAddr) {
    ConnCallbacks cb;
    cb.on_close = [&](ConnId, CloseReason r) { server_reason = r; };
    return cb;
  });
  std::optional<ConnId> client;
  net_.Connect(a_, SocketAddr{b_, 99}, ConnCallbacks{},
               [&](std::optional<ConnId> c) { client = c; });
  sim_.Run();
  sim::SimTime before = sim_.Now();
  net_.Abort(*client);
  sim_.Run();
  ASSERT_TRUE(server_reason.has_value());
  EXPECT_EQ(*server_reason, CloseReason::kPeerCrash);
  EXPECT_GE(sim_.Now() - before,
            static_cast<sim::SimTime>(net_.params().break_detection_delay));
}

TEST_F(NetTest, SendOnBrokenCircuitVanishesSilently) {
  BuildChain();
  int server_got = 0;
  net_.Listen(c_, 99, [&](ConnId, SocketAddr) {
    ConnCallbacks cb;
    cb.on_data = [&](ConnId, const std::vector<uint8_t>&) { ++server_got; };
    return cb;
  });
  std::optional<ConnId> client;
  net_.Connect(a_, SocketAddr{c_, 99}, ConnCallbacks{},
               [&](std::optional<ConnId> c) { client = c; });
  sim_.Run();
  net_.SetLinkUp(b_, c_, false);
  // Send before the break notice has been delivered: accepted, dropped.
  EXPECT_TRUE(net_.Send(*client, {'x'}));
  sim_.Run();
  EXPECT_EQ(server_got, 0);
}

TEST_F(NetTest, DatagramDelivery) {
  BuildChain();
  std::vector<HostId> route;
  std::string payload;
  net_.BindDgram(d_, 53, [&](SocketAddr, const std::vector<uint8_t>& data,
                             const std::vector<HostId>& r) {
    payload.assign(data.begin(), data.end());
    route = r;
  });
  net_.SendDgram(a_, 1000, SocketAddr{d_, 53}, {'q'});
  sim_.Run();
  EXPECT_EQ(payload, "q");
  // Route is recorded hop by hop: a, b, c, d.
  EXPECT_EQ(route, (std::vector<HostId>{a_, b_, c_, d_}));
}

TEST_F(NetTest, DatagramToUnboundPortDropped) {
  BuildChain();
  net_.SendDgram(a_, 1000, SocketAddr{b_, 53}, {'q'});
  uint64_t dropped_before = net_.stats().frames_dropped;
  sim_.Run();
  EXPECT_GT(net_.stats().frames_dropped, dropped_before);
}

TEST_F(NetTest, LatencyScalesWithHops) {
  BuildChain();
  net_.BindDgram(b_, 53, [](SocketAddr, const std::vector<uint8_t>&,
                            const std::vector<HostId>&) {});
  sim::SimTime t1, t3;
  {
    net_.SendDgram(a_, 1000, SocketAddr{b_, 53}, {'x'});
    sim_.Run();
    t1 = sim_.Now();
  }
  net_.BindDgram(d_, 53, [](SocketAddr, const std::vector<uint8_t>&,
                            const std::vector<HostId>&) {});
  {
    net_.SendDgram(a_, 1000, SocketAddr{d_, 53}, {'x'});
    sim::SimTime start = sim_.Now();
    sim_.Run();
    t3 = sim_.Now() - start;
  }
  // Three hops take roughly 3x one hop.
  EXPECT_GT(t3, 2 * t1);
}

TEST_F(NetTest, LinkSerializesBackToBackFrames) {
  // Two large frames sent at the same instant must not arrive at the
  // same instant: the wire serializes them.
  BuildChain();
  std::vector<sim::SimTime> arrivals;
  net_.BindDgram(b_, 53, [&](SocketAddr, const std::vector<uint8_t>&,
                             const std::vector<HostId>&) {
    arrivals.push_back(sim_.Now());
  });
  std::vector<uint8_t> big(10000, 0xab);
  net_.SendDgram(a_, 1000, SocketAddr{b_, 53}, big);
  net_.SendDgram(a_, 1000, SocketAddr{b_, 53}, big);
  sim_.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GT(arrivals[1], arrivals[0]);
}

TEST_F(NetTest, ConnsTouchingAndEndpoints) {
  BuildChain();
  net_.Listen(b_, 99, [](ConnId, SocketAddr) { return ConnCallbacks{}; });
  std::optional<ConnId> client;
  net_.Connect(a_, SocketAddr{b_, 99}, ConnCallbacks{},
               [&](std::optional<ConnId> c) { client = c; });
  sim_.Run();
  ASSERT_TRUE(client.has_value());
  auto eps = net_.ConnEndpoints(*client);
  ASSERT_TRUE(eps.has_value());
  EXPECT_EQ(eps->first.host, a_);
  EXPECT_EQ(eps->second.host, b_);
  EXPECT_EQ(eps->second.port, 99);
  EXPECT_EQ(net_.ConnsTouching(a_).size(), 1u);
  EXPECT_EQ(net_.ConnsTouching(b_).size(), 1u);
  EXPECT_EQ(net_.ConnsTouching(c_).size(), 0u);
}

TEST_F(NetTest, HealRestoresConnectivity) {
  BuildChain();
  net_.Partition({{a_}, {b_, c_, d_}});
  EXPECT_FALSE(net_.HopDistance(a_, b_).has_value());
  net_.Heal();
  EXPECT_EQ(net_.HopDistance(a_, b_), 1u);
}

TEST_F(NetTest, StatsCountTraffic) {
  BuildChain();
  net_.BindDgram(b_, 53, [](SocketAddr, const std::vector<uint8_t>&,
                            const std::vector<HostId>&) {});
  net_.SendDgram(a_, 1000, SocketAddr{b_, 53}, {'x'});
  sim_.Run();
  EXPECT_EQ(net_.stats().frames_sent, 1u);
  EXPECT_EQ(net_.stats().frames_delivered, 1u);
  EXPECT_GT(net_.stats().bytes_sent, 0u);
}

}  // namespace
}  // namespace ppm::net

// timeline_test.cc — the history timeline / summary renderer.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "tests/test_util.h"
#include "tools/client.h"
#include "tools/timeline.h"

namespace ppm::tools {
namespace {

using core::HistEvent;
using test::ConnectTool;
using test::InstallTestUser;
using test::RunUntil;

HistEvent Ev(sim::SimTime at, host::KEvent kind, host::Pid pid, int status = 0,
             const std::string& detail = "") {
  HistEvent ev;
  ev.at = at;
  ev.kind = kind;
  ev.pid = pid;
  ev.status = status;
  ev.detail = detail;
  return ev;
}

TEST(Timeline, RendersRelativeTimes) {
  std::vector<HistEvent> events = {
      Ev(1'000'000, host::KEvent::kExec, 6, 0, "worker"),
      Ev(1'120'500, host::KEvent::kStop, 6),
      Ev(1'980'000, host::KEvent::kContinue, 6),
      Ev(2'420'900, host::KEvent::kExit, 6, 0),
  };
  std::string out = RenderTimeline(events);
  EXPECT_NE(out.find("0.0"), std::string::npos);       // first event at t=0
  EXPECT_NE(out.find("120.5"), std::string::npos);
  EXPECT_NE(out.find("1420.9"), std::string::npos);
  EXPECT_NE(out.find("exec     worker"), std::string::npos);
  EXPECT_NE(out.find("exit     status=0"), std::string::npos);
}

TEST(Timeline, AbsoluteTimesWhenRequested) {
  std::vector<HistEvent> events = {Ev(5'000'000, host::KEvent::kExec, 3, 0, "x")};
  TimelineOptions options;
  options.relative_times = false;
  std::string out = RenderTimeline(events, options);
  EXPECT_NE(out.find("5000.0"), std::string::npos);
}

TEST(Timeline, PidFilterSelectsOneProcess) {
  std::vector<HistEvent> events = {
      Ev(0, host::KEvent::kExec, 1, 0, "one"),
      Ev(1000, host::KEvent::kExec, 2, 0, "two"),
  };
  TimelineOptions options;
  options.pid_filter = 2;
  std::string out = RenderTimeline(events, options);
  EXPECT_EQ(out.find("one"), std::string::npos);
  EXPECT_NE(out.find("two"), std::string::npos);
}

TEST(Timeline, SummaryAggregatesPerPid) {
  std::vector<HistEvent> events = {
      Ev(0, host::KEvent::kExec, 1),
      Ev(2'000'000, host::KEvent::kExit, 1),
      Ev(500, host::KEvent::kExec, 2),
      Ev(700, host::KEvent::kFileOpen, 2, 0, "/tmp/x"),
  };
  std::string out = SummarizeHistory(events);
  EXPECT_NE(out.find("exited"), std::string::npos);
  EXPECT_NE(out.find("alive"), std::string::npos);
  EXPECT_NE(out.find("2000.0"), std::string::npos);  // pid 1 lifespan
}

TEST(Timeline, EmptyHistory) {
  std::string out = RenderTimeline({});
  EXPECT_NE(out.find("t(ms)"), std::string::npos);  // header only
  EXPECT_EQ(SummarizeHistory({}).find("exited"), std::string::npos);
}

TEST(Timeline, EndToEndFromLpmHistory) {
  core::Cluster cluster;
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);
  std::optional<core::CreateResp> created;
  client->CreateProcess("solo", "traced", {},
                        [&](const core::CreateResp& r) { created = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return created.has_value(); }));
  host::Kernel& kernel = cluster.host("solo").kernel();
  kernel.PostSignal(created->gpid.pid, host::Signal::kSigStop, test::kTestUid);
  cluster.RunFor(sim::Millis(300));
  kernel.PostSignal(created->gpid.pid, host::Signal::kSigCont, test::kTestUid);
  cluster.RunFor(sim::Millis(300));
  kernel.PostSignal(created->gpid.pid, host::Signal::kSigKill, test::kTestUid);
  cluster.RunFor(sim::Millis(300));

  std::optional<core::HistoryResp> hist;
  client->History("", created->gpid.pid, 0, [&](const core::HistoryResp& r) { hist = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return hist.has_value(); }));
  std::string timeline = RenderTimeline(hist->events);
  EXPECT_NE(timeline.find("exec     traced"), std::string::npos);
  EXPECT_NE(timeline.find("stop"), std::string::npos);
  EXPECT_NE(timeline.find("continue"), std::string::npos);
  EXPECT_NE(timeline.find("exit"), std::string::npos);
  std::string summary = SummarizeHistory(hist->events);
  EXPECT_NE(summary.find("exited"), std::string::npos);
}

}  // namespace
}  // namespace ppm::tools

// Group operations: gang-spawn, cluster-wide barriers, global envars,
// and group signal/join (src/group/ plus the LPM handlers behind the
// 0xF8 wire family).  The properties under test:
//
//   * gang-spawn is all-or-nothing: either every member comes up and the
//     coordinator's ledger lists them all, or the partial gang is torn
//     down and the group never existed;
//   * a barrier epoch is decided exactly once, and the decision survives
//     a warm restart of the deciding manager — re-entering a decided
//     epoch is rejected, not re-released;
//   * an envar watcher fires exactly once per distinct change even
//     though the update floods every link and duplicates are rife;
//   * group frames ride the PR-8 overload machinery: retries over lossy
//     links reuse idempotency tokens, so a gang never double-forks.
#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/lpm.h"
#include "core/wire.h"
#include "group/group.h"
#include "net/network.h"
#include "tools/client.h"
#include "tools/ppmstat.h"
#include "test_util.h"

namespace ppm {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::Lpm;
using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::RunUntil;

size_t ProcsAlive(Cluster& cluster, const std::string& host,
                  const std::string& command) {
  host::Kernel& k = cluster.host(host).kernel();
  size_t n = 0;
  for (host::Pid pid : k.ProcessesOf(kTestUid)) {
    const host::Process* p = k.Find(pid);
    if (p && p->alive() && p->command == command) ++n;
  }
  return n;
}

core::ClusterConfig DurableConfig() {
  core::ClusterConfig config;
  config.lpm.durable_store = true;
  config.lpm.store_group_commit = 1;
  return config;
}

// --- gang spawn -------------------------------------------------------------

TEST(GangSpawnTest, AllOrNothingAcrossHosts) {
  Cluster cluster;
  std::vector<std::string> hosts = {"vaxA", "vaxB", "vaxC", "vaxD"};
  for (const std::string& h : hosts) cluster.AddHost(h);
  cluster.Ethernet(hosts);
  InstallTestUser(cluster);
  tools::PpmClient* client = ConnectTool(cluster, "vaxA");
  ASSERT_NE(client, nullptr);

  // Two members per host, one client round.
  std::vector<std::string> spawn_hosts, commands;
  for (int w = 0; w < 8; ++w) {
    spawn_hosts.push_back(hosts[w % hosts.size()]);
    commands.push_back("gang-w");
  }
  std::optional<core::GroupSpawnResp> resp;
  client->GroupSpawn("crunchers", spawn_hosts, commands,
                     [&](const core::GroupSpawnResp& r) { resp = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return resp.has_value(); }));
  ASSERT_TRUE(resp->ok) << resp->error;
  ASSERT_EQ(resp->members.size(), 8u);
  EXPECT_TRUE(resp->host_errors.empty());

  // Every member is really alive on the host it was placed on, and the
  // coordinator's ledger agrees with the reply.
  for (const std::string& h : hosts) {
    EXPECT_EQ(ProcsAlive(cluster, h, "gang-w"), 2u) << h;
  }
  Lpm* coord = cluster.FindLpm("vaxA", kTestUid);
  ASSERT_NE(coord, nullptr);
  EXPECT_TRUE(coord->group_table().HasGroup("crunchers"));
  EXPECT_EQ(coord->group_table().LiveMembers("crunchers").size(), 8u);
  EXPECT_EQ(coord->stats().gang_spawns, 1u);
  EXPECT_EQ(coord->stats().gang_rollbacks, 0u);

  // Duplicate gang for a live group is refused outright.
  std::optional<core::GroupSpawnResp> dup;
  client->GroupSpawn("crunchers", {"vaxB"}, {"gang-w"},
                     [&](const core::GroupSpawnResp& r) { dup = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return dup.has_value(); }));
  EXPECT_FALSE(dup->ok);
  EXPECT_FALSE(dup->error.empty());
}

TEST(GangSpawnTest, PartialFailureRollsBackEverything) {
  Cluster cluster;
  cluster.AddHost("vaxA");
  cluster.AddHost("vaxB");
  cluster.Ethernet({"vaxA", "vaxB"});
  InstallTestUser(cluster);
  tools::PpmClient* client = ConnectTool(cluster, "vaxA");
  ASSERT_NE(client, nullptr);

  // The remote half of the gang can never come up.
  cluster.Crash("vaxB");
  cluster.RunFor(sim::Millis(50));

  std::optional<core::GroupSpawnResp> resp;
  client->GroupSpawn("doomed", {"vaxA", "vaxA", "vaxB"},
                     {"gang-w", "gang-w", "gang-w"},
                     [&](const core::GroupSpawnResp& r) { resp = r; });
  // The vaxB part burns its retries before the gang settles.
  ASSERT_TRUE(RunUntil(cluster, [&] { return resp.has_value(); },
                       sim::Seconds(240)));
  EXPECT_FALSE(resp->ok);
  EXPECT_FALSE(resp->error.empty());
  ASSERT_FALSE(resp->host_errors.empty());
  EXPECT_NE(resp->host_errors[0].find("vaxB"), std::string::npos);

  // All-or-nothing: the two local members that *did* fork were undone,
  // and the group never existed.
  cluster.RunFor(sim::Seconds(1));
  EXPECT_EQ(ProcsAlive(cluster, "vaxA", "gang-w"), 0u);
  Lpm* coord = cluster.FindLpm("vaxA", kTestUid);
  ASSERT_NE(coord, nullptr);
  EXPECT_FALSE(coord->group_table().HasGroup("doomed"));
  EXPECT_EQ(coord->stats().gang_rollbacks, 1u);

  // The name is reusable immediately after the rollback.
  std::optional<core::GroupSpawnResp> again;
  client->GroupSpawn("doomed", {"vaxA"}, {"gang-w"},
                     [&](const core::GroupSpawnResp& r) { again = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return again.has_value(); }));
  EXPECT_TRUE(again->ok) << again->error;
}

// --- group signal / join ----------------------------------------------------

TEST(GroupLifecycleTest, SignalFansOutAndJoinCollectsEveryExit) {
  Cluster cluster;
  cluster.AddHost("vaxA");
  cluster.AddHost("vaxB");
  cluster.Ethernet({"vaxA", "vaxB"});
  InstallTestUser(cluster);
  tools::PpmClient* client = ConnectTool(cluster, "vaxA");
  ASSERT_NE(client, nullptr);

  std::optional<core::GroupSpawnResp> gang;
  client->GroupSpawn("pool", {"vaxA", "vaxB", "vaxB"},
                     {"pool-w", "pool-w", "pool-w"},
                     [&](const core::GroupSpawnResp& r) { gang = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return gang.has_value(); }));
  ASSERT_TRUE(gang->ok) << gang->error;

  // A join issued while members live parks until the last exit.
  std::optional<core::GroupJoinResp> join;
  client->GroupJoin("pool", [&](const core::GroupJoinResp& r) { join = r; });
  cluster.RunFor(sim::Seconds(1));
  EXPECT_FALSE(join.has_value()) << "join must wait for the gang to die";

  std::optional<core::GroupSignalResp> sig;
  client->GroupSignal("pool", host::Signal::kSigKill,
                      [&](const core::GroupSignalResp& r) { sig = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return sig.has_value(); }));
  ASSERT_TRUE(sig->ok) << sig->error;
  EXPECT_EQ(sig->delivered, 3u);
  EXPECT_EQ(sig->failed, 0u);

  // The cross-host exit notifications drain back to the coordinator and
  // release the parked join with one status per member.
  ASSERT_TRUE(RunUntil(cluster, [&] { return join.has_value(); }));
  ASSERT_TRUE(join->ok) << join->error;
  ASSERT_EQ(join->exits.size(), 3u);
  size_t on_b = 0;
  for (const core::GroupExit& e : join->exits) {
    if (e.gpid.host == "vaxB") ++on_b;
  }
  EXPECT_EQ(on_b, 2u) << "remote exits must flow back over GroupExitNotify";

  // Joining an unknown group is an explicit error, not a hang.
  std::optional<core::GroupJoinResp> bogus;
  client->GroupJoin("nope", [&](const core::GroupJoinResp& r) { bogus = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return bogus.has_value(); }));
  EXPECT_FALSE(bogus->ok);
}

// --- barriers ---------------------------------------------------------------

TEST(BarrierTest, ReleasesAllPartiesAndTimesOutWithStragglers) {
  ClusterConfig config;
  config.lpm.probe_interval = sim::Seconds(1);  // yield to vaxA quickly
  Cluster cluster(config);
  std::vector<std::string> hosts = {"vaxA", "vaxB", "vaxC"};
  for (const std::string& h : hosts) cluster.AddHost(h);
  cluster.Ethernet(hosts);
  // One CCS for the user: the .recovery list makes vaxA the coordinator
  // the other managers probe and yield to, so every barrier join
  // tallies in one place.
  InstallTestUser(cluster, {"vaxA"});
  std::vector<tools::PpmClient*> clients;
  for (const std::string& h : hosts) {
    tools::PpmClient* c = ConnectTool(cluster, h, "tool-" + h);
    ASSERT_NE(c, nullptr);
    clients.push_back(c);
  }
  // Let vaxB and vaxC discover the listed coordinator.
  Lpm* ccs_b = cluster.FindLpm("vaxB", kTestUid);
  Lpm* ccs_c = cluster.FindLpm("vaxC", kTestUid);
  ASSERT_NE(ccs_b, nullptr);
  ASSERT_NE(ccs_c, nullptr);
  ASSERT_TRUE(RunUntil(cluster, [&] {
    return ccs_b->ccs_host() == "vaxA" && ccs_c->ccs_host() == "vaxA";
  }));

  // Epoch 1: all three parties enter, all three release.
  std::vector<core::BarrierEnterResp> released;
  for (tools::PpmClient* c : clients) {
    c->BarrierEnter("sync", 1, 3,
                    [&](const core::BarrierEnterResp& r) { released.push_back(r); });
  }
  ASSERT_TRUE(RunUntil(cluster, [&] { return released.size() == 3u; }));
  for (const core::BarrierEnterResp& r : released) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.released);
    EXPECT_EQ(r.epoch, 1u);
    EXPECT_TRUE(r.stragglers.empty());
  }

  // Epoch 2: one party never shows.  The CCS times the epoch out and
  // the waiters learn it — with the joined hosts called out.
  std::vector<core::BarrierEnterResp> timed_out;
  clients[0]->BarrierEnter("sync", 2, 3,
                           [&](const core::BarrierEnterResp& r) { timed_out.push_back(r); });
  clients[1]->BarrierEnter("sync", 2, 3,
                           [&](const core::BarrierEnterResp& r) { timed_out.push_back(r); });
  ASSERT_TRUE(RunUntil(cluster, [&] { return timed_out.size() == 2u; },
                       sim::Seconds(60)));
  for (const core::BarrierEnterResp& r : timed_out) {
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.released);
    EXPECT_FALSE(r.stragglers.empty());
    EXPECT_FALSE(r.error.empty());
  }

  // The decided epochs are sealed: late entry to either is rejected.
  std::optional<core::BarrierEnterResp> late;
  clients[2]->BarrierEnter("sync", 2, 3,
                           [&](const core::BarrierEnterResp& r) { late = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return late.has_value(); }));
  EXPECT_FALSE(late->ok);
  EXPECT_NE(late->error.find("decided"), std::string::npos) << late->error;
}

TEST(BarrierTest, DecidedEpochSurvivesWarmRestart) {
  core::Cluster cluster(DurableConfig());
  cluster.AddHost("alpha");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  tools::PpmClient* client = ConnectTool(cluster, "alpha");
  ASSERT_NE(client, nullptr);

  // A solo barrier releases instantly (the host is its own CCS).
  std::optional<core::BarrierEnterResp> first;
  client->BarrierEnter("ready", 1, 1,
                       [&](const core::BarrierEnterResp& r) { first = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return first.has_value(); }));
  ASSERT_TRUE(first->ok) << first->error;
  EXPECT_TRUE(first->released);
  cluster.RunFor(sim::Millis(200));

  // Kill the manager; a fresh tool contact mints the successor, which
  // replays the journal — including the kBarrierEpoch record.
  Lpm* old_lpm = cluster.FindLpm("alpha", kTestUid);
  ASSERT_NE(old_lpm, nullptr);
  host::Pid old_pid = old_lpm->pid();
  cluster.host("alpha").kernel().PostSignal(old_pid, host::Signal::kSigKill,
                                            host::kRootUid);
  cluster.RunFor(sim::Millis(100));
  tools::PpmClient* again = ConnectTool(cluster, "alpha", "tool2");
  ASSERT_NE(again, nullptr);
  Lpm* new_lpm = cluster.FindLpm("alpha", kTestUid);
  ASSERT_NE(new_lpm, nullptr);
  ASSERT_NE(new_lpm->pid(), old_pid);
  EXPECT_EQ(new_lpm->group_table().DecidedEpoch("ready"), 1u);

  // Re-entering the decided epoch is rejected — the restart must not
  // re-release (or re-time-out) an epoch the predecessor sealed.
  std::optional<core::BarrierEnterResp> replay;
  again->BarrierEnter("ready", 1, 1,
                      [&](const core::BarrierEnterResp& r) { replay = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return replay.has_value(); }));
  EXPECT_FALSE(replay->ok);
  EXPECT_NE(replay->error.find("decided"), std::string::npos) << replay->error;

  // The next epoch is fresh and releases normally.
  std::optional<core::BarrierEnterResp> next;
  again->BarrierEnter("ready", 2, 1,
                      [&](const core::BarrierEnterResp& r) { next = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return next.has_value(); }));
  EXPECT_TRUE(next->ok) << next->error;
  EXPECT_TRUE(next->released);
}

// --- global envars ----------------------------------------------------------

TEST(EnvarTest, WatcherFiresExactlyOncePerChange) {
  ClusterConfig config;
  config.lpm.probe_interval = sim::Seconds(1);  // yield to vaxA quickly
  Cluster cluster(config);
  std::vector<std::string> hosts = {"vaxA", "vaxB", "vaxC"};
  for (const std::string& h : hosts) cluster.AddHost(h);
  cluster.Ethernet(hosts);
  InstallTestUser(cluster, {"vaxA"});
  tools::PpmClient* setter = ConnectTool(cluster, "vaxA");
  tools::PpmClient* watcher = ConnectTool(cluster, "vaxB", "tool-b");
  ASSERT_NE(setter, nullptr);
  ASSERT_NE(watcher, nullptr);
  Lpm* b = cluster.FindLpm("vaxB", kTestUid);
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(RunUntil(cluster, [&] { return b->ccs_host() == "vaxA"; }));

  // The watched action: a benign SIGCONT tap on a local worker.
  std::optional<core::CreateResp> worker;
  watcher->CreateProcess("vaxB", "tap-target", {},
                         [&](const core::CreateResp& r) { worker = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return worker.has_value(); }));
  ASSERT_TRUE(worker->ok);

  // Close a sibling cycle A—B—C—A so every flood reaches vaxB twice
  // (directly from vaxA and again relayed through vaxC): the
  // exactly-once claim below is against real duplicate deliveries.
  for (tools::PpmClient* c : {setter, watcher}) {
    std::optional<core::CreateResp> cycle;
    c->CreateProcess("vaxC", "cycle-maker", {},
                     [&](const core::CreateResp& r) { cycle = r; });
    ASSERT_TRUE(RunUntil(cluster, [&] { return cycle.has_value(); }));
    ASSERT_TRUE(cycle->ok);
  }
  core::TriggerSpec spec;
  spec.action = core::TriggerAction::kSignal;
  spec.action_signal = host::Signal::kSigCont;
  spec.action_target = worker->gpid;
  std::optional<core::EnvarWatchResp> watch;
  watcher->GenvWatch("phase", spec,
                     [&](const core::EnvarWatchResp& r) { watch = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return watch.has_value(); }));
  ASSERT_TRUE(watch->ok) << watch->error;

  constexpr int kChanges = 10;
  for (int i = 0; i < kChanges; ++i) {
    std::optional<core::EnvarSetResp> set;
    setter->GenvSet("phase", "step-" + std::to_string(i),
                    [&](const core::EnvarSetResp& r) { set = r; });
    ASSERT_TRUE(RunUntil(cluster, [&] { return set.has_value(); }));
    ASSERT_TRUE(set->ok) << set->error;
  }
  ASSERT_TRUE(RunUntil(cluster, [&] {
    return b->stats().envar_watch_fires >= kChanges;
  }));
  cluster.RunFor(sim::Seconds(2));  // settle: late duplicates must not re-fire

  // Exactly once per distinct change, even though the all-pairs flood
  // delivered every update to vaxB twice (directly and via vaxC).
  EXPECT_EQ(b->stats().envar_watch_fires, static_cast<uint64_t>(kChanges));
  uint64_t dups = 0;
  for (const std::string& h : hosts) {
    Lpm* lpm = cluster.FindLpm(h, kTestUid);
    ASSERT_NE(lpm, nullptr);
    dups += lpm->stats().bcast_duplicates;
  }
  EXPECT_GT(dups, 0u) << "the flood must actually have produced duplicates";

  // All three replicas converged on the final value at one version.
  for (const std::string& h : hosts) {
    Lpm* lpm = cluster.FindLpm(h, kTestUid);
    const group::Envar* e = lpm->group_table().FindEnvar("phase");
    ASSERT_NE(e, nullptr) << h;
    EXPECT_EQ(e->value, "step-" + std::to_string(kChanges - 1)) << h;
  }

  // A read through the client sees the replicated value.
  std::optional<core::EnvarGetResp> got;
  watcher->GenvGet("phase", [&](const core::EnvarGetResp& r) { got = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return got.has_value(); }));
  ASSERT_TRUE(got->ok) << got->error;
  EXPECT_EQ(got->value, "step-" + std::to_string(kChanges - 1));
}

TEST(EnvarTest, TableSurvivesWarmRestart) {
  core::Cluster cluster(DurableConfig());
  cluster.AddHost("alpha");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  tools::PpmClient* client = ConnectTool(cluster, "alpha");
  ASSERT_NE(client, nullptr);
  std::optional<core::EnvarSetResp> set;
  client->GenvSet("checkpoint", "epoch-41",
                  [&](const core::EnvarSetResp& r) { set = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return set.has_value(); }));
  ASSERT_TRUE(set->ok);
  cluster.RunFor(sim::Millis(200));

  Lpm* old_lpm = cluster.FindLpm("alpha", kTestUid);
  ASSERT_NE(old_lpm, nullptr);
  cluster.host("alpha").kernel().PostSignal(old_lpm->pid(), host::Signal::kSigKill,
                                            host::kRootUid);
  cluster.RunFor(sim::Millis(100));
  tools::PpmClient* again = ConnectTool(cluster, "alpha", "tool2");
  ASSERT_NE(again, nullptr);
  std::optional<core::EnvarGetResp> got;
  again->GenvGet("checkpoint", [&](const core::EnvarGetResp& r) { got = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return got.has_value(); }));
  ASSERT_TRUE(got->ok) << got->error;
  EXPECT_EQ(got->value, "epoch-41");
  EXPECT_EQ(got->version, set->version);
}

// --- overload machinery on group frames -------------------------------------

// Gang-spawn forwards over lossy links must retry with the original
// idempotency token: the receiver replays its cached GroupPartResp
// instead of forking a second member, so a gang of N is N processes —
// never N plus the retries.
TEST(GroupOverloadTest, GangRetriesAreIdempotentOverLossyLinks) {
  ClusterConfig config;
  config.seed = 11;
  config.lpm.max_retries = 5;  // a gang dies if any part exhausts retries
  Cluster cluster(config);
  cluster.AddHost("vaxA");
  cluster.AddHost("vaxB");
  cluster.Ethernet({"vaxA", "vaxB"});
  InstallTestUser(cluster);
  tools::PpmClient* client = ConnectTool(cluster, "vaxA");
  ASSERT_NE(client, nullptr);

  // Gang 0 forms over a clean link: its members anchor vaxB's LPM (an
  // idle manager with no adoptees would exit on its TTL mid-test).
  std::optional<core::GroupSpawnResp> anchor;
  client->GroupSpawn("gang-anchor", {"vaxB", "vaxB"}, {"lossy-gw", "lossy-gw"},
                     [&](const core::GroupSpawnResp& r) { anchor = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return anchor.has_value(); }));
  ASSERT_TRUE(anchor->ok) << anchor->error;

  net::LinkFaultProfile faults;
  faults.drop = 0.15;
  faults.duplicate = 0.10;
  cluster.network().SetLinkFaults(cluster.host("vaxA").net_id(),
                                  cluster.host("vaxB").net_id(), faults);

  constexpr int kGangs = 8;
  constexpr int kMembersPerGang = 4;  // all on the remote host
  int oks = 0, done = 0;
  for (int g = 0; g < kGangs; ++g) {
    std::optional<core::GroupSpawnResp> resp;
    client->GroupSpawn(
        "gang-" + std::to_string(g),
        std::vector<std::string>(kMembersPerGang, "vaxB"),
        std::vector<std::string>(kMembersPerGang, "lossy-gw"),
        [&](const core::GroupSpawnResp& r) {
          ++done;
          if (r.ok) ++oks;
        });
    ASSERT_TRUE(RunUntil(cluster, [&] { return done > g; }, sim::Seconds(240)))
        << "gang " << g << " never settled";
  }
  cluster.network().ClearLinkFaults();
  cluster.RunFor(sim::Seconds(2));

  // Exactly-once forks: a retried part never stacks a second process on
  // top of an executed one, so the alive count is bounded by what was
  // *requested* — never requests-plus-retries.  (A part whose reply died
  // after every retry leaves an orphan the rollback cannot name, so
  // failed gangs may leak members — but each at most once.)
  size_t alive = ProcsAlive(cluster, "vaxB", "lossy-gw");
  EXPECT_GE(alive, static_cast<size_t>(oks * kMembersPerGang + 2));
  EXPECT_LE(alive, static_cast<size_t>(kGangs * kMembersPerGang + 2));

  Lpm* origin = cluster.FindLpm("vaxA", kTestUid);
  Lpm* target = cluster.FindLpm("vaxB", kTestUid);
  ASSERT_NE(origin, nullptr);
  ASSERT_NE(target, nullptr);
  // The faults actually bit on the group path.
  EXPECT_GT(origin->stats().retries, 0u);
  EXPECT_GT(target->stats().dup_suppressed, 0u);
  // No silent loss at quiescence.
  EXPECT_EQ(origin->pending_forward_count(), 0u);
  EXPECT_EQ(target->queued_request_count(), 0u);
}

// --- the farm, end to end ---------------------------------------------------

// The acceptance workload: a 16-host cluster gang-spawns 32 workers,
// barrier-syncs the dispatcher with four watch agents, pushes 1000
// events through the envar fabric, loses a worker mid-run to a kill and
// gets it back through an exit trigger, then gsig/gjoin collects every
// exit — the example in examples/event_farm.cc with teeth.
TEST(FarmIntegrationTest, SixteenHostFarmRunsEndToEnd) {
  Cluster cluster;
  std::vector<std::string> hosts;
  for (int i = 0; i < 16; ++i) {
    hosts.push_back("n" + std::to_string(i + 10));  // n10..n25
    cluster.AddHost(hosts.back(), i % 3 == 0   ? host::HostType::kVax780
                                  : i % 3 == 1 ? host::HostType::kVax750
                                               : host::HostType::kSun2);
  }
  cluster.Ethernet(hosts);
  InstallTestUser(cluster);
  tools::PpmClient* dispatcher = ConnectTool(cluster, hosts[0]);
  ASSERT_NE(dispatcher, nullptr);

  // Gang-spawn: 32 workers over 16 hosts in one round.
  std::vector<std::string> spawn_hosts, commands;
  for (int w = 0; w < 32; ++w) {
    spawn_hosts.push_back(hosts[w % hosts.size()]);
    commands.push_back("farm-worker");
  }
  std::optional<core::GroupSpawnResp> gang;
  dispatcher->GroupSpawn("farm", spawn_hosts, commands,
                         [&](const core::GroupSpawnResp& r) { gang = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return gang.has_value(); },
                       sim::Seconds(120)));
  ASSERT_TRUE(gang->ok) << gang->error;
  ASSERT_EQ(gang->members.size(), 32u);

  // Four sites watch `farm.task`; each taps its local worker on change.
  const std::vector<std::string> sites = {hosts[1], hosts[4], hosts[8],
                                          hosts[12]};
  std::vector<tools::PpmClient*> agents;
  for (const std::string& site : sites) {
    tools::PpmClient* agent = ConnectTool(cluster, site, "agent-" + site);
    ASSERT_NE(agent, nullptr);
    core::GPid local;
    for (const core::GPid& m : gang->members) {
      if (m.host == site) local = m;
    }
    core::TriggerSpec spec;
    spec.action = core::TriggerAction::kSignal;
    spec.action_signal = host::Signal::kSigCont;
    spec.action_target = local;
    std::optional<core::EnvarWatchResp> watch;
    agent->GenvWatch("farm.task", spec,
                     [&](const core::EnvarWatchResp& r) { watch = r; });
    ASSERT_TRUE(RunUntil(cluster, [&] { return watch.has_value(); }));
    ASSERT_TRUE(watch->ok) << watch->error;
    agents.push_back(agent);
  }

  // Barrier: dispatcher + 4 agents must all arrive before work flows.
  const uint32_t kParties = 5;
  size_t released = 0;
  auto on_release = [&](const core::BarrierEnterResp& r) {
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_TRUE(r.released);
    ++released;
  };
  dispatcher->BarrierEnter("farm-start", 1, kParties, on_release);
  for (tools::PpmClient* agent : agents) {
    agent->BarrierEnter("farm-start", 1, kParties, on_release);
  }
  ASSERT_TRUE(RunUntil(cluster, [&] { return released == kParties; },
                       sim::Seconds(60)));

  // Arm the resurrection trigger on the victim's own manager.
  core::GPid victim;
  for (const core::GPid& m : gang->members) {
    if (m.host == hosts[3]) victim = m;
  }
  core::TriggerSpec respawn;
  respawn.event_kind = host::KEvent::kExit;
  respawn.subject_pid = victim.pid;
  respawn.action = core::TriggerAction::kSpawn;
  respawn.spawn_command = "farm-worker";
  respawn.group = "farm";
  std::optional<core::TriggerResp> armed;
  dispatcher->InstallTrigger(victim.host, respawn,
                             [&](const core::TriggerResp& r) { armed = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return armed.has_value(); }));
  ASSERT_TRUE(armed->ok);

  // 1000 events through the envar fabric; mid-run, murder the victim.
  constexpr int kEvents = 1000;
  int dispatched = 0;
  for (int event = 0; event < kEvents; ++event) {
    std::optional<core::EnvarSetResp> resp;
    dispatcher->GenvSet("farm.task", "evt-" + std::to_string(event),
                        [&](const core::EnvarSetResp& r) { resp = r; });
    ASSERT_TRUE(RunUntil(cluster, [&] { return resp.has_value(); }));
    ASSERT_TRUE(resp->ok) << resp->error;
    ++dispatched;
    if (event == 450) {
      cluster.host(victim.host).kernel().PostSignal(
          victim.pid, host::Signal::kSigKill, kTestUid);
    }
  }
  EXPECT_EQ(dispatched, kEvents);

  // Every watch site saw (at least) every post-arm change exactly once
  // per change; the flood must not have double-fired any watcher.
  uint64_t fires = 0;
  for (const std::string& site : sites) {
    Lpm* lpm = cluster.FindLpm(site, kTestUid);
    ASSERT_NE(lpm, nullptr);
    EXPECT_LE(lpm->stats().envar_watch_fires, static_cast<uint64_t>(kEvents));
    fires += lpm->stats().envar_watch_fires;
  }
  EXPECT_GE(fires, static_cast<uint64_t>(kEvents))
      << "the 4 sites together must have fired at least once per event";

  // The trigger resurrected the victim: the coordinator's ledger grows
  // to 33 members, exactly one of them (the victim) exited.
  Lpm* coord = cluster.FindLpm(hosts[0], kTestUid);
  ASSERT_NE(coord, nullptr);
  ASSERT_TRUE(RunUntil(cluster, [&] {
    auto it = coord->group_table().groups().find("farm");
    if (it == coord->group_table().groups().end()) return false;
    size_t exited = 0;
    for (const auto& m : it->second) {
      if (m.exited) ++exited;
    }
    return it->second.size() == 33u && exited == 1u;
  }, sim::Seconds(60)));

  // ppmstat shows the farm in its GROUPS section.
  std::optional<tools::PpmStatResult> stat;
  tools::RunPpmStatTool(*dispatcher,
                        [&](const tools::PpmStatResult& r) { stat = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return stat.has_value(); }));
  EXPECT_NE(stat->table.find("GROUPS"), std::string::npos);
  EXPECT_NE(stat->table.find("farm"), std::string::npos);

  // Shutdown: one gsig reaches all 32 live members, and gjoin collects
  // all 33 exit statuses (the murdered worker plus its replacement).
  std::optional<core::GroupSignalResp> sig;
  dispatcher->GroupSignal("farm", host::Signal::kSigKill,
                          [&](const core::GroupSignalResp& r) { sig = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return sig.has_value(); },
                       sim::Seconds(60)));
  ASSERT_TRUE(sig->ok) << sig->error;
  EXPECT_EQ(sig->delivered, 32u);
  EXPECT_EQ(sig->failed, 0u);

  std::optional<core::GroupJoinResp> join;
  dispatcher->GroupJoin("farm", [&](const core::GroupJoinResp& r) { join = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return join.has_value(); },
                       sim::Seconds(60)));
  ASSERT_TRUE(join->ok) << join->error;
  EXPECT_EQ(join->exits.size(), 33u);
}

}  // namespace
}  // namespace ppm

// chaos_test.cc — randomized fault injection over a live PPM.
//
// The paper's robustness claim (Section 8: "It is resilient to software,
// host, and network failures") is exercised here adversarially: a seeded
// generator interleaves process churn, tool activity, LPM kills, host
// crashes/reboots, partitions and heals for a long stretch of virtual
// time.  Afterwards the network heals, every host reboots if needed, and
// the invariants are checked:
//
//   * the simulation never panicked (PPM_CHECK aborts the test binary);
//   * no LPM is stuck dying once its recovery hosts are reachable again;
//   * a fresh tool session works on every host: create, signal,
//     snapshot all succeed end to end;
//   * per-host kernel genealogy is consistent.
//
// Determinism makes every failure reproducible from its seed.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/lpm.h"
#include "obs/flight.h"
#include "obs/trace.h"
#include "tests/test_util.h"
#include "tools/client.h"
#include "tools/trace_export.h"

namespace ppm::core {
namespace {

using test::InstallTestUser;
using test::kTestUid;
using test::kTestUser;
using test::RunUntil;
using tools::PpmClient;

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, SystemSurvivesRandomFaults) {
  ClusterConfig config;
  config.seed = GetParam();
  config.lpm.time_to_die = sim::Seconds(90);
  config.lpm.retry_interval = sim::Seconds(10);
  config.lpm.probe_interval = sim::Seconds(15);
  Cluster cluster(config);
  const std::vector<std::string> hosts = {"h0", "h1", "h2", "h3", "h4"};
  for (const auto& h : hosts) cluster.AddHost(h);
  cluster.Ethernet(hosts);
  InstallTestUser(cluster, {"h0", "h1", "h2"});
  cluster.RunFor(sim::Millis(10));

  sim::Rng& rng = cluster.simulator().rng();
  auto random_host = [&] { return hosts[rng.Below(hosts.size())]; };

  // A tool that gets re-established whenever its host dies.  The body
  // pointer is owned by the process table, so it must be re-validated
  // through the kernel after every fault (a crash destroys it).
  std::string tool_host;
  host::Pid tool_pid = host::kNoPid;
  auto current_tool = [&]() -> PpmClient* {
    if (tool_host.empty()) return nullptr;
    host::Host& h = cluster.host(tool_host);
    if (!h.up()) return nullptr;
    host::Process* proc = h.kernel().Find(tool_pid);
    if (!proc || !proc->alive()) return nullptr;
    auto* client = dynamic_cast<PpmClient*>(proc->body.get());
    return (client && client->connected()) ? client : nullptr;
  };
  auto ensure_tool = [&]() -> PpmClient* {
    if (PpmClient* alive = current_tool()) return alive;
    tool_host.clear();
    for (const auto& h : hosts) {
      if (!cluster.host(h).up()) continue;
      PpmClient* candidate = tools::SpawnTool(cluster.host(h), kTestUser, kTestUid, "chaos");
      bool done = false, ok = false;
      candidate->Start([&](bool success, std::string) {
        done = true;
        ok = success;
      });
      RunUntil(cluster, [&] { return done; }, sim::Seconds(30));
      if (ok) {
        tool_host = h;
        tool_pid = candidate->pid();
        return candidate;
      }
    }
    return nullptr;
  };

  std::vector<GPid> procs;
  for (int step = 0; step < 60; ++step) {
    uint64_t roll = rng.Below(100);
    if (roll < 30) {
      // Create a process somewhere.
      if (PpmClient* t = ensure_tool()) {
        std::string target = random_host();
        if (cluster.host(target).up()) {
          std::optional<CreateResp> resp;
          t->CreateProcess(target, "chaos-w", {},
                           [&](const CreateResp& r) { resp = r; });
          RunUntil(cluster, [&] { return resp.has_value(); }, sim::Seconds(30));
          if (resp && resp->ok) procs.push_back(resp->gpid);
        }
      }
    } else if (roll < 45 && !procs.empty()) {
      // Signal a random known process (may legitimately fail).
      if (PpmClient* t = ensure_tool()) {
        const GPid& target = procs[rng.Below(procs.size())];
        host::Signal sig = rng.Chance(0.5) ? host::Signal::kSigStop
                                           : host::Signal::kSigKill;
        std::optional<SignalResp> resp;
        t->Signal(target, sig, [&](const SignalResp& r) { resp = r; });
        RunUntil(cluster, [&] { return resp.has_value(); }, sim::Seconds(30));
      }
    } else if (roll < 55) {
      // Snapshot (may time out / be partial; must complete).
      if (PpmClient* t = ensure_tool()) {
        std::optional<SnapshotResp> resp;
        t->Snapshot([&](const SnapshotResp& r) { resp = r; });
        RunUntil(cluster, [&] { return resp.has_value(); }, sim::Seconds(60));
        EXPECT_TRUE(resp.has_value()) << "snapshot hung";
      }
    } else if (roll < 65) {
      // Kill an LPM (software failure).
      std::string victim = random_host();
      if (Lpm* lpm = cluster.FindLpm(victim, kTestUid)) {
        cluster.host(victim).kernel().PostSignal(lpm->pid(), host::Signal::kSigKill,
                                                 host::kRootUid);
      }
    } else if (roll < 75) {
      // Crash a host (keep at least two up).
      size_t up = 0;
      for (const auto& h : hosts) up += cluster.host(h).up();
      if (up > 2) {
        std::string victim = random_host();
        if (cluster.host(victim).up()) cluster.Crash(victim);
      }
    } else if (roll < 85) {
      // Reboot something dead.
      for (const auto& h : hosts) {
        if (!cluster.host(h).up()) {
          cluster.Reboot(h);
          break;
        }
      }
    } else if (roll < 93) {
      // Random bipartition.
      std::vector<net::HostId> left, right;
      for (const auto& h : hosts) {
        net::HostId id = *cluster.network().FindHost(h);
        (rng.Chance(0.5) ? left : right).push_back(id);
      }
      if (!left.empty() && !right.empty()) {
        cluster.network().Partition({left, right});
      }
    } else {
      cluster.network().Heal();
    }
    cluster.RunFor(sim::Seconds(rng.Range(1, 8)));
  }

  // --- restore the world and let recovery run its course -----------------
  cluster.network().Heal();
  for (const auto& h : hosts) {
    if (!cluster.host(h).up()) cluster.Reboot(h);
  }
  cluster.RunFor(sim::Seconds(120));

  // No LPM may still be dying: its recovery hosts are reachable now.
  for (const auto& h : hosts) {
    if (Lpm* lpm = cluster.FindLpm(h, kTestUid)) {
      EXPECT_NE(lpm->mode(), LpmMode::kDying) << "LPM on " << h << " stuck dying";
    }
  }

  // A fresh session must work from every host, end to end.
  for (const auto& h : hosts) {
    PpmClient* fresh = tools::SpawnTool(cluster.host(h), kTestUser, kTestUid, "verify");
    bool done = false, ok = false;
    fresh->Start([&](bool success, std::string err) {
      done = true;
      ok = success;
      EXPECT_TRUE(success) << h << ": " << err;
    });
    ASSERT_TRUE(RunUntil(cluster, [&] { return done; }, sim::Seconds(30))) << h;
    ASSERT_TRUE(ok) << h;
    std::optional<CreateResp> created;
    fresh->CreateProcess(h, "verify-w", {}, [&](const CreateResp& r) { created = r; });
    ASSERT_TRUE(RunUntil(cluster, [&] { return created.has_value(); }, sim::Seconds(30)))
        << h;
    EXPECT_TRUE(created->ok) << created->error;
    std::optional<SignalResp> sig;
    fresh->Signal(created->gpid, host::Signal::kSigKill,
                  [&](const SignalResp& r) { sig = r; });
    ASSERT_TRUE(RunUntil(cluster, [&] { return sig.has_value(); }, sim::Seconds(30)));
    EXPECT_TRUE(sig->ok) << sig->error;
    std::optional<SnapshotResp> snap;
    fresh->Snapshot([&](const SnapshotResp& r) { snap = r; });
    ASSERT_TRUE(RunUntil(cluster, [&] { return snap.has_value(); }, sim::Seconds(60)));
    fresh->Disconnect();
  }

  // Kernel genealogy is consistent everywhere.
  for (const auto& h : hosts) {
    host::Kernel& kernel = cluster.host(h).kernel();
    for (host::Pid pid : kernel.AllPids()) {
      const host::Process* proc = kernel.Find(pid);
      if (!proc->alive() || pid == host::Kernel::kInitPid) continue;
      const host::Process* parent = kernel.Find(proc->ppid);
      ASSERT_NE(parent, nullptr);
      EXPECT_TRUE(parent->alive());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 1986, 4242));

// A failing invariant must auto-emit exactly one flight-recorder dump
// containing the violating event.  The plan injects no faults at all
// (a host crash would dump on its own) and instead uses the
// forced_violation test seam, so the one dump is the engine's.
TEST(ChaosFlightDump, InvariantFailureEmitsExactlyOneDump) {
  obs::FlightRecorder& flight = obs::FlightRecorder::Instance();
  flight.Clear();

  chaos::ChaosPlan plan;
  plan.name = "forced-violation-dump";
  plan.steps = 4;
  plan.workload.create = 1;
  plan.workload.snapshot = 1;
  plan.forced_violation = true;

  uint64_t dumps_before = flight.dump_count();
  chaos::ChaosOutcome outcome = chaos::RunChaosPlan(7, plan);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(flight.dump_count(), dumps_before + 1) << outcome.Summary();
  ASSERT_FALSE(outcome.flight_dump.empty());
  EXPECT_EQ(outcome.flight_dump, flight.last_dump());
  // The dump leads with the replay pair and contains the violation
  // record itself.
  EXPECT_NE(outcome.flight_dump.find("plan=forced-violation-dump seed=7"),
            std::string::npos);
  EXPECT_NE(outcome.flight_dump.find("invariant.violation"), std::string::npos);
  EXPECT_NE(outcome.flight_dump.find("forced-violation"), std::string::npos);

  // The dump interleaves with the causal trace timeline: the merged
  // rendering orders flight records against the run's recorded spans.
  uint64_t tid = obs::Tracer::Instance().last_trace_id();
  std::vector<obs::SpanRecord> spans =
      tid ? obs::Tracer::Instance().Trace(tid) : std::vector<obs::SpanRecord>{};
  std::string merged = tools::RenderTimelineWithFlight(spans, flight.Snapshot());
  EXPECT_NE(merged.find("invariant.violation"), std::string::npos);
  flight.Clear();
}

// A clean run must NOT dump: always-on recording is free of side
// effects until something actually goes wrong.
TEST(ChaosFlightDump, CleanRunEmitsNoDump) {
  obs::FlightRecorder& flight = obs::FlightRecorder::Instance();
  flight.Clear();
  chaos::ChaosPlan plan;
  plan.name = "clean-run";
  plan.steps = 4;
  plan.workload.create = 1;
  plan.workload.signal = 1;
  chaos::ChaosOutcome outcome = chaos::RunChaosPlan(11, plan);
  EXPECT_TRUE(outcome.ok()) << outcome.Summary();
  EXPECT_EQ(flight.dump_count(), 0u);
  EXPECT_TRUE(outcome.flight_dump.empty());
  flight.Clear();
}

}  // namespace
}  // namespace ppm::core

// baseline_test.cc — the rexec-style and centralized baselines, including
// the functional gaps the paper holds against them.
#include <gtest/gtest.h>

#include "baseline/central.h"
#include "baseline/rexec.h"
#include "core/cluster.h"
#include "tests/test_util.h"

namespace ppm::baseline {
namespace {

using core::Cluster;
using test::InstallTestUser;
using test::kTestUid;
using test::kTestUser;
using test::RunUntil;

class RexecTest : public ::testing::Test {
 protected:
  RexecTest() {
    cluster_.AddHost("alpha");
    cluster_.AddHost("beta");
    cluster_.Link("alpha", "beta");
    InstallTestUser(cluster_);
    StartRexecd(cluster_.host("alpha"));
    StartRexecd(cluster_.host("beta"));
    cluster_.RunFor(sim::Millis(10));
  }
  Cluster cluster_;
};

TEST_F(RexecTest, SpawnRemoteProcess) {
  std::optional<RexecResult> result;
  RexecSpawn(cluster_.host("alpha"), "beta", kTestUser, "job",
             [&](const RexecResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_TRUE(result->ok) << result->error;
  const host::Process* proc = cluster_.host("beta").kernel().Find(result->pid);
  ASSERT_NE(proc, nullptr);
  EXPECT_TRUE(proc->alive());
  EXPECT_EQ(proc->uid, kTestUid);
}

TEST_F(RexecTest, SignalNamedPid) {
  std::optional<RexecResult> spawned;
  RexecSpawn(cluster_.host("alpha"), "beta", kTestUser, "job",
             [&](const RexecResult& r) { spawned = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return spawned.has_value(); }));
  std::optional<RexecResult> signalled;
  RexecSignal(cluster_.host("alpha"), "beta", kTestUser, spawned->pid,
              host::Signal::kSigKill, [&](const RexecResult& r) { signalled = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return signalled.has_value(); }));
  EXPECT_TRUE(signalled->ok);
  EXPECT_FALSE(cluster_.host("beta").kernel().Find(spawned->pid)->alive());
}

TEST_F(RexecTest, UnknownUserRejected) {
  std::optional<RexecResult> result;
  RexecSpawn(cluster_.host("alpha"), "beta", "ghost", "job",
             [&](const RexecResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  EXPECT_FALSE(result->ok);
}

TEST_F(RexecTest, ChildrenOfRemoteProcessAreUnreachable) {
  // The paper's indictment: rexec cannot separately signal the children
  // of the remote process; killing the parent strands them.
  std::optional<RexecResult> spawned;
  RexecSpawn(cluster_.host("alpha"), "beta", kTestUser, "parent",
             [&](const RexecResult& r) { spawned = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return spawned.has_value(); }));
  // The remote process forks twice.
  host::Kernel& kernel = cluster_.host("beta").kernel();
  host::Pid c1 = kernel.Spawn(spawned->pid, kTestUid, "kid1");
  host::Pid c2 = kernel.Spawn(spawned->pid, kTestUid, "kid2");
  // The caller kills the only pid it knows.
  std::optional<RexecResult> signalled;
  RexecSignal(cluster_.host("alpha"), "beta", kTestUser, spawned->pid,
              host::Signal::kSigKill, [&](const RexecResult& r) { signalled = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return signalled.has_value(); }));
  EXPECT_FALSE(kernel.Find(spawned->pid)->alive());
  // Orphans live on: there is no genealogy to hunt them with.
  EXPECT_TRUE(kernel.Find(c1)->alive());
  EXPECT_TRUE(kernel.Find(c2)->alive());
}

TEST_F(RexecTest, UnreachableHostFailsCleanly) {
  cluster_.network().SetLinkUp(cluster_.host("alpha").net_id(),
                               cluster_.host("beta").net_id(), false);
  std::optional<RexecResult> result;
  RexecSpawn(cluster_.host("alpha"), "beta", kTestUser, "job",
             [&](const RexecResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }, sim::Seconds(10)));
  EXPECT_FALSE(result->ok);
}

class CentralTest : public ::testing::Test {
 protected:
  CentralTest() {
    cluster_.AddHost("hub");
    cluster_.AddHost("n1");
    cluster_.AddHost("n2");
    cluster_.Ethernet({"hub", "n1", "n2"});
    InstallTestUser(cluster_);
    StartCentralManager(cluster_.host("hub"));
    for (const char* n : {"hub", "n1", "n2"}) StartCentralAgent(cluster_.host(n));
    cluster_.RunFor(sim::Millis(10));
  }

  CentralResult Spawn(const std::string& target, const std::string& cmd) {
    std::optional<CentralResult> result;
    CentralSpawn(cluster_.host("n1"), "hub", target, kTestUser, cmd,
                 [&](const CentralResult& r) { result = r; });
    EXPECT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
    return result.value_or(CentralResult{});
  }

  Cluster cluster_;
};

TEST_F(CentralTest, SpawnThroughManager) {
  CentralResult r = Spawn("n2", "job");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.host, "n2");
  EXPECT_TRUE(cluster_.host("n2").kernel().Find(r.pid)->alive());
}

TEST_F(CentralTest, RegistryTracksEveryCreation) {
  Spawn("n1", "a");
  Spawn("n2", "b");
  Spawn("hub", "c");
  std::optional<CentralResult> snap;
  CentralSnapshot(cluster_.host("n2"), "hub", kTestUser,
                  [&](const CentralResult& r) { snap = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return snap.has_value(); }));
  ASSERT_TRUE(snap->ok);
  EXPECT_EQ(snap->entries.size(), 3u);
}

TEST_F(CentralTest, SignalThroughManager) {
  CentralResult spawned = Spawn("n2", "victim");
  ASSERT_TRUE(spawned.ok);
  std::optional<CentralResult> sig;
  CentralSignal(cluster_.host("n1"), "hub", "n2", spawned.pid, kTestUser,
                host::Signal::kSigKill, [&](const CentralResult& r) { sig = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return sig.has_value(); }));
  EXPECT_TRUE(sig->ok);
  EXPECT_FALSE(cluster_.host("n2").kernel().Find(spawned.pid)->alive());
}

TEST_F(CentralTest, ManagerSerializesRequests) {
  // Fire many requests at once: the single omniscient site must queue
  // them, so observed queueing delay grows.
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    CentralSpawn(cluster_.host("n1"), "hub", "n2", kTestUser, "w" + std::to_string(i),
                 [&](const CentralResult&) { ++done; });
  }
  ASSERT_TRUE(RunUntil(cluster_, [&] { return done == 20; }, sim::Seconds(60)));
  // Find the manager body to read its queue statistics.
  host::Host& hub = cluster_.host("hub");
  CentralManager* mgr = nullptr;
  for (host::Pid p : hub.kernel().AllPids()) {
    host::Process* proc = hub.kernel().Find(p);
    if (proc && proc->alive() && proc->command == "central-mgr") {
      mgr = dynamic_cast<CentralManager*>(proc->body.get());
    }
  }
  ASSERT_NE(mgr, nullptr);
  EXPECT_EQ(mgr->requests_served(), 20u);
  EXPECT_GT(mgr->max_queue_delay(), 0);
  EXPECT_EQ(mgr->registry_size(), 20u);
}

TEST_F(CentralTest, ManagerCrashKillsTheWholeFacility) {
  // The centralized design's availability story: no manager, no service —
  // unlike per-host LPMs, which keep administering their own hosts.
  Spawn("n2", "job");
  cluster_.Crash("hub");
  cluster_.RunFor(sim::Seconds(1));
  std::optional<CentralResult> result;
  CentralSpawn(cluster_.host("n1"), "hub", "n2", kTestUser, "another",
               [&](const CentralResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }, sim::Seconds(10)));
  EXPECT_FALSE(result->ok);
}

}  // namespace
}  // namespace ppm::baseline

// lpm_edge_test.cc — edge cases and adversarial paths of the LPM:
// handler pool saturation, partial snapshots, in-flight failures,
// multi-user isolation, token rotation, concurrent circuit setup.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/lpm.h"
#include "tests/test_util.h"
#include "tools/client.h"

namespace ppm::core {
namespace {

using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::kTestUser;
using test::RunUntil;
using tools::PpmClient;

TEST(LpmEdge, HandlerPoolSaturationQueuesAndDrains) {
  ClusterConfig config;
  config.lpm.max_handlers = 2;  // tiny pool
  Cluster cluster(config);
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);

  int done = 0;
  for (int i = 0; i < 12; ++i) {
    client->CreateProcess(
        "solo", "w" + std::to_string(i), {}, [&](const CreateResp& r) {
          EXPECT_TRUE(r.ok);
          ++done;
        },
        /*initially_running=*/false);
  }
  ASSERT_TRUE(RunUntil(cluster, [&] { return done == 12; }, sim::Seconds(60)));
  Lpm* lpm = cluster.FindLpm("solo", kTestUid);
  ASSERT_NE(lpm, nullptr);
  // The pool never grew past its bound; the excess queued.
  EXPECT_LE(lpm->stats().handlers_created, 2u);
  EXPECT_EQ(lpm->handler_count(), lpm->stats().handlers_created);
  // Every request was eventually served: twelve adopted processes exist.
  EXPECT_EQ(lpm->adopted_live_count(), 12u);
}

TEST(LpmEdge, SnapshotTimeoutReturnsPartialResults) {
  ClusterConfig config;
  config.lpm.snapshot_timeout = sim::Seconds(3);
  Cluster cluster(config);
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.AddHost("c");
  cluster.Ethernet({"a", "b", "c"});
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "a");
  ASSERT_NE(client, nullptr);
  std::optional<CreateResp> c1, c2;
  client->CreateProcess("b", "w1", {}, [&](const CreateResp& r) { c1 = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return c1.has_value(); }));
  client->CreateProcess("c", "w2", {}, [&](const CreateResp& r) { c2 = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return c2.has_value(); }));

  // Cut c off *without* breaking circuits immediately: make the loss
  // undetectable until after flood time by crashing c right as the
  // snapshot starts.
  std::optional<SnapshotResp> snap;
  client->Snapshot([&](const SnapshotResp& r) { snap = r; });
  cluster.Crash("c");
  ASSERT_TRUE(RunUntil(cluster, [&] { return snap.has_value(); }, sim::Seconds(30)));
  // b answered; c could not.  Partial results, not a hang.
  bool saw_b = false, saw_c = false;
  for (const auto& rec : snap->records) {
    if (rec.gpid.host == "b") saw_b = true;
    if (rec.gpid.host == "c") saw_c = true;
  }
  EXPECT_TRUE(saw_b);
  EXPECT_FALSE(saw_c);
}

TEST(LpmEdge, InFlightRequestFailsWhenChannelBreaks) {
  Cluster cluster;
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.Link("a", "b");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "a");
  ASSERT_NE(client, nullptr);
  std::optional<CreateResp> created;
  client->CreateProcess("b", "w", {}, [&](const CreateResp& r) { created = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return created.has_value(); }));

  // Issue a signal and kill the target host while the request is on the
  // wire: the handler's pending entry must fail, not leak.
  std::optional<SignalResp> sig;
  client->Signal(created->gpid, host::Signal::kSigStop,
                 [&](const SignalResp& r) { sig = r; });
  cluster.RunFor(sim::Millis(30));  // request is in flight now
  cluster.Crash("b");
  ASSERT_TRUE(RunUntil(cluster, [&] { return sig.has_value(); }, sim::Seconds(30)));
  EXPECT_FALSE(sig->ok);
  EXPECT_FALSE(sig->error.empty());
}

TEST(LpmEdge, ToolDisconnectWithOutstandingRequestIsSafe) {
  Cluster cluster;
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.Link("a", "b");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "a");
  ASSERT_NE(client, nullptr);
  bool callback_ran = false;
  client->CreateProcess("b", "w", {}, [&](const CreateResp&) { callback_ran = true; });
  cluster.RunFor(sim::Millis(20));
  client->Disconnect();  // fails the pending locally
  EXPECT_TRUE(callback_ran);
  // The LPM keeps running and remains usable from a new tool.
  cluster.RunFor(sim::Seconds(2));
  PpmClient* again = ConnectTool(cluster, "a", "second");
  ASSERT_NE(again, nullptr);
  std::optional<SnapshotResp> snap;
  again->Snapshot([&](const SnapshotResp& r) { snap = r; });
  EXPECT_TRUE(RunUntil(cluster, [&] { return snap.has_value(); }, sim::Seconds(60)));
}

TEST(LpmEdge, TwoToolsShareOneLpm) {
  Cluster cluster;
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* t1 = ConnectTool(cluster, "solo", "one");
  PpmClient* t2 = ConnectTool(cluster, "solo", "two");
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  Lpm* lpm = cluster.FindLpm("solo", kTestUid);
  ASSERT_NE(lpm, nullptr);
  EXPECT_EQ(lpm->Endpoints().tool_circuits, 2u);

  // A process created by tool 1 is visible to tool 2.
  std::optional<CreateResp> created;
  t1->CreateProcess("solo", "shared", {}, [&](const CreateResp& r) { created = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return created.has_value(); }));
  std::optional<SnapshotResp> snap;
  t2->Snapshot([&](const SnapshotResp& r) { snap = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return snap.has_value(); }));
  ASSERT_EQ(snap->records.size(), 1u);
  EXPECT_EQ(snap->records[0].command, "shared");
}

TEST(LpmEdge, UsersAreIsolated) {
  Cluster cluster;
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.Link("a", "b");
  InstallTestUser(cluster);
  cluster.AddUserEverywhere("eve", 200);
  cluster.TrustUserEverywhere("eve", 200);
  cluster.RunFor(sim::Millis(10));

  PpmClient* leslie = ConnectTool(cluster, "a");
  ASSERT_NE(leslie, nullptr);
  PpmClient* eve = tools::SpawnTool(cluster.host("a"), "eve", 200, "evetool");
  bool up = false;
  eve->Start([&](bool ok, std::string) { up = ok; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return up; }));

  // Two separate LPMs on the same host.
  Lpm* lpm_leslie = cluster.FindLpm("a", kTestUid);
  Lpm* lpm_eve = cluster.FindLpm("a", 200);
  ASSERT_NE(lpm_leslie, nullptr);
  ASSERT_NE(lpm_eve, nullptr);
  EXPECT_NE(lpm_leslie, lpm_eve);
  EXPECT_NE(lpm_leslie->accept_addr().port, lpm_eve->accept_addr().port);

  std::optional<CreateResp> lw, ew;
  leslie->CreateProcess("b", "leslie-w", {}, [&](const CreateResp& r) { lw = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return lw.has_value(); }));
  eve->CreateProcess("b", "eve-w", {}, [&](const CreateResp& r) { ew = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return ew.has_value(); }));
  ASSERT_TRUE(ew->ok);

  // Eve's snapshot sees only eve's process.
  std::optional<SnapshotResp> snap;
  eve->Snapshot([&](const SnapshotResp& r) { snap = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return snap.has_value(); }));
  ASSERT_EQ(snap->records.size(), 1u);
  EXPECT_EQ(snap->records[0].command, "eve-w");

  // Eve cannot signal leslie's process: her LPM posts with her uid and
  // the kernel refuses.
  std::optional<SignalResp> sig;
  eve->Signal(lw->gpid, host::Signal::kSigKill, [&](const SignalResp& r) { sig = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return sig.has_value(); }));
  EXPECT_FALSE(sig->ok);
  EXPECT_TRUE(cluster.host("b").kernel().Find(lw->gpid.pid)->alive());
}

TEST(LpmEdge, TokenRotatesAcrossLpmGenerations) {
  Cluster cluster;
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);
  Lpm* first = cluster.FindLpm("solo", kTestUid);
  ASSERT_NE(first, nullptr);
  uint64_t old_token = first->token();

  // Kill the LPM; a new session creates a fresh one.
  cluster.host("solo").kernel().PostSignal(first->pid(), host::Signal::kSigKill,
                                           host::kRootUid);
  cluster.RunFor(sim::Seconds(1));
  PpmClient* again = ConnectTool(cluster, "solo", "relogin");
  ASSERT_NE(again, nullptr);
  Lpm* second = cluster.FindLpm("solo", kTestUid);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second, first);
  // A captured old token is useless against the new manager.
  EXPECT_NE(second->token(), old_token);
}

TEST(LpmEdge, ConcurrentSiblingSetupYieldsOneCircuit) {
  Cluster cluster;
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.Link("a", "b");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "a");
  ASSERT_NE(client, nullptr);
  // Two creations to the same cold host in the same instant: the second
  // must wait for the first's Figure-2 setup, not run its own.
  std::optional<CreateResp> r1, r2;
  client->CreateProcess("b", "w1", {}, [&](const CreateResp& r) { r1 = r; });
  client->CreateProcess("b", "w2", {}, [&](const CreateResp& r) { r2 = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return r1.has_value() && r2.has_value(); }));
  EXPECT_TRUE(r1->ok && r2->ok);
  Lpm* a = cluster.FindLpm("a", kTestUid);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->sibling_hosts().size(), 1u);
  daemon::Pmd* pmd = cluster.FindPmd("b");
  ASSERT_NE(pmd, nullptr);
  EXPECT_EQ(pmd->stats().lpms_created, 1u);
}

TEST(LpmEdge, GracefulSigtermExitDoesNotTriggerSiblingRecovery) {
  Cluster cluster;
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.Link("a", "b");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "a");
  ASSERT_NE(client, nullptr);
  std::optional<CreateResp> created;
  client->CreateProcess("b", "w", {}, [&](const CreateResp& r) { created = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return created.has_value(); }));
  Lpm* a = cluster.FindLpm("a", kTestUid);
  Lpm* b = cluster.FindLpm("b", kTestUid);
  ASSERT_NE(b, nullptr);

  // Politely terminate b's LPM (it catches SIGTERM and exits cleanly).
  cluster.host("b").kernel().PostSignal(b->pid(), host::Signal::kSigTerm,
                                        host::kRootUid);
  cluster.RunFor(sim::Seconds(2));
  EXPECT_EQ(cluster.FindLpm("b", kTestUid), nullptr);
  // Peer saw a graceful close: no failure detected, no recovery.
  EXPECT_EQ(a->stats().failures_detected, 0u);
  EXPECT_EQ(a->stats().recoveries_started, 0u);
  EXPECT_TRUE(a->sibling_hosts().empty());
  // And b's pmd registry entry is gone.
  daemon::Pmd* pmd = cluster.FindPmd("b");
  ASSERT_NE(pmd, nullptr);
  EXPECT_EQ(pmd->registry_size(), 0u);
}

TEST(LpmEdge, EventLogCapacityIsBounded) {
  ClusterConfig config;
  config.lpm.event_log_capacity = 16;
  Cluster cluster(config);
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);
  std::optional<CreateResp> created;
  client->CreateProcess("solo", "busy", {}, [&](const CreateResp& r) { created = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return created.has_value(); }));
  host::Kernel& kernel = cluster.host("solo").kernel();
  for (int i = 0; i < 100; ++i) {
    int fd = kernel.OpenFileFor(created->gpid.pid, "/tmp/spam", "w");
    kernel.CloseFileFor(created->gpid.pid, fd);
  }
  cluster.RunFor(sim::Seconds(5));
  Lpm* lpm = cluster.FindLpm("solo", kTestUid);
  ASSERT_NE(lpm, nullptr);
  EXPECT_LE(lpm->event_log().size(), 16u);
  EXPECT_GT(lpm->event_log().total_recorded(), 100u);
  // Queries still work and return the newest events.
  std::optional<HistoryResp> hist;
  client->History("", host::kNoPid, 0, [&](const HistoryResp& r) { hist = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return hist.has_value(); }));
  EXPECT_LE(hist->events.size(), 16u);
}

TEST(LpmEdge, SecondCircuitReusedNotRebuilt) {
  Cluster cluster;
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.Link("a", "b");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "a");
  ASSERT_NE(client, nullptr);
  std::optional<CreateResp> r1;
  client->CreateProcess("b", "w1", {}, [&](const CreateResp& r) { r1 = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return r1.has_value(); }));
  uint64_t conns_after_first = cluster.network().stats().conns_opened;
  std::optional<CreateResp> r2;
  client->CreateProcess("b", "w2", {}, [&](const CreateResp& r) { r2 = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return r2.has_value(); }));
  // No new circuits: neither to inetd nor a second sibling channel.
  EXPECT_EQ(cluster.network().stats().conns_opened, conns_after_first);
}


TEST(LpmEdge, KilledHandlerIsPrunedAndReplaced) {
  Cluster cluster;
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);
  std::optional<CreateResp> first;
  client->CreateProcess("solo", "w1", {}, [&](const CreateResp& r) { first = r; },
                        false);
  ASSERT_TRUE(RunUntil(cluster, [&] { return first.has_value(); }));

  // Murder the handler process (it belongs to the user, so the user can).
  host::Kernel& kernel = cluster.host("solo").kernel();
  Lpm* lpm = cluster.FindLpm("solo", kTestUid);
  ASSERT_NE(lpm, nullptr);
  host::Pid handler_pid = host::kNoPid;
  for (host::Pid p : kernel.ProcessesOf(kTestUid)) {
    if (kernel.Find(p)->command == "lpm-handler") handler_pid = p;
  }
  ASSERT_NE(handler_pid, host::kNoPid);
  kernel.PostSignal(handler_pid, host::Signal::kSigKill, kTestUid);
  cluster.RunFor(sim::Millis(100));

  // The manager forks a replacement and keeps serving.
  std::optional<CreateResp> second;
  client->CreateProcess("solo", "w2", {}, [&](const CreateResp& r) { second = r; },
                        false);
  ASSERT_TRUE(RunUntil(cluster, [&] { return second.has_value(); }));
  EXPECT_TRUE(second->ok);
  EXPECT_EQ(lpm->stats().handlers_created, 2u);
  EXPECT_EQ(lpm->handler_count(), 1u);  // the corpse was pruned
}

TEST(LpmEdge, CcsTtlFrozenWhileSiblingsExist) {
  // Paper Section 5: "For the CCS, the time-to-live interval has a
  // different meaning: as long as there is any sibling LPM in the
  // networked system, time-to-live is not decremented."
  ClusterConfig config;
  config.lpm.time_to_live = sim::Seconds(20);
  Cluster cluster(config);
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.Link("a", "b");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "a");
  ASSERT_NE(client, nullptr);
  // One remote worker: the CCS on a has no local processes, only the
  // sibling channel to b.
  std::optional<CreateResp> created;
  client->CreateProcess("b", "w", {}, [&](const CreateResp& r) { created = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return created.has_value(); }));
  client->Disconnect();
  cluster.RunFor(sim::Seconds(60));
  // Far past the TTL, yet the CCS must still be there: a sibling exists.
  Lpm* a = cluster.FindLpm("a", kTestUid);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->is_ccs());

  // Kill the remote worker; b's LPM expires, closes the channel, and only
  // then does the CCS countdown start.
  cluster.host("b").kernel().PostSignal(created->gpid.pid, host::Signal::kSigKill,
                                        kTestUid);
  ASSERT_TRUE(RunUntil(cluster,
                       [&] { return cluster.FindLpm("b", kTestUid) == nullptr; },
                       sim::Seconds(60)));
  ASSERT_TRUE(RunUntil(cluster,
                       [&] { return cluster.FindLpm("a", kTestUid) == nullptr; },
                       sim::Seconds(60)));
}

}  // namespace
}  // namespace ppm::core


// cluster_test.cc — the world-builder helpers.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/recovery.h"
#include "tests/test_util.h"

namespace ppm::core {
namespace {

TEST(ClusterTest, HostsAndLookup) {
  Cluster cluster;
  cluster.AddHost("a", host::HostType::kVax780);
  cluster.AddHost("b", host::HostType::kSun2);
  EXPECT_TRUE(cluster.HasHost("a"));
  EXPECT_FALSE(cluster.HasHost("zebra"));
  EXPECT_EQ(cluster.host_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(cluster.host("b").type(), host::HostType::kSun2);
  EXPECT_EQ(cluster.network().host_count(), 2u);
}

TEST(ClusterTest, EthernetIsAllPairs) {
  Cluster cluster;
  for (const char* n : {"a", "b", "c", "d"}) cluster.AddHost(n);
  cluster.Ethernet({"a", "b", "c", "d"});
  for (const char* x : {"a", "b", "c", "d"}) {
    for (const char* y : {"a", "b", "c", "d"}) {
      if (std::string(x) == y) continue;
      EXPECT_EQ(cluster.network().HopDistance(*cluster.network().FindHost(x),
                                              *cluster.network().FindHost(y)),
                1u)
          << x << "-" << y;
    }
  }
}

TEST(ClusterTest, TrustWritesRhostsEverywhere) {
  Cluster cluster;
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.AddUserEverywhere("u", 42);
  cluster.TrustUserEverywhere("u", 42);
  for (const char* h : {"a", "b"}) {
    auto rhosts = cluster.host(h).fs().Read(42, ".rhosts");
    ASSERT_TRUE(rhosts.has_value()) << h;
    EXPECT_NE(rhosts->find("a u"), std::string::npos);
    EXPECT_NE(rhosts->find("b u"), std::string::npos);
  }
}

TEST(ClusterTest, RecoveryListWrittenEverywhere) {
  Cluster cluster;
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.AddUserEverywhere("u", 42);
  cluster.SetRecoveryList(42, {"b", "a"});
  for (const char* h : {"a", "b"}) {
    RecoveryList list = ReadRecoveryList(cluster.host(h).fs(), 42);
    EXPECT_EQ(list.hosts, (std::vector<std::string>{"b", "a"}));
  }
}

TEST(ClusterTest, ConflictingAccountPanics) {
  Cluster cluster;
  cluster.AddHost("a");
  cluster.AddUserEverywhere("u", 42);
  EXPECT_DEATH(cluster.AddUserEverywhere("u", 43), "conflicting account");
}

TEST(ClusterTest, FindersReturnNullWhenAbsent) {
  Cluster cluster;
  cluster.AddHost("a");
  cluster.RunFor(sim::Millis(10));
  EXPECT_EQ(cluster.FindPmd("a"), nullptr);        // on demand
  EXPECT_EQ(cluster.FindLpm("a", 42), nullptr);
  EXPECT_NE(cluster.FindInetd("a"), nullptr);      // boot-started
  cluster.Crash("a");
  EXPECT_EQ(cluster.FindInetd("a"), nullptr);      // host down
}

TEST(ClusterTest, DeterministicAcrossRuns) {
  auto run = [] {
    core::ClusterConfig config;
    config.seed = 99;
    Cluster cluster(config);
    cluster.AddHost("a");
    cluster.AddHost("b");
    cluster.Link("a", "b");
    test::InstallTestUser(cluster);
    cluster.RunFor(sim::Millis(10));
    tools::PpmClient* client = test::ConnectTool(cluster, "a");
    if (!client) return std::string("fail");
    std::optional<CreateResp> created;
    client->CreateProcess("b", "w", {}, [&](const CreateResp& r) { created = r; });
    test::RunUntil(cluster, [&] { return created.has_value(); });
    return ToString(created->gpid) + "@" + std::to_string(cluster.simulator().Now());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ppm::core

// obs_test.cc — the observability layer: metrics registry semantics,
// log-linear histogram bucketing, JSON dump round-trips, the tracer,
// the trace exporters, and — the integration piece — causal trace
// propagation across a two-hop snapshot broadcast, where the recorded
// span tree must reconstruct the covering-graph route the flood
// actually travelled.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <limits>

#include "core/wire.h"
#include "obs/flight.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/test_util.h"
#include "tools/trace_export.h"

namespace ppm {
namespace {

using obs::Histogram;
using obs::Registry;
using obs::SpanRecord;
using obs::TraceContext;
using obs::Tracer;

// --- Registry --------------------------------------------------------

TEST(RegistryTest, HandlesAreStableAndSharedByName) {
  Registry& reg = Registry::Instance();
  obs::Counter* a = reg.GetCounter("test.reg.counter");
  obs::Counter* b = reg.GetCounter("test.reg.counter");
  EXPECT_EQ(a, b);
  a->Inc();
  a->Inc(4);
  EXPECT_EQ(b->value(), 5u);
  EXPECT_EQ(reg.FindCounter("test.reg.counter"), a);
  EXPECT_EQ(reg.FindCounter("test.reg.absent"), nullptr);
}

TEST(RegistryTest, ResetZeroesValuesButKeepsHandlesValid) {
  Registry& reg = Registry::Instance();
  obs::Counter* c = reg.GetCounter("test.reset.counter");
  obs::Gauge* g = reg.GetGauge("test.reset.gauge");
  Histogram* h = reg.GetHistogram("test.reset.hist");
  c->Inc(7);
  g->Set(3.5);
  h->Observe(12);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  // The handle survives the reset and keeps working.
  c->Inc();
  EXPECT_EQ(reg.FindCounter("test.reset.counter")->value(), 1u);
}

TEST(RegistryTest, GaugeSetAndAdd) {
  obs::Gauge* g = Registry::Instance().GetGauge("test.gauge.setadd");
  g->Set(10);
  g->Add(-2.5);
  EXPECT_DOUBLE_EQ(g->value(), 7.5);
}

// --- Histogram bucketing ---------------------------------------------

TEST(HistogramTest, BucketIndexMatchesLogLinearScheme) {
  // Decade 0 starts at index (0 - kMinDecade) * 9 = 27; lower bound is
  // digit * 10^decade.
  EXPECT_EQ(Histogram::BucketIndex(1.0), 27);
  EXPECT_EQ(Histogram::BucketIndex(5.5), 31);
  EXPECT_EQ(Histogram::BucketIndex(9.99), 35);
  EXPECT_EQ(Histogram::BucketIndex(10.0), 36);
  EXPECT_EQ(Histogram::BucketIndex(0.001), 0);  // first bucket
  // Out-of-range values clamp; non-positive go to underflow.
  EXPECT_EQ(Histogram::BucketIndex(1e-7), 0);
  EXPECT_EQ(Histogram::BucketIndex(9e12), Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::BucketIndex(0), -1);
  EXPECT_EQ(Histogram::BucketIndex(-3), -1);

  Histogram::Bucket b = Histogram::BucketBounds(31);
  EXPECT_DOUBLE_EQ(b.lo, 5.0);
  EXPECT_DOUBLE_EQ(b.hi, 6.0);
  // Digit-9 buckets roll over into the next decade.
  Histogram::Bucket top = Histogram::BucketBounds(35);
  EXPECT_DOUBLE_EQ(top.lo, 9.0);
  EXPECT_DOUBLE_EQ(top.hi, 10.0);
}

TEST(HistogramTest, ObserveTracksStatsAndPercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Observe(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Percentile returns the lower edge of the covering bucket.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 90.0);  // 99th obs is 99 -> bucket [90,100)
  h.Observe(0);
  h.Observe(-1);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.count(), 102u);

  // Every non-zero bucket's count sums back to the non-underflow total.
  uint64_t total = 0;
  for (const auto& bucket : h.NonZeroBuckets()) total += bucket.count;
  EXPECT_EQ(total, 100u);
}

TEST(HistogramTest, OverflowCountsSymmetricWithUnderflow) {
  Histogram h;
  // The top bucket is [9e12, 1e13): a value inside it is a regular
  // observation, a value at or past its upper edge is overflow.
  h.Observe(9e12);
  EXPECT_EQ(h.overflow(), 0u);
  h.Observe(1e13);
  h.Observe(5e14);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.count(), 3u);
  // Overflow observations still feed the summary stats...
  EXPECT_DOUBLE_EQ(h.max(), 5e14);
  // ...but not the buckets; the percentile lower bound past the buckets
  // is the observed max.
  uint64_t bucketed = 0;
  for (const auto& bucket : h.NonZeroBuckets()) bucketed += bucket.count;
  EXPECT_EQ(bucketed, 1u);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 5e14);

  // The dump carries overflow symmetric with underflow.
  Registry& reg = Registry::Instance();
  reg.Reset();
  reg.GetHistogram("test.overflow.hist")->Observe(2e13);
  auto parsed = obs::json::Parse(reg.DumpJson());
  ASSERT_TRUE(parsed.has_value());
  const obs::json::Value* hv = parsed->Find("histograms")->Find("test.overflow.hist");
  ASSERT_NE(hv, nullptr);
  ASSERT_NE(hv->Find("overflow"), nullptr);
  EXPECT_DOUBLE_EQ(hv->Find("overflow")->number, 1);
  EXPECT_DOUBLE_EQ(hv->Find("underflow")->number, 0);
}

// --- JSON dump round-trip --------------------------------------------

TEST(RegistryTest, DumpJsonRoundTrips) {
  Registry& reg = Registry::Instance();
  reg.Reset();
  reg.GetCounter("test.dump.counter")->Inc(42);
  reg.GetGauge("test.dump.gauge")->Set(2.25);
  Histogram* h = reg.GetHistogram("test.dump.hist");
  h->Observe(3);
  h->Observe(30);

  auto parsed = obs::json::Parse(reg.DumpJson());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());

  const obs::json::Value* counters = parsed->Find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::json::Value* c = counters->Find("test.dump.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->number, 42);

  const obs::json::Value* gauges = parsed->Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("test.dump.gauge")->number, 2.25);

  const obs::json::Value* hists = parsed->Find("histograms");
  ASSERT_NE(hists, nullptr);
  const obs::json::Value* hv = hists->Find("test.dump.hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_DOUBLE_EQ(hv->Find("count")->number, 2);
  EXPECT_DOUBLE_EQ(hv->Find("sum")->number, 33);
  const obs::json::Value* buckets = hv->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->arr.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets->arr[0].Find("lo")->number, 3.0);
  EXPECT_DOUBLE_EQ(buckets->arr[1].Find("n")->number, 1);
}

TEST(JsonTest, ParsesEscapesAndNesting) {
  auto v = obs::json::Parse(R"({"a":[1,true,null,"x\n\"y\\z"],"b":{"c":-2.5e1}})");
  ASSERT_TRUE(v.has_value());
  const obs::json::Value* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->arr.size(), 4u);
  EXPECT_DOUBLE_EQ(a->arr[0].number, 1);
  EXPECT_TRUE(a->arr[1].boolean);
  EXPECT_EQ(a->arr[2].type, obs::json::Value::Type::kNull);
  EXPECT_EQ(a->arr[3].str, "x\n\"y\\z");
  EXPECT_DOUBLE_EQ(v->Find("b")->Find("c")->number, -25);
}

TEST(JsonTest, RejectsSyntaxErrorsAndTrailingGarbage) {
  EXPECT_FALSE(obs::json::Parse("{").has_value());
  EXPECT_FALSE(obs::json::Parse("{\"a\":}").has_value());
  EXPECT_FALSE(obs::json::Parse("[1,]").has_value());
  EXPECT_FALSE(obs::json::Parse("123 garbage").has_value());
  EXPECT_FALSE(obs::json::Parse("\"unterminated").has_value());
  EXPECT_TRUE(obs::json::Parse(" 123 ").has_value());
}

// --- Tracer ----------------------------------------------------------

TEST(TracerTest, SpanLifecycleAndInvalidParentNoOp) {
  Tracer& tracer = Tracer::Instance();
  tracer.Clear();
  tracer.set_time_source(nullptr);

  TraceContext root = tracer.StartTrace("op", "hostX");
  ASSERT_TRUE(root.valid());
  EXPECT_EQ(root.parent_span, 0u);

  TraceContext hop = tracer.StartSpan(root, "op.hop", "hostX");
  ASSERT_TRUE(hop.valid());
  EXPECT_EQ(hop.trace_id, root.trace_id);
  EXPECT_EQ(hop.parent_span, root.span_id);
  tracer.RecordArrival(hop, "hostY");

  // An invalid parent yields an invalid child — call sites never branch.
  TraceContext none = tracer.StartSpan(TraceContext{}, "op.hop", "hostX");
  EXPECT_FALSE(none.valid());
  EXPECT_EQ(tracer.span_count(), 2u);

  std::vector<SpanRecord> spans = tracer.Trace(root.trace_id);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_TRUE(spans[0].arrived);  // root completes immediately
  EXPECT_EQ(spans[1].dst_host, "hostY");
  EXPECT_TRUE(spans[1].arrived);
}

TEST(TracerTest, BoundedStorageEvictsOldestButKeepsCounting) {
  Tracer& tracer = Tracer::Instance();
  tracer.Clear();
  tracer.set_capacity(4);
  for (int i = 0; i < 10; ++i) tracer.StartTrace("op", "h");
  EXPECT_EQ(tracer.span_count(), 4u);
  EXPECT_EQ(tracer.spans_dropped(), 6u);
  tracer.set_capacity(65536);
  tracer.Clear();
}

// --- Wire trace header -----------------------------------------------

TEST(WireTraceTest, TracedFrameRoundTripsAndUntracedStaysIdentical) {
  core::Msg msg{core::SignalReq{9, {"vaxB", 12}, host::Signal::kSigStop}};
  std::vector<uint8_t> plain = core::Serialize(msg);
  // An invalid context must not change the encoding at all.
  EXPECT_EQ(core::Serialize(msg, TraceContext{}), plain);

  TraceContext ctx{0x1111, 0x2222, 0x3333};
  std::vector<uint8_t> traced = core::Serialize(msg, ctx);
  EXPECT_GT(traced.size(), plain.size());

  TraceContext out;
  auto parsed = core::Parse(traced, &out);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(out.trace_id, ctx.trace_id);
  EXPECT_EQ(out.span_id, ctx.span_id);
  EXPECT_EQ(out.parent_span, ctx.parent_span);
  // A receiver that ignores tracing still parses the message.
  EXPECT_TRUE(core::Parse(traced).has_value());
  // And an untraced frame leaves the output context invalid.
  TraceContext untouched;
  EXPECT_TRUE(core::Parse(plain, &untouched).has_value());
  EXPECT_FALSE(untouched.valid());
}

// --- Trace exporters -------------------------------------------------

std::vector<SpanRecord> SyntheticTrace() {
  SpanRecord root;
  root.trace_id = 1;
  root.span_id = 1;
  root.name = "snapshot";
  root.src_host = "root";
  root.arrived = true;
  SpanRecord hop;
  hop.trace_id = 1;
  hop.span_id = 2;
  hop.parent_span = 1;
  hop.name = "snapshot.req";
  hop.src_host = "root";
  hop.dst_host = "hostA";
  hop.start_us = 1000;
  hop.end_us = 36000;
  hop.arrived = true;
  SpanRecord lost;
  lost.trace_id = 1;
  lost.span_id = 3;
  lost.parent_span = 2;
  lost.name = "snapshot.req";
  lost.src_host = "hostA";
  lost.start_us = 40000;
  return {root, hop, lost};
}

TEST(TraceExportTest, TimelineIndentsChildrenAndMarksInFlight) {
  std::string text = tools::RenderTraceTimeline(SyntheticTrace());
  EXPECT_NE(text.find("trace 1"), std::string::npos);
  EXPECT_NE(text.find("snapshot.req root -> hostA"), std::string::npos);
  EXPECT_NE(text.find("(in flight)"), std::string::npos);
  // The grandchild hop is indented deeper than its parent.
  size_t hop_pos = text.find("snapshot.req root");
  size_t lost_pos = text.find("snapshot.req [hostA]");
  ASSERT_NE(hop_pos, std::string::npos);
  ASSERT_NE(lost_pos, std::string::npos);
  EXPECT_LT(hop_pos, lost_pos);
}

TEST(TraceExportTest, DotNamesEverySpan) {
  std::string dot = tools::ExportTraceDot(SyntheticTrace());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("s1"), std::string::npos);
  EXPECT_NE(dot.find("s2 -> s3"), std::string::npos);
}

// --- Causal propagation across a two-hop snapshot ---------------------

// Builds root — hostA — hostB (sibling chain shaped by creation, as in
// the paper: a tool on each interior host creates the next host's
// processes), snapshots from root, and asserts the recorded span tree
// is exactly the covering-graph route of the flood and its replies.
TEST(TracePropagationTest, TwoHopSnapshotReconstructsCoveringGraphRoute) {
  Tracer& tracer = Tracer::Instance();
  tracer.Clear();

  core::Cluster cluster;
  cluster.AddHost("root");
  cluster.AddHost("hostA");
  cluster.AddHost("hostB");
  cluster.Link("root", "hostA");
  cluster.Link("hostA", "hostB");
  test::InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));

  tools::PpmClient* root_tool = test::ConnectTool(cluster, "root", "snapshot");
  ASSERT_NE(root_tool, nullptr);
  std::optional<core::CreateResp> created;
  root_tool->CreateProcess("hostA", "w1", {},
                           [&](const core::CreateResp& r) { created = r; }, false);
  ASSERT_TRUE(test::RunUntil(cluster, [&] { return created.has_value(); }));
  ASSERT_TRUE(created->ok);

  tools::PpmClient* spawner = test::ConnectTool(cluster, "hostA", "spawner");
  ASSERT_NE(spawner, nullptr);
  std::optional<core::CreateResp> created2;
  spawner->CreateProcess("hostB", "w2", {},
                         [&](const core::CreateResp& r) { created2 = r; }, false);
  ASSERT_TRUE(test::RunUntil(cluster, [&] { return created2.has_value(); }));
  ASSERT_TRUE(created2->ok);
  spawner->Disconnect();
  cluster.RunFor(sim::Seconds(1));

  std::optional<core::SnapshotResp> snap;
  root_tool->Snapshot([&](const core::SnapshotResp& r) { snap = r; });
  ASSERT_TRUE(test::RunUntil(cluster, [&] { return snap.has_value(); }));
  cluster.RunFor(sim::Millis(500));

  uint64_t tid = tracer.last_trace_id();
  ASSERT_NE(tid, 0u);
  std::vector<SpanRecord> spans = tracer.Trace(tid);
  ASSERT_FALSE(spans.empty());
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.trace_id, tid);
    if (s.arrived) {
      EXPECT_GE(s.end_us, s.start_us);
    }
  }

  auto find = [&](const std::string& name, const std::string& src,
                  const std::string& dst) -> const SpanRecord* {
    for (const SpanRecord& s : spans) {
      if (s.name == name && s.src_host == src && s.dst_host == dst) return &s;
    }
    return nullptr;
  };

  // The root span is the snapshot operation itself, opened (and closed)
  // at root — it represents the operation, not a hop.
  const SpanRecord* root_span = find("snapshot", "root", "root");
  ASSERT_NE(root_span, nullptr);
  EXPECT_EQ(root_span->parent_span, 0u);

  // The request flood: root -> hostA, then hostA -> hostB, each hop a
  // child of the hop that delivered the request — the covering graph.
  const SpanRecord* req_a = find("snapshot.req", "root", "hostA");
  ASSERT_NE(req_a, nullptr);
  EXPECT_EQ(req_a->parent_span, root_span->span_id);
  EXPECT_TRUE(req_a->arrived);

  const SpanRecord* req_b = find("snapshot.req", "hostA", "hostB");
  ASSERT_NE(req_b, nullptr);
  EXPECT_EQ(req_b->parent_span, req_a->span_id);
  EXPECT_TRUE(req_b->arrived);
  EXPECT_GE(req_b->start_us, req_a->end_us);  // causality in virtual time

  // The replies retrace the recorded route: hostA answers root directly;
  // hostB's reply goes to hostA and is relayed to root.
  const SpanRecord* resp_a = find("snapshot.resp", "hostA", "root");
  ASSERT_NE(resp_a, nullptr);
  EXPECT_EQ(resp_a->parent_span, req_a->span_id);

  const SpanRecord* resp_b = find("snapshot.resp", "hostB", "hostA");
  ASSERT_NE(resp_b, nullptr);
  EXPECT_EQ(resp_b->parent_span, req_b->span_id);

  const SpanRecord* relay = find("snapshot.resp.relay", "hostA", "root");
  ASSERT_NE(relay, nullptr);
  EXPECT_EQ(relay->parent_span, resp_b->span_id);

  // The exporter renders this real trace with every hop present.
  std::string text = tools::RenderTraceTimeline(spans);
  EXPECT_NE(text.find("snapshot.req hostA -> hostB"), std::string::npos);
  EXPECT_NE(text.find("snapshot.resp.relay hostA -> root"), std::string::npos);
}

// --- degenerate histogram JSON ---------------------------------------
//
// Empty histograms and single-sample quantiles used to emit NaN/inf,
// which is not JSON; the dump must parse whatever the histograms hold.

TEST(HistogramTest, EmptyHistogramDumpsValidJson) {
  Registry& reg = Registry::Instance();
  reg.Reset();
  reg.GetHistogram("test.empty.hist");  // created, never observed
  auto parsed = obs::json::Parse(reg.DumpJson());
  ASSERT_TRUE(parsed.has_value());
  const obs::json::Value* hv = parsed->Find("histograms")->Find("test.empty.hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_DOUBLE_EQ(hv->Find("count")->number, 0);
}

TEST(HistogramTest, SingleSampleQuantilesAreFinite) {
  Registry& reg = Registry::Instance();
  reg.Reset();
  reg.GetHistogram("test.single.hist")->Observe(7.5);
  auto parsed = obs::json::Parse(reg.DumpJson());
  ASSERT_TRUE(parsed.has_value());
  const obs::json::Value* hv = parsed->Find("histograms")->Find("test.single.hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_DOUBLE_EQ(hv->Find("count")->number, 1);
  EXPECT_DOUBLE_EQ(hv->Find("sum")->number, 7.5);
}

TEST(HistogramTest, NonFiniteObservationsCannotPoisonTheDump) {
  Registry& reg = Registry::Instance();
  reg.Reset();
  Histogram* h = reg.GetHistogram("test.nan.hist");
  h->Observe(std::numeric_limits<double>::quiet_NaN());
  h->Observe(std::numeric_limits<double>::infinity());
  h->Observe(-std::numeric_limits<double>::infinity());
  h->Observe(2.0);
  auto parsed = obs::json::Parse(reg.DumpJson());
  ASSERT_TRUE(parsed.has_value()) << reg.DumpJson();
  const obs::json::Value* hv = parsed->Find("histograms")->Find("test.nan.hist");
  ASSERT_NE(hv, nullptr);
  // All four observations counted; only the finite one contributes sum.
  EXPECT_DOUBLE_EQ(hv->Find("count")->number, 4);
  EXPECT_DOUBLE_EQ(hv->Find("sum")->number, 2.0);
}

// --- flight recorder -------------------------------------------------

TEST(FlightRecorderTest, RingWraparoundKeepsNewestInOrder) {
  obs::FlightRecorder& flight = obs::FlightRecorder::Instance();
  flight.Clear();
  flight.set_capacity(8);
  for (uint64_t i = 0; i < 20; ++i) {
    flight.Record(obs::FlightKind::kKernelEvent, "h", "e", 0, i);
  }
  EXPECT_EQ(flight.total_recorded(), 20u);
  EXPECT_EQ(flight.size(), 8u);
  std::vector<obs::FlightRecord> kept = flight.Snapshot();
  ASSERT_EQ(kept.size(), 8u);
  for (size_t i = 0; i < kept.size(); ++i) {
    // The newest 8 (a = 12..19), oldest first.
    EXPECT_EQ(kept[i].a, 12 + i);
  }
  flight.Clear();
  flight.set_capacity(256);  // restore the default for later tests
}

TEST(FlightRecorderTest, DumpReportsLossAndRetainsText) {
  obs::FlightRecorder& flight = obs::FlightRecorder::Instance();
  flight.Clear();
  flight.set_capacity(4);
  for (uint64_t i = 0; i < 6; ++i) {
    flight.Record(obs::FlightKind::kTimerFired, "vax", "ttl", 0, i);
  }
  std::string dump = flight.Dump("unit test");
  EXPECT_NE(dump.find("unit test"), std::string::npos);
  EXPECT_NE(dump.find("last 4 of 6"), std::string::npos);
  EXPECT_NE(dump.find("older records lost"), std::string::npos);
  EXPECT_EQ(flight.dump_count(), 1u);
  EXPECT_EQ(flight.last_dump(), dump);
  flight.Clear();
  flight.set_capacity(256);
}

TEST(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  obs::FlightRecorder& flight = obs::FlightRecorder::Instance();
  flight.Clear();
  flight.set_enabled(false);
  flight.Record(obs::FlightKind::kHostCrash, "vax", "");
  EXPECT_EQ(flight.total_recorded(), 0u);
  flight.set_enabled(true);
}

TEST(FlightRecorderTest, LongFieldsTruncateWithoutOverflow) {
  obs::FlightRecorder& flight = obs::FlightRecorder::Instance();
  flight.Clear();
  flight.Record(obs::FlightKind::kStateTransition,
                "a-very-long-host-name-indeed",
                "a-detail-string-much-longer-than-the-fixed-field");
  auto records = flight.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  // NUL-terminated truncation into the fixed fields.
  EXPECT_LT(std::string(records[0].host).size(), sizeof records[0].host);
  EXPECT_LT(std::string(records[0].detail).size(), sizeof records[0].detail);
  flight.Clear();
}

// --- timeline interleaving -------------------------------------------

TEST(TraceExportTest, TimelineWithFlightMergesByTimestamp) {
  SpanRecord span;
  span.trace_id = 9;
  span.span_id = 1;
  span.name = "stat.req";
  span.src_host = "a";
  span.dst_host = "b";
  span.start_us = 500;
  span.end_us = 900;
  span.arrived = true;

  obs::FlightRecord before, after;
  before.at_us = 100;
  before.kind = obs::FlightKind::kTimerFired;
  std::snprintf(before.host, sizeof before.host, "a");
  std::snprintf(before.detail, sizeof before.detail, "ttl");
  after.at_us = 700;
  after.kind = obs::FlightKind::kFrameRecv;
  std::snprintf(after.host, sizeof after.host, "b");

  std::string text = tools::RenderTimelineWithFlight({span}, {after, before});
  size_t timer_at = text.find("timer");
  size_t span_at = text.find("stat.req");
  size_t recv_at = text.find("frame.recv");
  ASSERT_NE(timer_at, std::string::npos);
  ASSERT_NE(span_at, std::string::npos);
  ASSERT_NE(recv_at, std::string::npos);
  EXPECT_LT(timer_at, span_at);
  EXPECT_LT(span_at, recv_at);
}

// --- health classification -------------------------------------------

TEST(HealthTest, QuietLpmClassifiesHealthy) {
  obs::LpmHealthInputs in;
  in.eventlog_recorded = 1000;
  in.requests = 50;
  in.bcasts_handled = 10;
  obs::HealthReport report = obs::ClassifyLpm(in);
  EXPECT_EQ(report.level, obs::HealthLevel::kHealthy);
  EXPECT_TRUE(report.reasons.empty());
}

TEST(HealthTest, EachThresholdTripsItsOwnReason) {
  obs::LpmHealthInputs in;
  in.eventlog_recorded = 1000;
  in.eventlog_dropped = 100;  // 10% > 1%
  obs::HealthReport r1 = obs::ClassifyLpm(in);
  EXPECT_EQ(r1.level, obs::HealthLevel::kDegraded);
  ASSERT_EQ(r1.reasons.size(), 1u);
  EXPECT_NE(r1.reasons[0].find("event log"), std::string::npos);

  in = {};
  in.bcasts_handled = 10;
  in.bcast_duplicates = 50;  // 5 dups per broadcast > 2
  EXPECT_NE(obs::ClassifyLpm(in).reasons[0].find("duplicate"), std::string::npos);

  in = {};
  in.requests = 10;
  in.request_timeouts = 5;  // 50% > 10%
  EXPECT_NE(obs::ClassifyLpm(in).reasons[0].find("timeout"), std::string::npos);

  in = {};
  in.handler_queue_depth = 9;  // > 8
  EXPECT_NE(obs::ClassifyLpm(in).reasons[0].find("backlog"), std::string::npos);

  in = {};
  in.journal_pending = 65;  // > 64
  EXPECT_NE(obs::ClassifyLpm(in).reasons[0].find("journal"), std::string::npos);
}

TEST(HealthTest, ThresholdsArePlainDataAndOverridable) {
  obs::LpmHealthInputs in;
  in.handler_queue_depth = 5;
  obs::HealthThresholds relaxed;
  relaxed.handler_queue_depth = 100;
  EXPECT_EQ(obs::ClassifyLpm(in, relaxed).level, obs::HealthLevel::kHealthy);
  obs::HealthThresholds strict;
  strict.handler_queue_depth = 4;
  EXPECT_EQ(obs::ClassifyLpm(in, strict).level, obs::HealthLevel::kDegraded);
}

// --- health monitor --------------------------------------------------

TEST(HealthMonitorTest, WatermarkKeepsMaximum) {
  obs::HealthMonitor& mon = obs::HealthMonitor::Instance();
  mon.Reset();
  mon.Watermark("test.depth", 3);
  mon.Watermark("test.depth", 9);
  mon.Watermark("test.depth", 5);
  EXPECT_DOUBLE_EQ(mon.WatermarkOf("test.depth"), 9);
  mon.Reset();
}

TEST(HealthMonitorTest, RateWindowSlidesWithVirtualTime) {
  obs::HealthMonitor& mon = obs::HealthMonitor::Instance();
  mon.Reset();
  uint64_t now_us = 0;
  mon.set_time_source([&now_us] { return now_us; });
  mon.set_window_us(1'000'000);  // 1 virtual second
  mon.RateEvent("test.rate", 10);
  now_us = 500'000;
  mon.RateEvent("test.rate", 10);
  // 20 events over the 1s window.
  EXPECT_DOUBLE_EQ(mon.RateOf("test.rate"), 20.0);
  now_us = 1'400'000;  // the first batch (t=0) has aged out
  EXPECT_DOUBLE_EQ(mon.RateOf("test.rate"), 10.0);
  mon.set_time_source(nullptr);
  mon.Reset();
}

TEST(HealthMonitorTest, DegradedWhenThresholdExceededAndJsonParses) {
  obs::HealthMonitor& mon = obs::HealthMonitor::Instance();
  mon.Reset();
  EXPECT_FALSE(mon.degraded());
  mon.set_threshold("test.wm", 10);
  mon.Watermark("test.wm", 5);
  EXPECT_FALSE(mon.degraded());
  mon.Watermark("test.wm", 15);
  EXPECT_TRUE(mon.degraded());
  auto parsed = obs::json::Parse(mon.DumpJsonFragment());
  ASSERT_TRUE(parsed.has_value()) << mon.DumpJsonFragment();
  EXPECT_EQ(parsed->Find("level")->str, "degraded");
  const obs::json::Value* wm = parsed->Find("watermarks")->Find("test.wm");
  ASSERT_NE(wm, nullptr);
  EXPECT_DOUBLE_EQ(wm->Find("hi")->number, 15);
  EXPECT_TRUE(wm->Find("degraded")->boolean);
  mon.Reset();
}

TEST(HealthMonitorTest, RegistryDumpEmbedsHealthFragment) {
  Registry& reg = Registry::Instance();
  reg.Reset();
  obs::HealthMonitor& mon = obs::HealthMonitor::Instance();
  mon.Reset();
  mon.Watermark("lpm.queue.depth", 4);
  auto parsed = obs::json::Parse(reg.DumpJson());
  ASSERT_TRUE(parsed.has_value());
  const obs::json::Value* health = parsed->Find("health");
  ASSERT_NE(health, nullptr);
  const obs::json::Value* wm = health->Find("watermarks")->Find("lpm.queue.depth");
  ASSERT_NE(wm, nullptr);
  EXPECT_DOUBLE_EQ(wm->Find("hi")->number, 4);
  mon.Reset();
}

}  // namespace
}  // namespace ppm

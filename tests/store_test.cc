// store_test.cc — the durable state store: filesystem crash semantics,
// journal framing, group commit, checkpoint/compaction, and LPM warm
// restart end to end.
//
// The layering mirrors the subsystem: Filesystem/Disk durability first
// (synced data survives a crash, the unsynced tail tears), then the
// CRC-framed journal (a torn tail is detected and discarded, never
// parsed), then LpmStore (checkpoints bound replay, interrupted
// compaction is safe), then a live cluster whose LPM is killed and
// warm-restarts from disk.
#include <gtest/gtest.h>

#include "chaos/invariants.h"
#include "core/cluster.h"
#include "core/lpm.h"
#include "host/filesystem.h"
#include "sim/rng.h"
#include "store/journal.h"
#include "store/lpm_store.h"
#include "tests/test_util.h"
#include "tools/client.h"

namespace ppm {
namespace {

using test::kTestUid;
using test::kTestUser;

// --- Filesystem durability ---------------------------------------------------

TEST(FilesystemCrash, WriteIsDurable) {
  host::Filesystem fs;
  sim::Rng rng(7);
  fs.Write(100, "ckpt", "atomic and synced");
  fs.TearUnsynced(rng);
  EXPECT_EQ(fs.Read(100, "ckpt"), "atomic and synced");
}

TEST(FilesystemCrash, UnsyncedTailMayTearButSyncedPrefixSurvives) {
  host::Filesystem fs;
  fs.Write(100, "j", "SYNCED|");
  fs.Append(100, "j", "unsynced tail that a crash may cut anywhere");
  size_t synced = fs.SyncedSize(100, "j");
  size_t full = fs.Size(100, "j");
  ASSERT_LT(synced, full);
  // Tear across many seeds: every outcome keeps the synced prefix and
  // never grows the file; at least one seed must actually cut the tail
  // (a tear that always keeps everything would be vacuous).
  bool cut_somewhere = false;
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    host::Filesystem trial;
    trial.Write(100, "j", "SYNCED|");
    trial.Append(100, "j", "unsynced tail that a crash may cut anywhere");
    sim::Rng rng(seed);
    trial.TearUnsynced(rng);
    std::optional<std::string> left = trial.Read(100, "j");
    ASSERT_TRUE(left.has_value());
    EXPECT_GE(left->size(), synced);
    EXPECT_LE(left->size(), full);
    EXPECT_EQ(left->substr(0, synced), "SYNCED|");
    if (left->size() < full) cut_somewhere = true;
  }
  EXPECT_TRUE(cut_somewhere);
}

TEST(FilesystemCrash, SyncMakesAppendedTailDurable) {
  host::Filesystem fs;
  sim::Rng rng(3);
  fs.Append(100, "j", "tail");
  EXPECT_EQ(fs.Sync(100, "j"), 4u);
  EXPECT_EQ(fs.Sync(100, "j"), 0u);  // already clean
  fs.TearUnsynced(rng);
  EXPECT_EQ(fs.Read(100, "j"), "tail");
}

TEST(FilesystemCrash, ListIsSortedAndStableAcrossTear) {
  host::Filesystem fs;
  sim::Rng rng(5);
  fs.Write(100, "zeta", "z");
  fs.Write(100, "alpha", "a");
  fs.Append(100, "mid", "partial");
  std::vector<std::string> before = fs.List(100);
  ASSERT_EQ(before, (std::vector<std::string>{"alpha", "mid", "zeta"}));
  fs.TearUnsynced(rng);
  EXPECT_EQ(fs.List(100), before);  // tear changes content, never names
}

// --- Journal -----------------------------------------------------------------

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> bytes) {
  return std::vector<uint8_t>(bytes);
}

TEST(Journal, RoundTripsFramesInOrder) {
  host::Filesystem fs;
  host::Disk disk(fs, 100);
  store::Journal j(disk, "wal", 4);
  j.Append(Payload({1, 2, 3}));
  j.Append(Payload({}));  // empty payloads are legal frames
  j.Append(Payload({0xff, 0x00, 0x7f}));
  store::Journal::Replayed r = store::Journal::Replay(disk, "wal");
  ASSERT_EQ(r.payloads.size(), 3u);
  EXPECT_EQ(r.payloads[0], Payload({1, 2, 3}));
  EXPECT_EQ(r.payloads[1], Payload({}));
  EXPECT_EQ(r.payloads[2], Payload({0xff, 0x00, 0x7f}));
  EXPECT_EQ(r.torn_bytes, 0u);
}

TEST(Journal, GroupCommitSyncsEveryNthAppend) {
  host::Filesystem fs;
  host::Disk disk(fs, 100);
  store::Journal j(disk, "wal", 3);
  size_t hook_calls = 0;
  j.set_sync_hook([&](size_t flushed) {
    ++hook_calls;
    EXPECT_GT(flushed, 0u);
  });
  EXPECT_FALSE(j.Append(Payload({1})));
  EXPECT_FALSE(j.Append(Payload({2})));
  EXPECT_EQ(disk.SyncedSize("wal"), 0u);  // batch still open
  EXPECT_EQ(j.pending_appends(), 2u);
  EXPECT_TRUE(j.Append(Payload({3})));  // batch full: physical sync
  EXPECT_EQ(disk.SyncedSize("wal"), disk.Size("wal"));
  EXPECT_EQ(j.pending_appends(), 0u);
  EXPECT_EQ(hook_calls, 1u);
  // Explicit sync point flushes a partial batch.
  j.Append(Payload({4}));
  EXPECT_GT(j.Sync(), 0u);
  EXPECT_EQ(disk.SyncedSize("wal"), disk.Size("wal"));
  EXPECT_EQ(hook_calls, 2u);
}

TEST(Journal, TornTailIsDiscardedNeverParsed) {
  // Synced frames must all replay; the torn unsynced tail must yield
  // only intact frames (a prefix of what was appended), whatever byte
  // the tear lands on.
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    host::Filesystem fs;
    host::Disk disk(fs, 100);
    store::Journal j(disk, "wal", 100);  // wide batch: nothing auto-syncs
    std::vector<std::vector<uint8_t>> written;
    for (uint8_t i = 0; i < 6; ++i) {
      written.push_back(Payload({i, uint8_t(i + 1), uint8_t(i + 2)}));
      j.Append(written.back());
    }
    j.Sync();  // first 6 durable
    for (uint8_t i = 6; i < 12; ++i) {
      written.push_back(Payload({i, uint8_t(i + 1), uint8_t(i + 2)}));
      j.Append(written.back());
    }
    sim::Rng rng(seed);
    fs.TearUnsynced(rng);
    store::Journal::Replayed r = store::Journal::Replay(disk, "wal");
    ASSERT_GE(r.payloads.size(), 6u) << "seed " << seed << ": synced frames lost";
    ASSERT_LE(r.payloads.size(), 12u);
    for (size_t i = 0; i < r.payloads.size(); ++i) {
      EXPECT_EQ(r.payloads[i], written[i]) << "seed " << seed << " frame " << i;
    }
  }
}

TEST(Journal, CorruptFrameCutsReplay) {
  host::Filesystem fs;
  host::Disk disk(fs, 100);
  store::Journal j(disk, "wal", 1);
  j.Append(Payload({10, 11}));
  j.Append(Payload({20, 21}));
  j.Append(Payload({30, 31}));
  // Flip a byte inside the second frame's payload (frame = 8B header +
  // 2B payload): the CRC must reject it, and replay must stop there —
  // the intact third frame is unreachable past a bad one.
  std::string raw = *disk.Read("wal");
  raw[10 + 8] ^= 0x5a;
  disk.Write("wal", raw);
  store::Journal::Replayed r = store::Journal::Replay(disk, "wal");
  ASSERT_EQ(r.payloads.size(), 1u);
  EXPECT_EQ(r.payloads[0], Payload({10, 11}));
  EXPECT_EQ(r.torn_bytes, 2u * 10u);  // frames 2 and 3 discarded
}

TEST(Journal, ResetTruncatesDurably) {
  host::Filesystem fs;
  host::Disk disk(fs, 100);
  store::Journal j(disk, "wal", 2);
  j.Append(Payload({1}));
  j.Reset();
  sim::Rng rng(9);
  fs.TearUnsynced(rng);
  EXPECT_EQ(disk.Size("wal"), 0u);
  EXPECT_EQ(store::Journal::Replay(disk, "wal").payloads.size(), 0u);
}

// --- LpmStore ----------------------------------------------------------------

core::HistEvent Ev(host::Pid pid, sim::SimTime at) {
  core::HistEvent ev;
  ev.kind = host::KEvent::kExec;
  ev.pid = pid;
  ev.at = at;
  return ev;
}

TEST(LpmStore, RecordsRoundTripThroughRecover) {
  host::Filesystem fs;
  host::Disk disk(fs, 100);
  store::StoreConfig cfg;
  cfg.group_commit = 1;  // sync every record: deterministic durability
  store::LpmStore s(disk, cfg);
  s.Open(store::RecoveredState{}, /*generation=*/0);
  s.RecordEvent(Ev(4, 100));
  s.RecordEvent(Ev(5, 200));
  core::TriggerSpec spec;
  spec.event_kind = host::KEvent::kExit;
  spec.subject_pid = 4;
  s.RecordTriggerInstall(7, spec);
  core::RusageRecord ru;
  ru.gpid = core::GPid{"h", 4};
  ru.command = "worker";
  ru.rusage.cpu_time = 1234;
  s.RecordRusage(ru);
  s.RecordProcNew(5, core::GPid{"elsewhere", 9}, "srv");
  s.RecordRemoteChild(5, core::GPid{"other", 2});
  s.RecordCcs("h0");

  store::RecoveredState st = store::LpmStore::Recover(disk);
  ASSERT_TRUE(st.found);
  EXPECT_EQ(st.torn_bytes, 0u);
  ASSERT_EQ(st.events.size(), 2u);
  EXPECT_EQ(st.events[0], Ev(4, 100));
  EXPECT_EQ(st.events[1], Ev(5, 200));
  ASSERT_EQ(st.triggers.size(), 1u);
  EXPECT_EQ(st.triggers.at(7), spec);
  ASSERT_EQ(st.rusage.size(), 1u);
  EXPECT_EQ(st.rusage[0], ru);
  ASSERT_EQ(st.procs.size(), 1u);
  EXPECT_EQ(st.procs.at(5).command, "srv");
  EXPECT_EQ(st.procs.at(5).logical_parent, (core::GPid{"elsewhere", 9}));
  ASSERT_EQ(st.remote_children.size(), 1u);
  EXPECT_EQ(st.remote_children[0].second, (core::GPid{"other", 2}));
  EXPECT_EQ(st.ccs_host, "h0");
}

TEST(LpmStore, TriggerRemoveAndProcExitApplyOnReplay) {
  host::Filesystem fs;
  host::Disk disk(fs, 100);
  store::StoreConfig cfg;
  cfg.group_commit = 1;
  store::LpmStore s(disk, cfg);
  s.Open(store::RecoveredState{}, 0);
  core::TriggerSpec spec;
  s.RecordTriggerInstall(1, spec);
  s.RecordTriggerInstall(2, spec);
  s.RecordTriggerRemove(1);
  s.RecordProcNew(5, {}, "a");
  s.RecordProcNew(6, {}, "b");
  s.RecordProcExit(5);
  store::RecoveredState st = store::LpmStore::Recover(disk);
  ASSERT_EQ(st.triggers.size(), 1u);
  EXPECT_TRUE(st.triggers.count(2));
  ASSERT_EQ(st.procs.size(), 1u);
  EXPECT_TRUE(st.procs.count(6));
}

TEST(LpmStore, CheckpointBoundsJournalAndReplayCost) {
  host::Filesystem fs;
  host::Disk disk(fs, 100);
  store::StoreConfig cfg;
  cfg.group_commit = 1;
  cfg.checkpoint_every = 16;
  store::LpmStore s(disk, cfg);
  s.Open(store::RecoveredState{}, 0);
  for (int i = 0; i < 200; ++i) s.RecordEvent(Ev(i, i));
  // Compaction keeps the journal bounded by the checkpoint interval: at
  // most checkpoint_every records ever sit in it.
  store::Journal::Replayed tail = store::Journal::Replay(disk, store::LpmStore::kJournalFile);
  EXPECT_LE(tail.payloads.size(), 16u);
  EXPECT_TRUE(disk.Exists(store::LpmStore::kCheckpointFile));
  // Recovery still sees all 200 events (checkpoint + journal tail).
  store::RecoveredState st = store::LpmStore::Recover(disk);
  ASSERT_EQ(st.events.size(), 200u);
  EXPECT_EQ(st.events.front(), Ev(0, 0));
  EXPECT_EQ(st.events.back(), Ev(199, 199));
}

TEST(LpmStore, InterruptedCompactionReplaysWithoutDuplicates) {
  // A crash between checkpoint write and journal truncation leaves the
  // journal full of records the checkpoint already covers.  Replay must
  // skip them by sequence number, not apply them twice.
  host::Filesystem fs;
  host::Disk disk(fs, 100);
  store::StoreConfig cfg;
  cfg.group_commit = 1;
  cfg.checkpoint_every = 0;  // manual checkpoints only
  store::LpmStore s(disk, cfg);
  s.Open(store::RecoveredState{}, 0);
  for (int i = 0; i < 5; ++i) s.RecordEvent(Ev(i, i));
  std::string journal_before = *disk.Read(store::LpmStore::kJournalFile);
  s.Checkpoint();
  // Simulate the interrupted truncation: the pre-checkpoint journal
  // content reappears (as if Reset never happened).
  disk.Write(store::LpmStore::kJournalFile, journal_before);
  store::RecoveredState st = store::LpmStore::Recover(disk);
  EXPECT_EQ(st.events.size(), 5u) << "stale journal records were re-applied";
}

TEST(LpmStore, GenerationChangeClearsGenealogyHintsOnly) {
  host::Filesystem fs;
  host::Disk disk(fs, 100);
  store::StoreConfig cfg;
  cfg.group_commit = 1;
  {
    store::LpmStore s(disk, cfg);
    s.Open(store::RecoveredState{}, /*generation=*/1);
    s.RecordEvent(Ev(3, 30));
    s.RecordProcNew(3, {}, "tool");
  }
  // Same generation: hints usable.
  store::RecoveredState same = store::LpmStore::Recover(disk);
  EXPECT_EQ(same.generation, 1u);
  EXPECT_EQ(same.procs.size(), 1u);
  // Reboot (generation 2): a new incarnation opens, hints die, history
  // survives.
  {
    store::LpmStore s(disk, cfg);
    store::RecoveredState rec = store::LpmStore::Recover(disk);
    s.Open(rec, /*generation=*/2);
  }
  store::RecoveredState after = store::LpmStore::Recover(disk);
  EXPECT_EQ(after.generation, 2u);
  EXPECT_EQ(after.procs.size(), 0u);
  ASSERT_EQ(after.events.size(), 1u);
  EXPECT_EQ(after.events[0], Ev(3, 30));
}

TEST(LpmStore, OpenPurgesTornTailFromDisk) {
  // The torn tail survives in the *file* even though replay discards it;
  // open-time compaction must purge it, or records appended after it
  // would be unreachable to the next replay.
  host::Filesystem fs;
  host::Disk disk(fs, 100);
  store::StoreConfig cfg;
  cfg.group_commit = 100;  // keep everything unsynced
  {
    store::LpmStore s(disk, cfg);
    s.Open(store::RecoveredState{}, 0);
    s.Sync();  // boot record durable
    for (int i = 0; i < 8; ++i) s.RecordEvent(Ev(i, i));
  }
  sim::Rng rng(11);
  fs.TearUnsynced(rng);
  store::RecoveredState torn = store::LpmStore::Recover(disk);
  size_t survived = torn.events.size();
  ASSERT_LT(survived, 8u);  // seed 11 cuts mid-batch
  {
    store::LpmStore s(disk, cfg);
    store::RecoveredState rec = store::LpmStore::Recover(disk);
    s.Open(rec, 0);
    s.RecordEvent(Ev(99, 990));
    s.Sync();
  }
  store::RecoveredState st = store::LpmStore::Recover(disk);
  EXPECT_EQ(st.torn_bytes, 0u);
  ASSERT_EQ(st.events.size(), survived + 1);
  EXPECT_EQ(st.events.back(), Ev(99, 990));
}

// --- warm restart end to end -------------------------------------------------

core::ClusterConfig DurableConfig() {
  core::ClusterConfig config;
  config.lpm.durable_store = true;
  // Sync every record: the assertions below are about *restart*, not
  // about which suffix a crash loses.
  config.lpm.store_group_commit = 1;
  return config;
}

core::Lpm* KillLpm(core::Cluster& cluster, const std::string& host) {
  core::Lpm* lpm = cluster.FindLpm(host, kTestUid);
  EXPECT_NE(lpm, nullptr);
  if (!lpm) return nullptr;
  cluster.host(host).kernel().PostSignal(lpm->pid(), host::Signal::kSigKill,
                                         host::kRootUid);
  cluster.RunFor(sim::Millis(100));
  return lpm;
}

TEST(WarmRestart, LpmKillPreservesHistoryTriggersRusageAndProcs) {
  core::Cluster cluster(DurableConfig());
  cluster.AddHost("alpha");
  test::InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  tools::PpmClient* client = test::ConnectTool(cluster, "alpha");
  ASSERT_NE(client, nullptr);

  // Workload: a survivor process, an exited process, and a trigger.
  std::optional<core::CreateResp> survivor;
  client->CreateProcess("alpha", "survivor", {},
                        [&](const core::CreateResp& r) { survivor = r; });
  ASSERT_TRUE(test::RunUntil(cluster, [&] { return survivor.has_value(); }));
  ASSERT_TRUE(survivor->ok);
  std::optional<core::CreateResp> doomed;
  client->CreateProcess("alpha", "doomed", {},
                        [&](const core::CreateResp& r) { doomed = r; });
  ASSERT_TRUE(test::RunUntil(cluster, [&] { return doomed.has_value(); }));
  std::optional<core::SignalResp> sig;
  client->Signal(doomed->gpid, host::Signal::kSigKill,
                 [&](const core::SignalResp& r) { sig = r; });
  ASSERT_TRUE(test::RunUntil(cluster, [&] { return sig.has_value(); }));
  core::TriggerSpec spec;
  spec.event_kind = host::KEvent::kExit;
  spec.subject_pid = survivor->gpid.pid;
  std::optional<core::TriggerResp> trig;
  client->InstallTrigger("alpha", spec,
                         [&](const core::TriggerResp& r) { trig = r; });
  ASSERT_TRUE(test::RunUntil(cluster, [&] { return trig.has_value(); }));
  ASSERT_TRUE(trig->ok);
  cluster.RunFor(sim::Millis(200));

  core::Lpm* old_lpm = cluster.FindLpm("alpha", kTestUid);
  ASSERT_NE(old_lpm, nullptr);
  std::vector<core::HistEvent> old_events = old_lpm->event_log().Query();
  std::vector<core::RusageRecord> old_rusage = old_lpm->exited_stats();
  ASSERT_FALSE(old_events.empty());
  ASSERT_EQ(old_rusage.size(), 1u);
  host::Pid old_pid = old_lpm->pid();
  KillLpm(cluster, "alpha");

  // A fresh tool contact mints the successor, which warm-restarts.
  tools::PpmClient* again = test::ConnectTool(cluster, "alpha", "tool2");
  ASSERT_NE(again, nullptr);
  core::Lpm* new_lpm = cluster.FindLpm("alpha", kTestUid);
  ASSERT_NE(new_lpm, nullptr);
  ASSERT_NE(new_lpm->pid(), old_pid);

  // History, trigger and rusage survived the manager's death.
  std::vector<core::HistEvent> new_events = new_lpm->event_log().Query();
  ASSERT_GE(new_events.size(), old_events.size());
  EXPECT_TRUE(std::equal(old_events.begin(), old_events.end(), new_events.begin()))
      << "recovered history must start with the predecessor's events";
  EXPECT_EQ(new_lpm->exited_stats(), old_rusage);
  ASSERT_EQ(new_lpm->triggers().entries().size(), 1u);
  EXPECT_EQ(new_lpm->triggers().entries().begin()->second, spec);

  // The survivor was re-adopted: same generation, pid still alive.
  const host::Process* p =
      cluster.host("alpha").kernel().Find(survivor->gpid.pid);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->alive());
  EXPECT_EQ(p->adopter, new_lpm->pid());

  // And the re-armed trigger still fires: kill the survivor, the stored
  // trigger (kSignal on exit) consumes itself.
  std::optional<core::SignalResp> sig2;
  again->Signal(survivor->gpid, host::Signal::kSigKill,
                [&](const core::SignalResp& r) { sig2 = r; });
  ASSERT_TRUE(test::RunUntil(cluster, [&] { return sig2.has_value(); }));
  ASSERT_TRUE(test::RunUntil(cluster, [&] {
    return new_lpm->triggers().entries().empty();
  }));
}

TEST(WarmRestart, HostCrashRecoversHistoryButNotGenealogy) {
  core::Cluster cluster(DurableConfig());
  cluster.AddHost("alpha");
  test::InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  tools::PpmClient* client = test::ConnectTool(cluster, "alpha");
  ASSERT_NE(client, nullptr);
  std::optional<core::CreateResp> created;
  client->CreateProcess("alpha", "worker", {},
                        [&](const core::CreateResp& r) { created = r; });
  ASSERT_TRUE(test::RunUntil(cluster, [&] { return created.has_value(); }));
  cluster.RunFor(sim::Millis(200));
  core::Lpm* old_lpm = cluster.FindLpm("alpha", kTestUid);
  ASSERT_NE(old_lpm, nullptr);
  std::vector<core::HistEvent> old_events = old_lpm->event_log().Query();
  ASSERT_FALSE(old_events.empty());

  cluster.Crash("alpha");
  cluster.RunFor(sim::Seconds(1));
  cluster.Reboot("alpha");
  cluster.RunFor(sim::Millis(100));

  tools::PpmClient* again = test::ConnectTool(cluster, "alpha", "tool2");
  ASSERT_NE(again, nullptr);
  core::Lpm* new_lpm = cluster.FindLpm("alpha", kTestUid);
  ASSERT_NE(new_lpm, nullptr);
  // Every record was synced (group_commit=1), so the full history
  // survived the crash; the pre-crash events lead the recovered log.
  std::vector<core::HistEvent> new_events = new_lpm->event_log().Query();
  ASSERT_GE(new_events.size(), old_events.size());
  EXPECT_TRUE(std::equal(old_events.begin(), old_events.end(), new_events.begin()));
  // But the pre-crash pid is NOT re-adopted: its process died with the
  // host, and the generation gate must refuse the stale hint.
  const host::Process* p =
      cluster.host("alpha").kernel().Find(created->gpid.pid);
  EXPECT_TRUE(p == nullptr || !p->alive() ||
              p->adopter != new_lpm->pid());
}

TEST(WarmRestart, StoreDurabilityInvariantDetectsTampering) {
  // The chaos invariant must be non-vacuous: a clean cluster passes, a
  // cluster whose journal is corrupted behind the LPM's back fails.
  core::Cluster cluster(DurableConfig());
  cluster.AddHost("alpha");
  test::InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  tools::PpmClient* client = test::ConnectTool(cluster, "alpha");
  ASSERT_NE(client, nullptr);
  std::optional<core::CreateResp> created;
  client->CreateProcess("alpha", "worker", {},
                        [&](const core::CreateResp& r) { created = r; });
  ASSERT_TRUE(test::RunUntil(cluster, [&] { return created.has_value(); }));
  cluster.RunFor(sim::Millis(200));

  std::vector<chaos::InvariantViolation> clean;
  chaos::CheckStoreDurability(cluster, kTestUid, &clean);
  EXPECT_TRUE(clean.empty()) << clean.front().name << ": " << clean.front().detail;

  // Vandalize the journal: replay now diverges from the live manager.
  cluster.host("alpha").fs().Write(kTestUid, store::LpmStore::kJournalFile,
                                   "not a journal");
  cluster.host("alpha").fs().Write(kTestUid, store::LpmStore::kCheckpointFile,
                                   "not a checkpoint");
  std::vector<chaos::InvariantViolation> dirty;
  chaos::CheckStoreDurability(cluster, kTestUid, &dirty);
  EXPECT_FALSE(dirty.empty());
}

}  // namespace
}  // namespace ppm

// overload_test.cc — overload protection across the PPM.
//
// Exercises the four legs of PR 8's protection layer in isolation, where
// the chaos OverloadPlan exercises them in combination:
//
//   * admission control — a full handler queue sheds with an explicit
//     BusyResp (never silence), and the shed-partition accounting is
//     exact; the master switch restores the unbounded pre-protection
//     dispatcher;
//   * retry + idempotency — lossy links force forward retries that reuse
//     the same request id and idempotency token, so the receiver
//     executes each request at most once even when the first attempt's
//     reply was the frame that died;
//   * deadlines — queued work whose origin has already timed out is
//     cancelled from the queue instead of executed;
//   * circuit breaker — consecutive sibling-setup failures quarantine
//     the peer (fast failure instead of a connect timeout per request)
//     and a half-open probe readmits it once it recovers;
//
// plus the connect-path cleanup the chaos invariant depends on: a
// handshake that loses its SYN-ACK (link fault, crash mid-handshake)
// must leave no half-open endpoint on either side, and pmd's inflight
// window must shed with an explicit busy reply.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "daemon/protocol.h"
#include "host/loadgen.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "tests/test_util.h"

namespace ppm {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::CreateResp;
using core::Lpm;
using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::RunUntil;

// Counts kernel processes of the test user on `host` running `command`
// (alive or exited — a duplicate execution leaves a table entry even if
// something later kills it).
size_t ProcsRunning(Cluster& cluster, const std::string& host,
                    const std::string& command) {
  host::Kernel& k = cluster.host(host).kernel();
  size_t n = 0;
  for (host::Pid pid : k.ProcessesOf(kTestUid)) {
    const host::Process* p = k.Find(pid);
    if (p && p->command == command) ++n;
  }
  return n;
}

// --- admission control ------------------------------------------------------

// A dispatcher with one handler and a one-deep queue must shed a burst
// that arrives while the queue is occupied — explicitly, with a BUSY the
// client surfaces as a typed failure, and with requests_shed == busy_sent
// (the shed-partition invariant).
TEST(OverloadShedTest, FullQueueShedsWithExplicitBusy) {
  ClusterConfig config;
  config.lpm.max_handlers = 1;
  config.lpm.max_queue_depth = 1;
  Cluster cluster(config);
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  tools::PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);

  std::vector<CreateResp> done;
  auto create = [&] {
    client->CreateProcess("solo", "burst-w", {},
                          [&](const CreateResp& r) { done.push_back(r); });
  };

  // First wave: fills the handler and stacks the queue well past its
  // bound (simultaneous arrivals are all admitted against the same
  // empty-queue snapshot; the bound bites arrivals that come *after*
  // the queue has built).
  constexpr size_t kFirstWave = 12;
  constexpr size_t kSecondWave = 8;
  for (size_t i = 0; i < kFirstWave; ++i) create();
  Lpm* lpm = cluster.FindLpm("solo", kTestUid);
  ASSERT_NE(lpm, nullptr);
  ASSERT_TRUE(RunUntil(cluster, [&] { return lpm->queued_request_count() >= 4; }));

  // Second wave arrives against a deep queue: shed.
  for (size_t i = 0; i < kSecondWave; ++i) create();
  ASSERT_TRUE(RunUntil(
      cluster, [&] { return done.size() == kFirstWave + kSecondWave; }));

  // Nothing was silently dropped: every request terminated, and every
  // failure names the overload explicitly.
  size_t busy_failures = 0;
  for (const CreateResp& r : done) {
    if (r.ok) continue;
    EXPECT_NE(r.error.find("busy"), std::string::npos) << r.error;
    ++busy_failures;
  }
  const core::LpmStats& stats = lpm->stats();
  EXPECT_GT(stats.requests_shed, 0u);
  EXPECT_EQ(stats.requests_shed, stats.busy_sent);
  EXPECT_EQ(busy_failures, stats.requests_shed);
  EXPECT_EQ(lpm->queued_request_count(), 0u);
}

// The master switch restores the pre-protection dispatcher exactly: the
// same burst queues unboundedly and every request eventually succeeds.
TEST(OverloadShedTest, MasterSwitchOffNeverSheds) {
  ClusterConfig config;
  config.lpm.max_handlers = 1;
  config.lpm.max_queue_depth = 1;
  config.lpm.overload_protection = false;
  Cluster cluster(config);
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  tools::PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);

  std::vector<CreateResp> done;
  for (size_t i = 0; i < 20; ++i) {
    client->CreateProcess("solo", "burst-w", {},
                          [&](const CreateResp& r) { done.push_back(r); });
  }
  ASSERT_TRUE(RunUntil(cluster, [&] { return done.size() == 20; }));
  for (const CreateResp& r : done) EXPECT_TRUE(r.ok) << r.error;
  Lpm* lpm = cluster.FindLpm("solo", kTestUid);
  ASSERT_NE(lpm, nullptr);
  EXPECT_EQ(lpm->stats().requests_shed, 0u);
  EXPECT_EQ(lpm->stats().busy_sent, 0u);
}

// --- retry + idempotency ----------------------------------------------------

// Lossy links between origin and target force forward retries.  The
// guarantee under test: a retry reuses the first attempt's request id
// and idempotency token, so even when the lost frame was the *response*
// to an already-executed create, the receiver replays its cached reply
// instead of forking a duplicate — at most one process per request.
TEST(OverloadRetryTest, RetriesAreIdempotentOverLossyLinks) {
  ClusterConfig config;
  config.seed = 7;
  Cluster cluster(config);
  cluster.AddHost("vaxA");
  cluster.AddHost("vaxB");
  cluster.Ethernet({"vaxA", "vaxB"});
  InstallTestUser(cluster);
  tools::PpmClient* client = ConnectTool(cluster, "vaxA");
  ASSERT_NE(client, nullptr);

  net::LinkFaultProfile faults;
  faults.drop = 0.15;
  faults.duplicate = 0.10;
  cluster.network().SetLinkFaults(cluster.host("vaxA").net_id(),
                                  cluster.host("vaxB").net_id(), faults);

  constexpr size_t kRequests = 30;
  std::vector<CreateResp> done;
  // Waves of five bound concurrency so the target never sheds — this
  // test isolates the retry path from admission control.
  for (size_t wave = 0; wave < kRequests; wave += 5) {
    for (size_t i = 0; i < 5; ++i) {
      client->CreateProcess("vaxB", "lossy-w", {},
                            [&](const CreateResp& r) { done.push_back(r); });
    }
    ASSERT_TRUE(RunUntil(cluster, [&] { return done.size() >= wave + 5; },
                         sim::Seconds(120)))
        << "wave stalled at " << done.size() << " responses";
  }
  cluster.network().ClearLinkFaults();
  cluster.RunFor(sim::Seconds(2));  // settle: let stragglers terminate

  size_t oks = 0;
  for (const CreateResp& r : done) {
    if (r.ok) {
      ++oks;
    } else {
      EXPECT_FALSE(r.error.empty());  // explicit failure, never silence
    }
  }

  // Exactly-once effect: every ok response corresponds to one execution,
  // and no request executed twice.  (An execution whose reply died after
  // every retry leaves an orphan with an explicit error at the origin,
  // so executions may exceed oks — but never the request count.)
  size_t executed = ProcsRunning(cluster, "vaxB", "lossy-w");
  EXPECT_GE(executed, oks);
  EXPECT_LE(executed, kRequests);

  Lpm* origin = cluster.FindLpm("vaxA", kTestUid);
  Lpm* target = cluster.FindLpm("vaxB", kTestUid);
  ASSERT_NE(origin, nullptr);
  ASSERT_NE(target, nullptr);
  // The faults actually bit: the origin retried, and at least one retry
  // hit an already-executed token on the target (drop=0.15 over 30
  // round trips makes both certain at this seed).
  EXPECT_GT(origin->stats().retries, 0u);
  EXPECT_GT(target->stats().dup_suppressed, 0u);
  // No silent loss at quiescence.
  EXPECT_EQ(origin->pending_forward_count(), 0u);
  EXPECT_EQ(target->queued_request_count(), 0u);
  EXPECT_EQ(target->stats().requests_shed, target->stats().busy_sent);
}

// --- deadlines --------------------------------------------------------------

// Work queued behind a loaded host whose origin deadline has already
// passed must be cancelled out of the queue, not executed: the origin
// reported the timeout long ago, so executing would waste a loaded
// host's cycles on a request nobody is waiting for.
//
// Geometry matters here: one origin can never overrun the target (its
// own handler pool bounds its in-flight forwards at the target's pool
// size), so *two* origins flood the target — 4+4 concurrent forwards
// against 4 handlers keeps a queue standing, and a pinned CPU (la ~32
// scales a create to ~680 ms on a VAX780) holds queued work past the
// 600 ms deadline (the unloaded forward path alone costs ~340 ms, so
// the deadline cannot be much tighter).
TEST(OverloadDeadlineTest, ExpiredQueuedWorkIsCancelledNotExecuted) {
  ClusterConfig config;
  config.lpm.request_timeout = sim::Millis(600);
  config.lpm.max_handlers = 4;
  config.lpm.max_retries = 0;      // isolate expiry from the retry machinery
  config.la_tau = sim::Millis(500);  // load estimator converges in ~2 s
  Cluster cluster(config);
  cluster.AddHost("vaxA");
  cluster.AddHost("vaxB");
  cluster.AddHost("vaxC");
  cluster.Ethernet({"vaxA", "vaxB", "vaxC"});
  InstallTestUser(cluster);
  tools::PpmClient* left = ConnectTool(cluster, "vaxA", "left");
  tools::PpmClient* right = ConnectTool(cluster, "vaxB", "right");
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);

  // Warm-up on an unloaded target: the LPM on vaxC and both sibling
  // circuits must exist before the flood, or the deadlines die
  // in LPM-creation latency instead of the queue.  A local tool session
  // forces the LPM up (LPM creation alone costs more than a deadline);
  // the two warm-up creates then only pay sibling setup.
  ASSERT_NE(ConnectTool(cluster, "vaxC", "warmer"), nullptr);
  std::optional<CreateResp> w1, w2;
  left->CreateProcess("vaxC", "warm-w", {}, [&](const CreateResp& r) { w1 = r; });
  right->CreateProcess("vaxC", "warm-w", {}, [&](const CreateResp& r) { w2 = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return w1 && w2; }));
  ASSERT_TRUE(w1->ok) << w1->error;
  ASSERT_TRUE(w2->ok) << w2->error;

  // Pin vaxC's CPU and let the load estimator converge.
  host::LoadGenerator noisy(cluster.host("vaxC"), kTestUid, 32, /*duty=*/1.0);
  cluster.RunFor(sim::Seconds(3));

  constexpr size_t kPerOrigin = 8;
  std::vector<CreateResp> done;
  for (size_t i = 0; i < kPerOrigin; ++i) {
    left->CreateProcess("vaxC", "late-w", {},
                        [&](const CreateResp& r) { done.push_back(r); });
    right->CreateProcess("vaxC", "late-w", {},
                         [&](const CreateResp& r) { done.push_back(r); });
  }
  ASSERT_TRUE(RunUntil(cluster, [&] { return done.size() == 2 * kPerOrigin; },
                       sim::Seconds(120)));

  // Every origin-side outcome is explicit (ok or an error string).
  size_t failures = 0;
  for (const CreateResp& r : done) {
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty());
      ++failures;
    }
  }
  EXPECT_GT(failures, 0u) << "load never pushed any request past its deadline";

  Lpm* target = cluster.FindLpm("vaxC", kTestUid);
  ASSERT_NE(target, nullptr);
  EXPECT_GT(target->stats().deadline_expired, 0u);

  // Cancelled work drains: nothing may rot in the queue once the
  // backlog clears (the no-silent-loss invariant at quiescence).
  noisy.Stop();
  cluster.RunFor(sim::Seconds(10));
  EXPECT_EQ(target->queued_request_count(), 0u);
  for (const char* origin_host : {"vaxA", "vaxB"}) {
    Lpm* origin = cluster.FindLpm(origin_host, kTestUid);
    ASSERT_NE(origin, nullptr);
    EXPECT_EQ(origin->pending_forward_count(), 0u);
  }
}

// --- circuit breaker --------------------------------------------------------

// Three consecutive sibling-setup failures open the per-host breaker:
// further forwards fail fast (no connect timeout burned per request)
// until a half-open probe readmits the recovered peer.
TEST(OverloadBreakerTest, TripsQuarantinesAndReadmits) {
  ClusterConfig config;
  Cluster cluster(config);
  cluster.AddHost("vaxA");
  cluster.AddHost("vaxB");
  cluster.Ethernet({"vaxA", "vaxB"});
  InstallTestUser(cluster);
  tools::PpmClient* client = ConnectTool(cluster, "vaxA");
  ASSERT_NE(client, nullptr);

  // Establish the sibling once so vaxB's LPM exists, then crash it.
  std::optional<CreateResp> first;
  client->CreateProcess("vaxB", "w", {},
                        [&](const CreateResp& r) { first = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return first.has_value(); }));
  ASSERT_TRUE(first->ok) << first->error;

  cluster.Crash("vaxB");
  cluster.RunFor(sim::Millis(500));  // break detection tears the circuit down

  Lpm* origin = cluster.FindLpm("vaxA", kTestUid);
  ASSERT_NE(origin, nullptr);

  // One forwarded request burns its initial attempt plus max_retries
  // reconnects against the dead host — breaker_threshold consecutive
  // setup failures — and trips the breaker.
  std::optional<CreateResp> tripped;
  client->CreateProcess("vaxB", "w", {},
                        [&](const CreateResp& r) { tripped = r; });
  ASSERT_TRUE(
      RunUntil(cluster, [&] { return tripped.has_value(); }, sim::Seconds(30)));
  EXPECT_FALSE(tripped->ok);
  EXPECT_TRUE(origin->breaker_open_for("vaxB"));
  EXPECT_EQ(origin->open_breaker_count(), 1u);

  // Quarantined: the next forward fails fast, without waiting out a
  // connect timeout.
  sim::SimTime before = cluster.simulator().Now();
  std::optional<CreateResp> quarantined;
  client->CreateProcess("vaxB", "w", {},
                        [&](const CreateResp& r) { quarantined = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return quarantined.has_value(); },
                       sim::Seconds(5), sim::Millis(1)));
  EXPECT_FALSE(quarantined->ok);
  EXPECT_LT(cluster.simulator().Now() - before,
            static_cast<sim::SimTime>(config.net.connect_timeout));

  // Readmission: once the peer is back and the quarantine has elapsed,
  // the next forward is the half-open probe — it succeeds and closes
  // the breaker.
  cluster.Reboot("vaxB");
  cluster.RunFor(config.lpm.breaker_probe + sim::Seconds(2));
  std::optional<CreateResp> readmitted;
  client->CreateProcess("vaxB", "w", {},
                        [&](const CreateResp& r) { readmitted = r; });
  ASSERT_TRUE(
      RunUntil(cluster, [&] { return readmitted.has_value(); }, sim::Seconds(30)));
  EXPECT_TRUE(readmitted->ok) << readmitted->error;
  EXPECT_FALSE(origin->breaker_open_for("vaxB"));
  EXPECT_EQ(origin->open_breaker_count(), 0u);
}

// --- pmd admission ----------------------------------------------------------

// pmd's inflight window sheds excess requests with an explicit busy
// reply carrying a retry-after hint — never silence, never a stall.
TEST(OverloadPmdTest, InflightWindowShedsWithBusyReply) {
  ClusterConfig config;
  config.pmd.max_inflight = 2;
  Cluster cluster(config);
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  // Connecting a tool forces inetd to create pmd (and the LPM).
  ASSERT_NE(ConnectTool(cluster, "solo"), nullptr);
  daemon::Pmd* pmd = cluster.FindPmd("solo");
  ASSERT_NE(pmd, nullptr);

  daemon::LpmRequest request;
  request.user = test::kTestUser;
  request.origin_host = "solo";
  request.origin_user = test::kTestUser;

  std::vector<daemon::LpmResponse> replies;
  for (int i = 0; i < 6; ++i) {
    pmd->EnsureLpm(request, /*local=*/true,
                   [&](const daemon::LpmResponse& r) { replies.push_back(r); });
  }
  ASSERT_TRUE(RunUntil(cluster, [&] { return replies.size() == 6; }));

  size_t busy = 0, ok = 0;
  for (const daemon::LpmResponse& r : replies) {
    if (r.busy) {
      ++busy;
      EXPECT_FALSE(r.ok);
      EXPECT_GT(r.retry_after_us, 0u);
    } else if (r.ok) {
      ++ok;
    }
  }
  EXPECT_EQ(ok, 2u);    // the two admitted into the window
  EXPECT_EQ(busy, 4u);  // the rest shed at admission
  EXPECT_EQ(pmd->stats().requests_shed, 4u);
}

// A response frame in the original (pre-trailer) format still parses,
// with the overload fields defaulted — mixed-version clusters keep
// working through a rolling upgrade.
TEST(OverloadPmdTest, LpmResponseTrailerIsVersionTolerant) {
  daemon::LpmResponse resp;
  resp.ok = true;
  resp.accept_addr = net::SocketAddr{3, 41};
  resp.token = 0xfeedULL;
  resp.lpm_pid = 17;
  resp.created = true;
  resp.busy = true;
  resp.retry_after_us = 12'345;

  std::vector<uint8_t> wire = resp.Serialize();
  auto round = daemon::LpmResponse::Parse(wire);
  ASSERT_TRUE(round.has_value());
  EXPECT_TRUE(round->busy);
  EXPECT_EQ(round->retry_after_us, 12'345u);

  // Chop the 9-byte trailer (Bool + U64) to recreate a legacy frame.
  ASSERT_GT(wire.size(), 9u);
  std::vector<uint8_t> legacy(wire.begin(), wire.end() - 9);
  auto old = daemon::LpmResponse::Parse(legacy);
  ASSERT_TRUE(old.has_value());
  EXPECT_TRUE(old->ok);
  EXPECT_EQ(old->token, 0xfeedULL);
  EXPECT_FALSE(old->busy);
  EXPECT_EQ(old->retry_after_us, 0u);
}

// --- connect-path cleanup ---------------------------------------------------

// Direct network-level tests of the half-open unwind that the chaos
// circuit-leak invariant audits cluster-wide.
class HalfOpenTest : public ::testing::Test {
 protected:
  HalfOpenTest() : sim_(1), net_(sim_) {
    a_ = net_.AddHost("a");
    b_ = net_.AddHost("b");
    net_.AddLink(a_, b_);
  }

  // Steps the simulator until `pred()` holds or `horizon` elapses.
  template <typename Pred>
  bool StepUntil(Pred pred, sim::SimDuration horizon = sim::Seconds(5)) {
    sim::SimTime deadline = sim_.Now() + static_cast<sim::SimTime>(horizon);
    while (!pred()) {
      if (sim_.Now() >= deadline) return false;
      sim_.RunUntil(sim_.Now() + static_cast<sim::SimTime>(sim::Micros(500)));
    }
    return true;
  }

  sim::Simulator sim_;
  net::Network net_;
  net::HostId a_ = 0, b_ = 0;
};

// The SYN reaches the acceptor but the SYN-ACK dies on the downed link:
// the initiator's connect must time out AND the acceptor's half-open
// endpoint must be notified and reaped — no entry survives on either
// side.
TEST_F(HalfOpenTest, LostSynAckReapsBothSides) {
  bool accepted = false;
  std::optional<net::CloseReason> acceptor_close;
  net_.Listen(b_, 99, [&](net::ConnId, net::SocketAddr) {
    accepted = true;
    net::ConnCallbacks cb;
    cb.on_close = [&](net::ConnId, net::CloseReason r) { acceptor_close = r; };
    return cb;
  });

  std::optional<std::optional<net::ConnId>> result;
  net_.Connect(a_, net::SocketAddr{b_, 99}, net::ConnCallbacks{},
               [&](std::optional<net::ConnId> c) { result = c; });

  // Down the link in the handshake_cpu window between accept and the
  // SYN-ACK send: the acceptor is now half-open, the initiator pending.
  ASSERT_TRUE(StepUntil([&] { return accepted; }));
  net_.SetLinkUp(a_, b_, false);

  sim_.RunUntil(sim_.Now() + static_cast<sim::SimTime>(sim::Seconds(1)));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->has_value());  // connect reported failure
  ASSERT_TRUE(acceptor_close.has_value());  // acceptor was told, not leaked
  EXPECT_EQ(net_.HalfOpenConnCount(a_), 0u);
  EXPECT_EQ(net_.HalfOpenConnCount(b_), 0u);
  EXPECT_EQ(net_.stats().connects_timed_out, 1u);
  EXPECT_EQ(net_.stats().half_open_reaped, 1u);
}

// A refused connect (no listener) unwinds without ever creating a
// half-open endpoint: the RST path erases the initiator's entry.
TEST_F(HalfOpenTest, RefusedConnectLeavesNoEntry) {
  std::optional<std::optional<net::ConnId>> result;
  net_.Connect(a_, net::SocketAddr{b_, 77}, net::ConnCallbacks{},
               [&](std::optional<net::ConnId> c) { result = c; });
  sim_.RunUntil(sim_.Now() + static_cast<sim::SimTime>(sim::Seconds(1)));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->has_value());
  EXPECT_EQ(net_.HalfOpenConnCount(a_), 0u);
  EXPECT_EQ(net_.HalfOpenConnCount(b_), 0u);
  EXPECT_EQ(net_.stats().connects_timed_out, 0u);
  EXPECT_EQ(net_.stats().half_open_reaped, 0u);
}

// The initiator crashes after its SYN was accepted but before the
// handshake completes: the crash sweep must notify and reap the
// acceptor's half-open endpoint (historically it was skipped, leaking
// the endpoint forever).
TEST_F(HalfOpenTest, InitiatorCrashMidHandshakeReapsAcceptor) {
  bool accepted = false;
  std::optional<net::CloseReason> acceptor_close;
  net_.Listen(b_, 99, [&](net::ConnId, net::SocketAddr) {
    accepted = true;
    net::ConnCallbacks cb;
    cb.on_close = [&](net::ConnId, net::CloseReason r) { acceptor_close = r; };
    return cb;
  });

  std::optional<std::optional<net::ConnId>> result;
  net_.Connect(a_, net::SocketAddr{b_, 99}, net::ConnCallbacks{},
               [&](std::optional<net::ConnId> c) { result = c; });
  ASSERT_TRUE(StepUntil([&] { return accepted; }));
  net_.SetHostUp(a_, false);

  sim_.RunUntil(sim_.Now() + static_cast<sim::SimTime>(sim::Seconds(1)));
  ASSERT_TRUE(acceptor_close.has_value());
  EXPECT_EQ(*acceptor_close, net::CloseReason::kPeerCrash);
  EXPECT_EQ(net_.HalfOpenConnCount(a_), 0u);
  EXPECT_EQ(net_.HalfOpenConnCount(b_), 0u);
  EXPECT_EQ(net_.stats().half_open_reaped, 1u);
}

}  // namespace
}  // namespace ppm

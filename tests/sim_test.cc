// sim_test.cc — the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"
#include "sim/simulator.h"

namespace ppm::sim {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleIn(Millis(30), [&] { order.push_back(3); });
  sim.ScheduleIn(Millis(10), [&] { order.push_back(1); });
  sim.ScheduleIn(Millis(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), static_cast<SimTime>(Millis(30)));
}

TEST(Simulator, EqualTimestampsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleIn(Millis(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleIn(Millis(10), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelInvalidIdIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int count = 0;
  sim.ScheduleIn(Millis(10), [&] { ++count; });
  sim.ScheduleIn(Millis(20), [&] { ++count; });
  sim.ScheduleIn(Millis(30), [&] { ++count; });
  size_t fired = sim.RunUntil(Millis(20));
  EXPECT_EQ(fired, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), static_cast<SimTime>(Millis(20)));
  sim.Run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(sim.Now(), static_cast<SimTime>(Seconds(5)));
}

TEST(Simulator, EventsScheduledDuringRunFire) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.ScheduleIn(Millis(1), chain);
  };
  sim.ScheduleIn(Millis(1), chain);
  sim.Run();
  EXPECT_EQ(depth, 5);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.ScheduleIn(0, [&] { ++count; });
  sim.ScheduleIn(0, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.RunUntil(Millis(100));
  bool fired = false;
  sim.ScheduleIn(-1000, [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), static_cast<SimTime>(Millis(100)));
}

TEST(Simulator, PendingEventsCountsUncancelled) {
  Simulator sim;
  EventId a = sim.ScheduleIn(Millis(1), [] {});
  sim.ScheduleIn(Millis(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, NextEventTimeSkipsCancelled) {
  Simulator sim;
  EventId a = sim.ScheduleIn(Millis(1), [] {});
  sim.ScheduleIn(Millis(7), [] {});
  sim.Cancel(a);
  EXPECT_EQ(sim.NextEventTime(), static_cast<SimTime>(Millis(7)));
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(10.0);
  double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.5);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

// Property: a simulation's event trace depends only on the seed.
class DeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismTest, SameSeedSameTrace) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    std::vector<uint64_t> trace;
    for (int i = 0; i < 50; ++i) {
      SimDuration d = static_cast<SimDuration>(sim.rng().Below(1000));
      sim.ScheduleIn(d, [&trace, &sim] { trace.push_back(sim.Now()); });
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest, ::testing::Values(1, 2, 42, 1986, 99999));

}  // namespace
}  // namespace ppm::sim

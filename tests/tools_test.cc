// tools_test.cc — forest assembly/rendering and the built-in tools
// (snapshot with control, rusage statistics, files, IPC trace).
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/lpm.h"
#include "obs/json.h"
#include "tests/test_util.h"
#include "tools/builtin_tools.h"
#include "tools/client.h"
#include "tools/display.h"
#include "tools/ppmstat.h"

namespace ppm::tools {
namespace {

using core::GPid;
using core::ProcRecord;
using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::RunUntil;

ProcRecord Rec(const std::string& host, host::Pid pid, const std::string& parent_host,
               host::Pid parent_pid, const std::string& cmd,
               host::ProcState state = host::ProcState::kRunning, bool exited = false) {
  ProcRecord r;
  r.gpid = {host, pid};
  if (parent_pid != host::kNoPid) r.logical_parent = {parent_host, parent_pid};
  r.command = cmd;
  r.state = state;
  r.exited = exited;
  return r;
}

TEST(Forest, SingleTree) {
  auto forest = BuildForest({
      Rec("a", 1, "", host::kNoPid, "root"),
      Rec("a", 2, "a", 1, "kid"),
      Rec("b", 3, "a", 1, "kid2"),
      Rec("b", 4, "b", 3, "grand"),
  });
  EXPECT_TRUE(forest.IsTree());
  EXPECT_EQ(forest.size(), 4u);
  EXPECT_EQ(forest.HostCount(), 2u);
  ASSERT_EQ(forest.roots.size(), 1u);
  EXPECT_EQ(forest.nodes[forest.roots[0]].record.command, "root");
}

TEST(Forest, OrphanBecomesRoot) {
  auto forest = BuildForest({
      Rec("a", 1, "", host::kNoPid, "root"),
      Rec("b", 9, "gone", 42, "orphan"),  // parent host crashed
  });
  EXPECT_FALSE(forest.IsTree());
  EXPECT_EQ(forest.roots.size(), 2u);
}

TEST(Forest, DuplicateRecordsSuppressed) {
  auto forest = BuildForest({
      Rec("a", 1, "", host::kNoPid, "root"),
      Rec("a", 1, "", host::kNoPid, "root"),
  });
  EXPECT_EQ(forest.size(), 1u);
}

TEST(Forest, DeterministicOrder) {
  std::vector<ProcRecord> records = {
      Rec("b", 2, "", host::kNoPid, "r2"),
      Rec("a", 1, "", host::kNoPid, "r1"),
  };
  auto f1 = BuildForest(records);
  std::swap(records[0], records[1]);
  auto f2 = BuildForest(records);
  EXPECT_EQ(RenderForest(f1), RenderForest(f2));
}

TEST(Forest, RenderShowsStatesAndExitMarks) {
  auto forest = BuildForest({
      Rec("a", 1, "", host::kNoPid, "root"),
      Rec("a", 2, "a", 1, "paused", host::ProcState::kStopped),
      Rec("b", 3, "a", 1, "gone", host::ProcState::kDead, true),
  });
  std::string out = RenderForest(forest);
  EXPECT_NE(out.find("<a,1> root [running]"), std::string::npos);
  EXPECT_NE(out.find("<a,2> paused [stopped]"), std::string::npos);
  EXPECT_NE(out.find("<b,3> gone (exited)"), std::string::npos);
  EXPECT_NE(out.find("|--"), std::string::npos);
  EXPECT_NE(out.find("`--"), std::string::npos);
}

TEST(Forest, SummaryCountsStates) {
  auto forest = BuildForest({
      Rec("a", 1, "", host::kNoPid, "r"),
      Rec("a", 2, "a", 1, "s", host::ProcState::kStopped),
      Rec("b", 3, "a", 1, "x", host::ProcState::kDead, true),
  });
  EXPECT_EQ(SummarizeForest(forest),
            "3 processes on 2 hosts: 1 running, 0 sleeping, 1 stopped, 1 exited");
}

TEST(Forest, EmptySnapshot) {
  auto forest = BuildForest({});
  EXPECT_EQ(forest.size(), 0u);
  EXPECT_EQ(RenderForest(forest), "");
}

// --- end-to-end tool runs -------------------------------------------------------

class ToolsTest : public ::testing::Test {
 protected:
  ToolsTest() {
    test::BuildThreeSegments(cluster_);
    InstallTestUser(cluster_);
    cluster_.RunFor(sim::Millis(10));
    client_ = ConnectTool(cluster_, "vaxA");
  }

  GPid Create(const std::string& host, const std::string& cmd, const GPid& parent = {}) {
    std::optional<core::CreateResp> result;
    client_->CreateProcess(host, cmd, parent,
                           [&](const core::CreateResp& r) { result = r; });
    EXPECT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
    return result->gpid;
  }

  core::Cluster cluster_;
  PpmClient* client_ = nullptr;
};

TEST_F(ToolsTest, SnapshotToolRendersDistributedTree) {
  ASSERT_NE(client_, nullptr);
  GPid root = Create("vaxA", "make");
  Create("vaxB", "cc1", root);
  Create("vaxC", "cc2", root);
  std::optional<SnapshotResult> result;
  RunSnapshotTool(*client_, [&](const SnapshotResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }, sim::Seconds(60)));
  ASSERT_TRUE(result->ok);
  EXPECT_TRUE(result->forest.IsTree());
  EXPECT_EQ(result->forest.HostCount(), 3u);
  EXPECT_NE(result->rendering.find("make"), std::string::npos);
  EXPECT_NE(result->rendering.find("cc1"), std::string::npos);
  EXPECT_EQ(result->hosts_covered.size(), 3u);
}

TEST_F(ToolsTest, StopResumeKillVerbs) {
  ASSERT_NE(client_, nullptr);
  GPid g = Create("vaxB", "victim");
  host::Kernel& kernel = cluster_.host("vaxB").kernel();

  std::optional<bool> ok;
  StopProcess(*client_, g, [&](bool success, std::string) { ok = success; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return ok.has_value(); }));
  EXPECT_TRUE(*ok);
  EXPECT_EQ(kernel.Find(g.pid)->state, host::ProcState::kStopped);

  ok.reset();
  ResumeProcess(*client_, g, [&](bool success, std::string) { ok = success; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return ok.has_value(); }));
  EXPECT_EQ(kernel.Find(g.pid)->state, host::ProcState::kRunning);

  ok.reset();
  KillProcess(*client_, g, [&](bool success, std::string) { ok = success; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return ok.has_value(); }));
  EXPECT_FALSE(kernel.Find(g.pid)->alive());
}

TEST_F(ToolsTest, StopWholeComputationAcrossHosts) {
  // "broadcasting, say, a software interrupt to stop execution".
  ASSERT_NE(client_, nullptr);
  GPid root = Create("vaxA", "root");
  GPid w1 = Create("vaxB", "w1", root);
  GPid w2 = Create("vaxC", "w2", root);
  std::optional<std::pair<size_t, size_t>> result;
  SignalComputation(*client_, host::Signal::kSigStop,
                    [&](size_t ok, size_t failed) { result = {ok, failed}; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }, sim::Seconds(60)));
  EXPECT_EQ(result->first, 3u);
  EXPECT_EQ(result->second, 0u);
  EXPECT_EQ(cluster_.host("vaxA").kernel().Find(root.pid)->state,
            host::ProcState::kStopped);
  EXPECT_EQ(cluster_.host("vaxB").kernel().Find(w1.pid)->state,
            host::ProcState::kStopped);
  EXPECT_EQ(cluster_.host("vaxC").kernel().Find(w2.pid)->state,
            host::ProcState::kStopped);
}

TEST_F(ToolsTest, RusageToolFormatsTable) {
  ASSERT_NE(client_, nullptr);
  GPid g = Create("vaxA", "ephemeral");
  cluster_.host("vaxA").kernel().PostSignal(g.pid, host::Signal::kSigKill, kTestUid);
  cluster_.RunFor(sim::Seconds(1));
  std::optional<RusageResult> result;
  RunRusageTool(*client_, "", [&](const RusageResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_TRUE(result->ok);
  ASSERT_EQ(result->records.size(), 1u);
  EXPECT_NE(result->table.find("ephemeral"), std::string::npos);
  EXPECT_NE(result->table.find("killed(SIGKILL)"), std::string::npos);
  EXPECT_NE(result->table.find("PROCESS"), std::string::npos);
}

TEST_F(ToolsTest, FilesToolListsDescriptors) {
  ASSERT_NE(client_, nullptr);
  GPid g = Create("vaxB", "editor");
  cluster_.host("vaxB").kernel().OpenFileFor(g.pid, "/usr/leslie/paper.tex", "rw");
  std::optional<FilesResult> result;
  RunFilesTool(*client_, g, [&](const FilesResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_TRUE(result->ok);
  ASSERT_EQ(result->files.size(), 1u);
  EXPECT_NE(result->table.find("/usr/leslie/paper.tex"), std::string::npos);
}

TEST_F(ToolsTest, IpcTraceToolAggregates) {
  ASSERT_NE(client_, nullptr);
  GPid g = Create("vaxA", "chatty");
  host::Kernel& kernel = cluster_.host("vaxA").kernel();
  kernel.RecordIpc(g.pid, true, 100);
  kernel.RecordIpc(g.pid, true, 50);
  kernel.RecordIpc(g.pid, false, 25);
  cluster_.RunFor(sim::Seconds(1));  // events reach the LPM history
  std::optional<IpcTraceResult> result;
  RunIpcTraceTool(*client_, "", g.pid, [&](const IpcTraceResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_TRUE(result->ok);
  EXPECT_EQ(result->sends, 2u);
  EXPECT_EQ(result->receives, 1u);
  EXPECT_EQ(result->bytes, 175u);
  EXPECT_NE(result->report.find("2 sends"), std::string::npos);
}

// --- ppmstat: live cluster introspection --------------------------------------

// The acceptance scenario: a 16-host star, one process per host, and a
// single stat broadcast from a tool on the hub must come back with all
// 16 manager records — genealogy, health verdicts, queue watermarks —
// in ONE covering-graph round (the origin's broadcast counter moves by
// exactly one).
TEST(PpmStat, SixteenHostStarInOneBroadcastRound) {
  core::Cluster cluster;
  std::vector<std::string> hosts;
  for (int i = 0; i < 16; ++i) hosts.push_back("h" + std::to_string(i));
  for (const std::string& h : hosts) cluster.AddHost(h);
  for (int i = 1; i < 16; ++i) cluster.Link("h0", hosts[static_cast<size_t>(i)]);
  InstallTestUser(cluster, {"h0", "h1"});
  cluster.RunFor(sim::Millis(10));

  PpmClient* client = ConnectTool(cluster, "h0", "ppmstat");
  ASSERT_NE(client, nullptr);
  GPid root;
  for (const std::string& h : hosts) {
    std::optional<core::CreateResp> created;
    client->CreateProcess(h, "worker-" + h, h == "h0" ? GPid{} : root,
                          [&](const core::CreateResp& r) { created = r; }, false);
    ASSERT_TRUE(RunUntil(cluster, [&] { return created.has_value(); })) << h;
    ASSERT_TRUE(created->ok) << h << ": " << created->error;
    if (h == "h0") root = created->gpid;
  }
  cluster.RunFor(sim::Seconds(1));

  core::Lpm* origin = cluster.FindLpm("h0", kTestUid);
  ASSERT_NE(origin, nullptr);
  uint64_t bcasts_before = origin->stats().bcasts_originated;

  std::optional<PpmStatResult> result;
  RunPpmStatTool(*client, [&](const PpmStatResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return result.has_value(); }, sim::Seconds(60)));
  ASSERT_TRUE(result->ok);

  // One record per host, exactly one broadcast originated.
  EXPECT_EQ(result->records.size(), 16u);
  EXPECT_EQ(result->hosts_covered.size(), 16u);
  EXPECT_EQ(origin->stats().bcasts_originated, bcasts_before + 1);

  // Full genealogy: every worker shows up in some manager's subtree.
  EXPECT_GE(result->procs_total, 16u);
  size_t workers = 0;
  for (const core::LpmStatRecord& rec : result->records) {
    for (const core::ProcRecord& p : rec.procs) {
      if (p.command.rfind("worker-", 0) == 0) ++workers;
    }
  }
  EXPECT_EQ(workers, 16u);

  for (const core::LpmStatRecord& rec : result->records) {
    // Per-host health classification: idle hosts must read healthy.
    EXPECT_EQ(rec.health, 0u) << rec.host << ": "
                              << (rec.health_reasons.empty() ? ""
                                                             : rec.health_reasons[0]);
    // Dispatcher instrumentation: the queue watermark is monotone over
    // the current depth and the LPM reports live handler counts.
    EXPECT_GE(rec.queue_watermark, rec.queue_depth) << rec.host;
    EXPECT_GE(rec.handlers, 1u) << rec.host;
    EXPECT_FALSE(rec.ccs_host.empty()) << rec.host;
  }

  // Exactly one CCS in the answers, and the recovery ranks follow the
  // installed ~/.recovery list.
  size_t ccs_count = 0;
  for (const core::LpmStatRecord& rec : result->records) {
    if (rec.is_ccs) ++ccs_count;
    if (rec.host == "h0") EXPECT_EQ(rec.recovery_rank, 0);
    if (rec.host == "h1") EXPECT_EQ(rec.recovery_rank, 1);
    if (rec.host == "h2") EXPECT_EQ(rec.recovery_rank, -1);
  }
  EXPECT_EQ(ccs_count, 1u);

  // Renderings: every host appears in the table; the JSON parses and
  // carries all sixteen host objects.
  for (const std::string& h : hosts) {
    EXPECT_NE(result->table.find(h), std::string::npos) << h;
  }
  auto parsed = obs::json::Parse(result->json);
  ASSERT_TRUE(parsed.has_value());
  // Machine consumers key off the top-level schema version; ppmtop's
  // JSON shares the same constant, so the tools stay in lock-step.
  const obs::json::Value* schema = parsed->Find("schema_version");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->number, static_cast<double>(kStatSchemaVersion));
  const obs::json::Value* hosts_json = parsed->Find("hosts");
  ASSERT_NE(hosts_json, nullptr);
  EXPECT_EQ(hosts_json->arr.size(), 16u);
}

TEST(PpmStat, ReportsEventLogDropBreakdown) {
  // A tiny event log so one chatty process forces evictions, which the
  // STAT record must break down per pid.
  core::ClusterConfig config;
  config.lpm.event_log_capacity = 64;
  core::Cluster cluster(config);
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);

  std::optional<core::CreateResp> created;
  client->CreateProcess("solo", "chatty", {},
                        [&](const core::CreateResp& r) { created = r; }, false);
  ASSERT_TRUE(RunUntil(cluster, [&] { return created.has_value(); }));
  ASSERT_TRUE(created->ok);
  host::Pid pid = created->gpid.pid;
  host::Kernel& kernel = cluster.host("solo").kernel();
  for (int i = 0; i < 500; ++i) kernel.RecordIpc(pid, true, 1);
  cluster.RunFor(sim::Seconds(2));

  std::optional<PpmStatResult> result;
  RunPpmStatTool(*client, [&](const PpmStatResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return result.has_value(); }, sim::Seconds(60)));
  ASSERT_TRUE(result->ok);
  ASSERT_EQ(result->records.size(), 1u);
  const core::LpmStatRecord& rec = result->records[0];
  EXPECT_GT(rec.eventlog_dropped, 0u);
  uint64_t from_pid = 0;
  for (const core::PidDrop& d : rec.dropped_by_pid) {
    if (d.pid == pid) from_pid = d.dropped;
  }
  EXPECT_GT(from_pid, 0u);
  // The breakdown never loses events: per-pid counts sum to the total.
  uint64_t sum = 0;
  for (const core::PidDrop& d : rec.dropped_by_pid) sum += d.dropped;
  EXPECT_EQ(sum, rec.eventlog_dropped);
}

TEST(PpmStat, RendersGroupsSectionFromStatRecords) {
  // Synthetic records: a coordinator carrying a gang and a CCS-side
  // barrier tally, and a plain host with only replicated envar state.
  core::LpmStatRecord coord;
  coord.host = "vaxA";
  core::GroupStatEntry gang;
  gang.name = "farm";
  gang.members = 32;
  gang.exited = 1;
  coord.groups.push_back(gang);
  core::BarrierStatEntry barrier;
  barrier.name = "farm-start";
  barrier.epoch = 3;
  barrier.waiters = 4;
  barrier.expected = 5;
  coord.barriers.push_back(barrier);
  coord.envars = 2;
  coord.envar_watchers = 0;
  core::LpmStatRecord plain;
  plain.host = "vaxB";
  plain.envars = 2;
  plain.envar_watchers = 1;

  std::string table = RenderStatTable({coord, plain});
  EXPECT_NE(table.find("GROUPS"), std::string::npos);
  EXPECT_NE(table.find("farm"), std::string::npos);
  EXPECT_NE(table.find("farm-start"), std::string::npos);
  EXPECT_NE(table.find("32"), std::string::npos);

  // The JSON carries the same state, machine-readable.
  std::string json = RenderStatJson({coord, plain});
  auto doc = obs::json::Parse(json);
  ASSERT_TRUE(doc && doc->is_object());
  const auto* hosts = doc->Find("hosts");
  ASSERT_TRUE(hosts && hosts->is_array());
  ASSERT_EQ(hosts->arr.size(), 2u);
  const auto* groups = hosts->arr[0].Find("groups");
  ASSERT_TRUE(groups && groups->is_array());
  ASSERT_EQ(groups->arr.size(), 1u);
  const auto* name = groups->arr[0].Find("name");
  ASSERT_TRUE(name && name->is_string());
  EXPECT_EQ(name->str, "farm");
  const auto* members = groups->arr[0].Find("members");
  ASSERT_TRUE(members && members->is_number());
  EXPECT_EQ(static_cast<int>(members->number), 32);
  const auto* barriers = hosts->arr[0].Find("barriers");
  ASSERT_TRUE(barriers && barriers->is_array());
  ASSERT_EQ(barriers->arr.size(), 1u);
  const auto* epoch = barriers->arr[0].Find("epoch");
  ASSERT_TRUE(epoch && epoch->is_number());
  EXPECT_EQ(static_cast<int>(epoch->number), 3);
  const auto* watchers = hosts->arr[1].Find("envar_watchers");
  ASSERT_TRUE(watchers && watchers->is_number());
  EXPECT_EQ(static_cast<int>(watchers->number), 1);

  // No group state anywhere -> no GROUPS section at all.
  core::LpmStatRecord bare;
  bare.host = "vaxC";
  EXPECT_EQ(RenderStatTable({bare}).find("GROUPS"), std::string::npos);
}

}  // namespace
}  // namespace ppm::tools

// tools_test.cc — forest assembly/rendering and the built-in tools
// (snapshot with control, rusage statistics, files, IPC trace).
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "tests/test_util.h"
#include "tools/builtin_tools.h"
#include "tools/client.h"
#include "tools/display.h"

namespace ppm::tools {
namespace {

using core::GPid;
using core::ProcRecord;
using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::RunUntil;

ProcRecord Rec(const std::string& host, host::Pid pid, const std::string& parent_host,
               host::Pid parent_pid, const std::string& cmd,
               host::ProcState state = host::ProcState::kRunning, bool exited = false) {
  ProcRecord r;
  r.gpid = {host, pid};
  if (parent_pid != host::kNoPid) r.logical_parent = {parent_host, parent_pid};
  r.command = cmd;
  r.state = state;
  r.exited = exited;
  return r;
}

TEST(Forest, SingleTree) {
  auto forest = BuildForest({
      Rec("a", 1, "", host::kNoPid, "root"),
      Rec("a", 2, "a", 1, "kid"),
      Rec("b", 3, "a", 1, "kid2"),
      Rec("b", 4, "b", 3, "grand"),
  });
  EXPECT_TRUE(forest.IsTree());
  EXPECT_EQ(forest.size(), 4u);
  EXPECT_EQ(forest.HostCount(), 2u);
  ASSERT_EQ(forest.roots.size(), 1u);
  EXPECT_EQ(forest.nodes[forest.roots[0]].record.command, "root");
}

TEST(Forest, OrphanBecomesRoot) {
  auto forest = BuildForest({
      Rec("a", 1, "", host::kNoPid, "root"),
      Rec("b", 9, "gone", 42, "orphan"),  // parent host crashed
  });
  EXPECT_FALSE(forest.IsTree());
  EXPECT_EQ(forest.roots.size(), 2u);
}

TEST(Forest, DuplicateRecordsSuppressed) {
  auto forest = BuildForest({
      Rec("a", 1, "", host::kNoPid, "root"),
      Rec("a", 1, "", host::kNoPid, "root"),
  });
  EXPECT_EQ(forest.size(), 1u);
}

TEST(Forest, DeterministicOrder) {
  std::vector<ProcRecord> records = {
      Rec("b", 2, "", host::kNoPid, "r2"),
      Rec("a", 1, "", host::kNoPid, "r1"),
  };
  auto f1 = BuildForest(records);
  std::swap(records[0], records[1]);
  auto f2 = BuildForest(records);
  EXPECT_EQ(RenderForest(f1), RenderForest(f2));
}

TEST(Forest, RenderShowsStatesAndExitMarks) {
  auto forest = BuildForest({
      Rec("a", 1, "", host::kNoPid, "root"),
      Rec("a", 2, "a", 1, "paused", host::ProcState::kStopped),
      Rec("b", 3, "a", 1, "gone", host::ProcState::kDead, true),
  });
  std::string out = RenderForest(forest);
  EXPECT_NE(out.find("<a,1> root [running]"), std::string::npos);
  EXPECT_NE(out.find("<a,2> paused [stopped]"), std::string::npos);
  EXPECT_NE(out.find("<b,3> gone (exited)"), std::string::npos);
  EXPECT_NE(out.find("|--"), std::string::npos);
  EXPECT_NE(out.find("`--"), std::string::npos);
}

TEST(Forest, SummaryCountsStates) {
  auto forest = BuildForest({
      Rec("a", 1, "", host::kNoPid, "r"),
      Rec("a", 2, "a", 1, "s", host::ProcState::kStopped),
      Rec("b", 3, "a", 1, "x", host::ProcState::kDead, true),
  });
  EXPECT_EQ(SummarizeForest(forest),
            "3 processes on 2 hosts: 1 running, 0 sleeping, 1 stopped, 1 exited");
}

TEST(Forest, EmptySnapshot) {
  auto forest = BuildForest({});
  EXPECT_EQ(forest.size(), 0u);
  EXPECT_EQ(RenderForest(forest), "");
}

// --- end-to-end tool runs -------------------------------------------------------

class ToolsTest : public ::testing::Test {
 protected:
  ToolsTest() {
    test::BuildThreeSegments(cluster_);
    InstallTestUser(cluster_);
    cluster_.RunFor(sim::Millis(10));
    client_ = ConnectTool(cluster_, "vaxA");
  }

  GPid Create(const std::string& host, const std::string& cmd, const GPid& parent = {}) {
    std::optional<core::CreateResp> result;
    client_->CreateProcess(host, cmd, parent,
                           [&](const core::CreateResp& r) { result = r; });
    EXPECT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
    return result->gpid;
  }

  core::Cluster cluster_;
  PpmClient* client_ = nullptr;
};

TEST_F(ToolsTest, SnapshotToolRendersDistributedTree) {
  ASSERT_NE(client_, nullptr);
  GPid root = Create("vaxA", "make");
  Create("vaxB", "cc1", root);
  Create("vaxC", "cc2", root);
  std::optional<SnapshotResult> result;
  RunSnapshotTool(*client_, [&](const SnapshotResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }, sim::Seconds(60)));
  ASSERT_TRUE(result->ok);
  EXPECT_TRUE(result->forest.IsTree());
  EXPECT_EQ(result->forest.HostCount(), 3u);
  EXPECT_NE(result->rendering.find("make"), std::string::npos);
  EXPECT_NE(result->rendering.find("cc1"), std::string::npos);
  EXPECT_EQ(result->hosts_covered.size(), 3u);
}

TEST_F(ToolsTest, StopResumeKillVerbs) {
  ASSERT_NE(client_, nullptr);
  GPid g = Create("vaxB", "victim");
  host::Kernel& kernel = cluster_.host("vaxB").kernel();

  std::optional<bool> ok;
  StopProcess(*client_, g, [&](bool success, std::string) { ok = success; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return ok.has_value(); }));
  EXPECT_TRUE(*ok);
  EXPECT_EQ(kernel.Find(g.pid)->state, host::ProcState::kStopped);

  ok.reset();
  ResumeProcess(*client_, g, [&](bool success, std::string) { ok = success; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return ok.has_value(); }));
  EXPECT_EQ(kernel.Find(g.pid)->state, host::ProcState::kRunning);

  ok.reset();
  KillProcess(*client_, g, [&](bool success, std::string) { ok = success; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return ok.has_value(); }));
  EXPECT_FALSE(kernel.Find(g.pid)->alive());
}

TEST_F(ToolsTest, StopWholeComputationAcrossHosts) {
  // "broadcasting, say, a software interrupt to stop execution".
  ASSERT_NE(client_, nullptr);
  GPid root = Create("vaxA", "root");
  GPid w1 = Create("vaxB", "w1", root);
  GPid w2 = Create("vaxC", "w2", root);
  std::optional<std::pair<size_t, size_t>> result;
  SignalComputation(*client_, host::Signal::kSigStop,
                    [&](size_t ok, size_t failed) { result = {ok, failed}; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }, sim::Seconds(60)));
  EXPECT_EQ(result->first, 3u);
  EXPECT_EQ(result->second, 0u);
  EXPECT_EQ(cluster_.host("vaxA").kernel().Find(root.pid)->state,
            host::ProcState::kStopped);
  EXPECT_EQ(cluster_.host("vaxB").kernel().Find(w1.pid)->state,
            host::ProcState::kStopped);
  EXPECT_EQ(cluster_.host("vaxC").kernel().Find(w2.pid)->state,
            host::ProcState::kStopped);
}

TEST_F(ToolsTest, RusageToolFormatsTable) {
  ASSERT_NE(client_, nullptr);
  GPid g = Create("vaxA", "ephemeral");
  cluster_.host("vaxA").kernel().PostSignal(g.pid, host::Signal::kSigKill, kTestUid);
  cluster_.RunFor(sim::Seconds(1));
  std::optional<RusageResult> result;
  RunRusageTool(*client_, "", [&](const RusageResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_TRUE(result->ok);
  ASSERT_EQ(result->records.size(), 1u);
  EXPECT_NE(result->table.find("ephemeral"), std::string::npos);
  EXPECT_NE(result->table.find("killed(SIGKILL)"), std::string::npos);
  EXPECT_NE(result->table.find("PROCESS"), std::string::npos);
}

TEST_F(ToolsTest, FilesToolListsDescriptors) {
  ASSERT_NE(client_, nullptr);
  GPid g = Create("vaxB", "editor");
  cluster_.host("vaxB").kernel().OpenFileFor(g.pid, "/usr/leslie/paper.tex", "rw");
  std::optional<FilesResult> result;
  RunFilesTool(*client_, g, [&](const FilesResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_TRUE(result->ok);
  ASSERT_EQ(result->files.size(), 1u);
  EXPECT_NE(result->table.find("/usr/leslie/paper.tex"), std::string::npos);
}

TEST_F(ToolsTest, IpcTraceToolAggregates) {
  ASSERT_NE(client_, nullptr);
  GPid g = Create("vaxA", "chatty");
  host::Kernel& kernel = cluster_.host("vaxA").kernel();
  kernel.RecordIpc(g.pid, true, 100);
  kernel.RecordIpc(g.pid, true, 50);
  kernel.RecordIpc(g.pid, false, 25);
  cluster_.RunFor(sim::Seconds(1));  // events reach the LPM history
  std::optional<IpcTraceResult> result;
  RunIpcTraceTool(*client_, "", g.pid, [&](const IpcTraceResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_TRUE(result->ok);
  EXPECT_EQ(result->sends, 2u);
  EXPECT_EQ(result->receives, 1u);
  EXPECT_EQ(result->bytes, 175u);
  EXPECT_NE(result->report.find("2 sends"), std::string::npos);
}

}  // namespace
}  // namespace ppm::tools

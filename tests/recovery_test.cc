// recovery_test.cc — paper Section 5: crash coordinator sites, the
// .recovery list walk, time-to-die, network partitions and healing.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/lpm.h"
#include "core/recovery.h"
#include "tests/test_util.h"
#include "tools/client.h"

namespace ppm::core {
namespace {

using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::kTestUser;
using test::RunUntil;
using tools::PpmClient;

TEST(RecoveryListTest, ParseSkipsBlanksAndComments) {
  RecoveryList list = RecoveryList::Parse("# home machines\nvaxA\n\n  vaxB \n#x\nvaxC\n");
  EXPECT_EQ(list.hosts, (std::vector<std::string>{"vaxA", "vaxB", "vaxC"}));
  EXPECT_EQ(list.IndexOf("vaxB"), 1u);
  EXPECT_FALSE(list.IndexOf("vaxZ").has_value());
}

TEST(RecoveryListTest, SerializeRoundTrip) {
  RecoveryList list;
  list.hosts = {"a", "b"};
  EXPECT_EQ(RecoveryList::Parse(list.Serialize()).hosts, list.hosts);
}

TEST(RecoveryListTest, ParseDeduplicatesKeepingHighestPriority) {
  RecoveryList list = RecoveryList::Parse("vaxA\nvaxB\nvaxA\nvaxC\nvaxB\n");
  EXPECT_EQ(list.hosts, (std::vector<std::string>{"vaxA", "vaxB", "vaxC"}));
}

TEST(RecoveryListTest, ParseDeduplicatesCaseInsensitively) {
  // The first spelling wins; later respellings name the same host and
  // must not re-enter the walk order at lower priority.
  RecoveryList list = RecoveryList::Parse("VaxA\nvaxa\nVAXB\n  vAxA \nvaxb\n");
  EXPECT_EQ(list.hosts, (std::vector<std::string>{"VaxA", "VAXB"}));
  EXPECT_EQ(list.IndexOf("vaxa"), 0u);
  EXPECT_EQ(list.IndexOf("VaxB"), 1u);
}

TEST(RecoveryListTest, ParseCommentOnlyFileYieldsEmpty) {
  EXPECT_TRUE(RecoveryList::Parse("# nothing\n\n   \n# but comments\n").empty());
  EXPECT_TRUE(RecoveryList::Parse("").empty());
}

TEST(RecoveryListTest, ParseTrimsWhitespaceAroundHosts) {
  RecoveryList list = RecoveryList::Parse("\tvaxA  \n   vaxB\t\r\n");
  EXPECT_EQ(list.hosts, (std::vector<std::string>{"vaxA", "vaxB"}));
}

TEST(RecoveryListTest, MissingFileYieldsEmpty) {
  host::Filesystem fs;
  EXPECT_TRUE(ReadRecoveryList(fs, 100).empty());
  RecoveryList list;
  list.hosts = {"h"};
  WriteRecoveryList(fs, 100, list);
  EXPECT_EQ(ReadRecoveryList(fs, 100).hosts, list.hosts);
}

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : cluster_(MakeConfig()) {
    test::BuildThreeSegments(cluster_);
    InstallTestUser(cluster_, {"vaxA", "vaxB", "vaxC"});
    cluster_.RunFor(sim::Millis(10));
  }

  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    // Compressed timers so tests stay fast in virtual time too.
    config.lpm.time_to_die = sim::Seconds(60);
    config.lpm.probe_interval = sim::Seconds(20);
    config.lpm.retry_interval = sim::Seconds(15);
    return config;
  }

  // Builds the standard session: tool on vaxA, workers on vaxB and vaxC.
  void BuildSession() {
    client_ = ConnectTool(cluster_, "vaxA");
    ASSERT_NE(client_, nullptr);
    worker_b_ = CreateOn("vaxB");
    worker_c_ = CreateOn("vaxC");
  }

  GPid CreateOn(const std::string& host) { return CreateOnHost(host, "worker", {}); }

  GPid CreateOnHost(const std::string& host, const std::string& command,
                    const GPid& parent) {
    std::optional<CreateResp> result;
    client_->CreateProcess(host, command, parent,
                           [&](const CreateResp& r) { result = r; });
    EXPECT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
    EXPECT_TRUE(result && result->ok) << (result ? result->error : "none");
    return result->gpid;
  }

  Cluster cluster_;
  PpmClient* client_ = nullptr;
  GPid worker_b_, worker_c_;
};

TEST_F(RecoveryTest, CcsIsFirstLpmByDefault) {
  BuildSession();
  EXPECT_TRUE(cluster_.FindLpm("vaxA", kTestUid)->is_ccs());
  EXPECT_EQ(cluster_.FindLpm("vaxB", kTestUid)->ccs_host(), "vaxA");
  EXPECT_EQ(cluster_.FindLpm("vaxC", kTestUid)->ccs_host(), "vaxA");
}

TEST_F(RecoveryTest, SiblingCrashDetectedByCcs) {
  BuildSession();
  Lpm* a = cluster_.FindLpm("vaxA", kTestUid);
  cluster_.Crash("vaxB");
  ASSERT_TRUE(RunUntil(cluster_, [&] { return a->stats().failures_detected > 0; }));
  // The coordinator stays up, stays CCS, keeps serving.
  EXPECT_TRUE(a->is_ccs());
  EXPECT_EQ(a->mode(), LpmMode::kNormal);
}

TEST_F(RecoveryTest, SnapshotShowsForestAfterHostCrash) {
  BuildSession();
  // A parent on sun1 (a leaf host: crashing it partitions nobody) with a
  // child on vaxB.
  GPid parent_on_sun = CreateOnHost("sun1", "parent", {});
  GPid grand = CreateOnHost("vaxB", "grandkid", parent_on_sun);
  cluster_.Crash("sun1");
  cluster_.RunFor(sim::Seconds(2));
  std::optional<SnapshotResp> snap;
  client_->Snapshot([&](const SnapshotResp& r) { snap = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return snap.has_value(); }, sim::Seconds(120)));
  // sun1's records are gone; the vaxB process whose parent lived there
  // is now an orphan — the genealogical tree became a forest.
  bool saw_parent = false;
  bool saw_orphan = false;
  for (const auto& rec : snap->records) {
    if (rec.gpid == parent_on_sun) saw_parent = true;
    if (rec.gpid == grand) saw_orphan = true;
  }
  EXPECT_FALSE(saw_parent);
  EXPECT_TRUE(saw_orphan);
}

TEST_F(RecoveryTest, OrphanedLpmWalksRecoveryListToNextHost) {
  BuildSession();
  // vaxB and vaxC both talk only to the CCS on vaxA.  Kill vaxA: they
  // must find each other through the .recovery list (vaxB is next).
  cluster_.Crash("vaxA");
  Lpm* b = cluster_.FindLpm("vaxB", kTestUid);
  Lpm* c = cluster_.FindLpm("vaxC", kTestUid);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(RunUntil(cluster_, [&] { return b->is_ccs(); }, sim::Seconds(120)));
  ASSERT_TRUE(RunUntil(cluster_, [&] { return c->ccs_host() == "vaxB"; },
                       sim::Seconds(120)));
  EXPECT_FALSE(c->is_ccs());
  // vaxB is not top of the list, so it keeps probing vaxA (recovering).
  EXPECT_EQ(b->mode(), LpmMode::kRecovering);
}

TEST_F(RecoveryTest, ActingCcsYieldsWhenTopHostReturns) {
  BuildSession();
  cluster_.Crash("vaxA");
  Lpm* b = cluster_.FindLpm("vaxB", kTestUid);
  ASSERT_TRUE(RunUntil(cluster_, [&] { return b->is_ccs(); }, sim::Seconds(120)));

  cluster_.Reboot("vaxA");
  // At the next low-frequency probe, vaxB reaches vaxA's (new) LPM and
  // yields the CCS role to it.
  ASSERT_TRUE(RunUntil(cluster_, [&] { return !b->is_ccs(); }, sim::Seconds(120)));
  EXPECT_EQ(b->ccs_host(), "vaxA");
  EXPECT_EQ(b->mode(), LpmMode::kNormal);
  Lpm* new_a = cluster_.FindLpm("vaxA", kTestUid);
  ASSERT_NE(new_a, nullptr);
  // The BecomeCcs handoff message may still be in flight at the instant
  // vaxB flips its own flag; wait for delivery rather than racing it.
  ASSERT_TRUE(RunUntil(cluster_, [&] { return new_a->is_ccs(); }, sim::Seconds(120)));
}

TEST_F(RecoveryTest, TimeToDieKillsLocalProcessesWhenNoRecoveryHostReachable) {
  // vaxC is NOT on the recovery list: isolated, it cannot become an
  // acting CCS and must eventually close down.
  cluster_.SetRecoveryList(kTestUid, {"vaxA", "vaxB"});
  BuildSession();
  // Isolate vaxC completely: every recovery host is unreachable.
  cluster_.network().Partition({{*cluster_.network().FindHost("vaxC")},
                                {*cluster_.network().FindHost("vaxA"),
                                 *cluster_.network().FindHost("vaxB"),
                                 *cluster_.network().FindHost("sun1"),
                                 *cluster_.network().FindHost("sun2"),
                                 *cluster_.network().FindHost("vaxD")}});
  Lpm* c = cluster_.FindLpm("vaxC", kTestUid);
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(RunUntil(cluster_, [&] { return c->mode() == LpmMode::kDying; },
                       sim::Seconds(120)));
  EXPECT_TRUE(cluster_.host("vaxC").kernel().Find(worker_c_.pid)->alive());

  // After time-to-die the LPM closes down all activities and exits.
  ASSERT_TRUE(RunUntil(cluster_,
                       [&] { return cluster_.FindLpm("vaxC", kTestUid) == nullptr; },
                       sim::Seconds(180)));
  const host::Process* worker = cluster_.host("vaxC").kernel().Find(worker_c_.pid);
  EXPECT_TRUE(worker == nullptr || !worker->alive());
}

TEST_F(RecoveryTest, DyingLpmRescuedByRetryBeforeDeadline) {
  cluster_.SetRecoveryList(kTestUid, {"vaxA", "vaxB"});
  BuildSession();
  auto vaxc = *cluster_.network().FindHost("vaxC");
  std::vector<net::HostId> others;
  for (const char* name : {"vaxA", "vaxB", "sun1", "sun2", "vaxD"}) {
    others.push_back(*cluster_.network().FindHost(name));
  }
  cluster_.network().Partition({{vaxc}, others});
  Lpm* c = cluster_.FindLpm("vaxC", kTestUid);
  ASSERT_TRUE(RunUntil(cluster_, [&] { return c->mode() == LpmMode::kDying; },
                       sim::Seconds(120)));
  // Heal before time-to-die (60s) runs out; the retry walk finds vaxA.
  cluster_.network().Heal();
  ASSERT_TRUE(RunUntil(cluster_, [&] { return c->mode() == LpmMode::kNormal; },
                       sim::Seconds(60)));
  EXPECT_NE(cluster_.FindLpm("vaxC", kTestUid), nullptr);
  EXPECT_TRUE(cluster_.host("vaxC").kernel().Find(worker_c_.pid)->alive());
  EXPECT_EQ(c->ccs_host(), "vaxA");
}

TEST_F(RecoveryTest, TimeToDieExpiresOnSchedule) {
  // The close-down must happen at the configured deadline — neither a
  // premature death (a retry would have rescued it) nor an open-ended
  // zombie (the paper's point is bounded autonomy).
  cluster_.SetRecoveryList(kTestUid, {"vaxA", "vaxB"});
  BuildSession();
  cluster_.network().Partition({{*cluster_.network().FindHost("vaxC")},
                                {*cluster_.network().FindHost("vaxA"),
                                 *cluster_.network().FindHost("vaxB"),
                                 *cluster_.network().FindHost("sun1"),
                                 *cluster_.network().FindHost("sun2"),
                                 *cluster_.network().FindHost("vaxD")}});
  Lpm* c = cluster_.FindLpm("vaxC", kTestUid);
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(RunUntil(cluster_, [&] { return c->mode() == LpmMode::kDying; },
                       sim::Seconds(120)));
  const sim::SimTime dying_at = cluster_.simulator().Now();
  ASSERT_TRUE(RunUntil(cluster_,
                       [&] { return cluster_.FindLpm("vaxC", kTestUid) == nullptr; },
                       sim::Seconds(180)));
  const auto lived =
      static_cast<sim::SimDuration>(cluster_.simulator().Now() - dying_at);
  // time_to_die is 60 s; allow poll granularity below and the close-down
  // walk (killing local processes, deregistering) above.
  EXPECT_GE(lived, sim::Seconds(59));
  EXPECT_LE(lived, sim::Seconds(70));
}

TEST_F(RecoveryTest, HealJustBeforeExpiryCancelsDeath) {
  cluster_.SetRecoveryList(kTestUid, {"vaxA", "vaxB"});
  BuildSession();
  cluster_.network().Partition({{*cluster_.network().FindHost("vaxC")},
                                {*cluster_.network().FindHost("vaxA"),
                                 *cluster_.network().FindHost("vaxB"),
                                 *cluster_.network().FindHost("sun1"),
                                 *cluster_.network().FindHost("sun2"),
                                 *cluster_.network().FindHost("vaxD")}});
  Lpm* c = cluster_.FindLpm("vaxC", kTestUid);
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(RunUntil(cluster_, [&] { return c->mode() == LpmMode::kDying; },
                       sim::Seconds(120)));
  // Ride the death timer to 40 s of its 60 s, then heal: exactly one
  // 15 s-interval retry (at 45 s) is left before expiry.
  cluster_.RunFor(sim::Seconds(40));
  ASSERT_NE(cluster_.FindLpm("vaxC", kTestUid), nullptr)
      << "LPM expired before its time-to-die deadline";
  ASSERT_EQ(c->mode(), LpmMode::kDying);
  cluster_.network().Heal();
  ASSERT_TRUE(RunUntil(cluster_,
                       [&] {
                         Lpm* l = cluster_.FindLpm("vaxC", kTestUid);
                         return l && l->mode() == LpmMode::kNormal;
                       },
                       sim::Seconds(30)));
  EXPECT_TRUE(cluster_.host("vaxC").kernel().Find(worker_c_.pid)->alive());
  EXPECT_EQ(c->ccs_host(), "vaxA");
}

TEST_F(RecoveryTest, PartitionProducesTwoCcsAndHealsToOne) {
  BuildSession();
  // Partition: {vaxA, sun1} | {vaxB, vaxC, sun2, vaxD}.  Both sides
  // contain a recovery-list host (vaxA; vaxB), so each side keeps an
  // operational CCS — the paper's network-partition scenario.
  auto id = [&](const std::string& n) { return *cluster_.network().FindHost(n); };
  cluster_.network().Partition(
      {{id("vaxA"), id("sun1")}, {id("vaxB"), id("vaxC"), id("sun2"), id("vaxD")}});
  Lpm* a = cluster_.FindLpm("vaxA", kTestUid);
  Lpm* b = cluster_.FindLpm("vaxB", kTestUid);
  Lpm* c = cluster_.FindLpm("vaxC", kTestUid);
  ASSERT_TRUE(RunUntil(cluster_, [&] { return b->is_ccs(); }, sim::Seconds(120)));
  EXPECT_TRUE(a->is_ccs());  // two CCSs now coexist
  ASSERT_TRUE(
      RunUntil(cluster_, [&] { return c->ccs_host() == "vaxB"; }, sim::Seconds(120)));
  // The minority-side components continue "with no bounds in time".
  cluster_.RunFor(sim::Seconds(100));
  EXPECT_NE(cluster_.FindLpm("vaxB", kTestUid), nullptr);
  EXPECT_NE(cluster_.FindLpm("vaxC", kTestUid), nullptr);
  EXPECT_TRUE(cluster_.host("vaxC").kernel().Find(worker_c_.pid)->alive());

  // Heal: the acting CCS probes vaxA, yields, and the PPM reunifies.
  cluster_.network().Heal();
  ASSERT_TRUE(RunUntil(cluster_, [&] { return !b->is_ccs(); }, sim::Seconds(120)));
  EXPECT_EQ(b->ccs_host(), "vaxA");
  EXPECT_TRUE(a->is_ccs());
}

TEST_F(RecoveryTest, LpmCrashHandledLikeHostCrash) {
  BuildSession();
  // Kill just the LPM process on vaxB; its host and worker survive.
  Lpm* b = cluster_.FindLpm("vaxB", kTestUid);
  host::Pid lpm_pid = b->pid();
  cluster_.host("vaxB").kernel().PostSignal(lpm_pid, host::Signal::kSigKill,
                                            host::kRootUid);
  Lpm* a = cluster_.FindLpm("vaxA", kTestUid);
  ASSERT_TRUE(RunUntil(cluster_, [&] { return a->stats().failures_detected > 0; },
                       sim::Seconds(30)));
  // Information about vaxB's processes is lost, but the worker runs on.
  EXPECT_TRUE(cluster_.host("vaxB").kernel().Find(worker_b_.pid)->alive());
  // A fresh request to vaxB creates a new LPM (pmd replaced the dead
  // registry entry); the new LPM no longer knows the old worker.
  GPid new_worker = CreateOn("vaxB");
  Lpm* b2 = cluster_.FindLpm("vaxB", kTestUid);
  ASSERT_NE(b2, nullptr);
  // Identity via pid, not object address: the allocator may legally
  // reuse the dead LPM's storage for its replacement.
  EXPECT_NE(b2->pid(), lpm_pid);
  std::optional<SnapshotResp> snap;
  client_->Snapshot([&](const SnapshotResp& r) { snap = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return snap.has_value(); }, sim::Seconds(120)));
  bool saw_old = false, saw_new = false;
  for (const auto& rec : snap->records) {
    if (rec.gpid == worker_b_) saw_old = true;
    if (rec.gpid == new_worker) saw_new = true;
  }
  EXPECT_FALSE(saw_old) << "knowledge of the old worker died with the LPM";
  EXPECT_TRUE(saw_new);
}

TEST_F(RecoveryTest, RequestsFailCleanlyDuringPartition) {
  BuildSession();
  auto id = [&](const std::string& n) { return *cluster_.network().FindHost(n); };
  cluster_.network().Partition(
      {{id("vaxA"), id("sun1")}, {id("vaxB"), id("vaxC"), id("sun2"), id("vaxD")}});
  cluster_.RunFor(sim::Seconds(2));
  std::optional<SignalResp> result;
  client_->Signal(worker_c_, host::Signal::kSigStop,
                  [&](const SignalResp& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }, sim::Seconds(60)));
  EXPECT_FALSE(result->ok);
  EXPECT_FALSE(result->error.empty());
}

TEST_F(RecoveryTest, RecoveredSiblingServesRequestsAgain) {
  BuildSession();
  auto id = [&](const std::string& n) { return *cluster_.network().FindHost(n); };
  cluster_.network().Partition(
      {{id("vaxA"), id("sun1")}, {id("vaxB"), id("vaxC"), id("sun2"), id("vaxD")}});
  cluster_.RunFor(sim::Seconds(10));
  cluster_.network().Heal();
  cluster_.RunFor(sim::Seconds(5));
  // After healing, control across the old cut works again.
  std::optional<SignalResp> result;
  client_->Signal(worker_c_, host::Signal::kSigStop,
                  [&](const SignalResp& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }, sim::Seconds(60)));
  EXPECT_TRUE(result->ok) << result->error;
  EXPECT_EQ(cluster_.host("vaxC").kernel().Find(worker_c_.pid)->state,
            host::ProcState::kStopped);
}

}  // namespace
}  // namespace ppm::core

// snapshot_property_test.cc — end-to-end property: for ANY computation
// shape the user builds (random trees over random hosts, random exits),
// a snapshot reflects exactly the tracked truth:
//
//   * every live created process appears exactly once, with its correct
//     logical parent and current state;
//   * every exited process that still anchors live descendants appears,
//     marked exited;
//   * nothing else appears (no handlers, no other users, no ghosts);
//   * the covering broadcast reaches every involved host.
//
// Randomness is seeded through the simulator, so failures replay.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/cluster.h"
#include "tests/test_util.h"
#include "tools/client.h"
#include "tools/display.h"

namespace ppm::core {
namespace {

using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::RunUntil;
using tools::PpmClient;

struct Expected {
  GPid parent;      // invalid for roots
  bool alive = true;
};

class SnapshotPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotPropertyTest, SnapshotMatchesGroundTruth) {
  ClusterConfig config;
  config.seed = GetParam();
  Cluster cluster(config);
  const std::vector<std::string> hosts = {"h0", "h1", "h2", "h3"};
  for (const auto& h : hosts) cluster.AddHost(h);
  cluster.Ethernet(hosts);
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "h0");
  ASSERT_NE(client, nullptr);
  sim::Rng& rng = cluster.simulator().rng();

  // Build a random computation: 12-20 creations, each either a new root
  // or a child of a random prior process, on a random host.
  std::map<GPid, Expected> truth;
  std::vector<GPid> order;
  int n = static_cast<int>(12 + rng.Below(9));
  for (int i = 0; i < n; ++i) {
    GPid parent;
    if (!order.empty() && rng.Chance(0.7)) {
      parent = order[rng.Below(order.size())];
    }
    std::string target = hosts[rng.Below(hosts.size())];
    std::optional<CreateResp> resp;
    client->CreateProcess(target, "proc" + std::to_string(i), parent,
                          [&](const CreateResp& r) { resp = r; });
    ASSERT_TRUE(RunUntil(cluster, [&] { return resp.has_value(); }, sim::Seconds(30)));
    ASSERT_TRUE(resp->ok) << resp->error;
    truth[resp->gpid] = Expected{parent, true};
    order.push_back(resp->gpid);
  }

  // Kill a random ~third of them.
  for (const GPid& g : order) {
    if (!rng.Chance(0.33)) continue;
    std::optional<SignalResp> sig;
    client->Signal(g, host::Signal::kSigKill, [&](const SignalResp& r) { sig = r; });
    ASSERT_TRUE(RunUntil(cluster, [&] { return sig.has_value(); }, sim::Seconds(30)));
    truth[g].alive = false;
  }
  // Stop a random few of the survivors.
  std::set<GPid> stopped;
  for (const GPid& g : order) {
    if (!truth[g].alive || !rng.Chance(0.25)) continue;
    std::optional<SignalResp> sig;
    client->Signal(g, host::Signal::kSigStop, [&](const SignalResp& r) { sig = r; });
    ASSERT_TRUE(RunUntil(cluster, [&] { return sig.has_value(); }, sim::Seconds(30)));
    stopped.insert(g);
  }
  cluster.RunFor(sim::Seconds(2));  // drain all kernel events

  std::optional<SnapshotResp> snap;
  client->Snapshot([&](const SnapshotResp& r) { snap = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return snap.has_value(); }, sim::Seconds(120)));

  // Which exited processes must still appear?  Those with a live
  // descendant chain below them.
  std::function<bool(const GPid&)> anchors_live = [&](const GPid& g) {
    for (const auto& [child, exp] : truth) {
      if (exp.parent == g) {
        if (exp.alive || anchors_live(child)) return true;
      }
    }
    return false;
  };

  std::map<GPid, const ProcRecord*> seen;
  for (const ProcRecord& rec : snap->records) {
    EXPECT_EQ(seen.count(rec.gpid), 0u) << "duplicate " << ToString(rec.gpid);
    seen[rec.gpid] = &rec;
    ASSERT_TRUE(truth.count(rec.gpid)) << "ghost record " << ToString(rec.gpid) << " "
                                       << rec.command;
  }
  for (const auto& [g, exp] : truth) {
    auto it = seen.find(g);
    if (exp.alive) {
      ASSERT_NE(it, seen.end()) << "live process missing: " << ToString(g);
      EXPECT_FALSE(it->second->exited);
      EXPECT_EQ(it->second->logical_parent, exp.parent) << ToString(g);
      if (stopped.count(g)) {
        EXPECT_EQ(it->second->state, host::ProcState::kStopped) << ToString(g);
      } else {
        EXPECT_EQ(it->second->state, host::ProcState::kRunning) << ToString(g);
      }
    } else if (anchors_live(g)) {
      ASSERT_NE(it, seen.end()) << "anchoring exited process missing: " << ToString(g);
      EXPECT_TRUE(it->second->exited);
    }
    // Exited leaves may legitimately be absent.
  }

  // Coverage: every host that holds a live process replied.
  std::set<std::string> hosts_with_procs;
  for (const auto& [g, exp] : truth) {
    if (exp.alive) hosts_with_procs.insert(g.host);
  }
  std::set<std::string> covered(snap->forwarded_to.begin(), snap->forwarded_to.end());
  for (const std::string& h : hosts_with_procs) {
    EXPECT_TRUE(covered.count(h)) << "host " << h << " not covered";
  }

  // And the forest builder accepts it without inventing cycles.
  tools::Forest forest = tools::BuildForest(snap->records);
  EXPECT_EQ(forest.size(), snap->records.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace ppm::core

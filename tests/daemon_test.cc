// daemon_test.cc — inetd and pmd: the LPM creation path of Figure 2,
// authentication, and pmd crash behaviour (volatile vs stable registry).
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "daemon/inetd.h"
#include "daemon/protocol.h"
#include "tests/test_util.h"

namespace ppm::daemon {
namespace {

using core::Cluster;
using core::ClusterConfig;
using test::kTestUid;
using test::kTestUser;

// Sends one LpmRequest from `from` to `to`'s inetd; returns the response.
std::optional<LpmResponse> RequestLpm(Cluster& cluster, const std::string& from,
                                      const std::string& to, const std::string& user,
                                      const std::string& origin_user) {
  std::optional<LpmResponse> result;
  host::Host& src = cluster.host(from);
  net::HostId dst = *cluster.network().FindHost(to);
  net::ConnCallbacks cb;
  cb.on_data = [&](net::ConnId c, const std::vector<uint8_t>& bytes) {
    result = LpmResponse::Parse(bytes);
    cluster.network().Close(c);
  };
  cluster.network().Connect(src.net_id(), net::SocketAddr{dst, net::kInetdPort},
                            std::move(cb), [&](std::optional<net::ConnId> c) {
                              if (!c) return;
                              LpmRequest req;
                              req.user = user;
                              req.origin_host = from;
                              req.origin_user = origin_user;
                              cluster.network().Send(*c, req.Serialize());
                            });
  test::RunUntil(cluster, [&] { return result.has_value(); }, sim::Seconds(10));
  return result;
}

class DaemonTest : public ::testing::Test {
 protected:
  DaemonTest() {
    cluster_.AddHost("alpha");
    cluster_.AddHost("beta");
    cluster_.Link("alpha", "beta");
    test::InstallTestUser(cluster_);
    cluster_.RunFor(sim::Millis(10));  // let inetd bind
  }
  Cluster cluster_;
};

TEST_F(DaemonTest, InetdStartsAtBoot) {
  EXPECT_NE(cluster_.FindInetd("alpha"), nullptr);
  EXPECT_TRUE(cluster_.network().HasListener(cluster_.host("alpha").net_id(),
                                             net::kInetdPort));
}

TEST_F(DaemonTest, PmdCreatedOnFirstRequestOnly) {
  EXPECT_EQ(cluster_.FindPmd("alpha"), nullptr);  // on demand, not at boot
  auto resp = RequestLpm(cluster_, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->ok) << resp->error;
  EXPECT_NE(cluster_.FindPmd("alpha"), nullptr);
  EXPECT_EQ(cluster_.FindInetd("alpha")->stats().pmd_spawns, 1u);
  // Second request reuses pmd.
  RequestLpm(cluster_, "alpha", "alpha", kTestUser, kTestUser);
  EXPECT_EQ(cluster_.FindInetd("alpha")->stats().pmd_spawns, 1u);
}

TEST_F(DaemonTest, LpmCreatedAndReused) {
  auto first = RequestLpm(cluster_, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(first && first->ok);
  EXPECT_TRUE(first->created);
  cluster_.RunFor(sim::Millis(100));
  auto second = RequestLpm(cluster_, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(second && second->ok);
  EXPECT_FALSE(second->created);
  EXPECT_EQ(first->lpm_pid, second->lpm_pid);
  EXPECT_EQ(first->accept_addr, second->accept_addr);
  EXPECT_EQ(first->token, second->token);
}

TEST_F(DaemonTest, LpmProcessActuallyExists) {
  auto resp = RequestLpm(cluster_, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(resp && resp->ok);
  cluster_.RunFor(sim::Millis(50));
  core::Lpm* lpm = cluster_.FindLpm("alpha", kTestUid);
  ASSERT_NE(lpm, nullptr);
  EXPECT_EQ(lpm->uid(), kTestUid);
  EXPECT_EQ(lpm->token(), resp->token);
  // Its accept socket is bound where pmd said.
  EXPECT_TRUE(cluster_.network().HasListener(resp->accept_addr.host,
                                             resp->accept_addr.port));
}

TEST_F(DaemonTest, UnknownUserRejected) {
  auto resp = RequestLpm(cluster_, "alpha", "alpha", "nobody", "nobody");
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok);
  EXPECT_NE(resp->error.find("unknown user"), std::string::npos);
}

TEST_F(DaemonTest, RemoteRequestHonoursRhosts) {
  auto resp = RequestLpm(cluster_, "alpha", "beta", kTestUser, kTestUser);
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->ok) << resp->error;
}

TEST_F(DaemonTest, RemoteRequestWithoutRhostsRejected) {
  cluster_.host("beta").fs().Remove(kTestUid, ".rhosts");
  auto resp = RequestLpm(cluster_, "alpha", "beta", kTestUser, kTestUser);
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok);
  EXPECT_NE(resp->error.find(".rhosts"), std::string::npos);
}

TEST_F(DaemonTest, UserLevelMasqueradeRejected) {
  cluster_.AddUserEverywhere("mallory", 666);
  cluster_.TrustUserEverywhere("mallory", 666);
  // mallory asks beta for *leslie's* LPM.
  auto resp = RequestLpm(cluster_, "alpha", "beta", kTestUser, "mallory");
  ASSERT_TRUE(resp.has_value());
  EXPECT_FALSE(resp->ok);
  EXPECT_NE(resp->error.find("masquerade"), std::string::npos);
  Pmd* pmd = cluster_.FindPmd("beta");
  ASSERT_NE(pmd, nullptr);
  EXPECT_GT(pmd->stats().auth_failures, 0u);
}

TEST_F(DaemonTest, LocalRequestNeedsNoRhosts) {
  cluster_.host("alpha").fs().Remove(kTestUid, ".rhosts");
  auto resp = RequestLpm(cluster_, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(resp && resp->ok);
}

TEST_F(DaemonTest, DeadLpmEntryIsReplaced) {
  auto first = RequestLpm(cluster_, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(first && first->ok);
  cluster_.RunFor(sim::Millis(100));
  // Kill the LPM out from under pmd.
  cluster_.host("alpha").kernel().PostSignal(first->lpm_pid, host::Signal::kSigKill,
                                             host::kRootUid);
  cluster_.RunFor(sim::Millis(500));
  auto second = RequestLpm(cluster_, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(second && second->ok);
  EXPECT_TRUE(second->created);
  EXPECT_NE(second->lpm_pid, first->lpm_pid);
}

TEST_F(DaemonTest, MalformedRequestClosedQuietly) {
  host::Host& src = cluster_.host("alpha");
  bool closed = false;
  net::ConnCallbacks cb;
  cb.on_close = [&](net::ConnId, net::CloseReason) { closed = true; };
  cluster_.network().Connect(src.net_id(),
                             net::SocketAddr{src.net_id(), net::kInetdPort}, std::move(cb),
                             [&](std::optional<net::ConnId> c) {
                               ASSERT_TRUE(c.has_value());
                               cluster_.network().Send(*c, {0xde, 0xad});
                             });
  test::RunUntil(cluster_, [&] { return closed; }, sim::Seconds(5));
  EXPECT_TRUE(closed);
  EXPECT_EQ(cluster_.FindInetd("alpha")->stats().bad_requests, 1u);
}

// --- pmd crash: the paper's stable-storage discussion ------------------------------

TEST(PmdCrashTest, VolatileRegistryCreatesDuplicateLpm) {
  // Opt out of the (now default) durable registry to reproduce the
  // paper's failure mode.
  ClusterConfig config;
  config.pmd.stable_storage = false;
  Cluster cluster(config);
  cluster.AddHost("alpha");
  test::InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  auto first = RequestLpm(cluster, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(first && first->ok);
  cluster.RunFor(sim::Millis(100));

  // pmd-only crash (the LPM survives).
  Pmd* pmd = cluster.FindPmd("alpha");
  ASSERT_NE(pmd, nullptr);
  cluster.host("alpha").kernel().PostSignal(pmd->pid(), host::Signal::kSigKill,
                                            host::kRootUid);
  cluster.RunFor(sim::Millis(100));

  // "…then the process management mechanism does not operate correctly":
  // the fresh pmd knows nothing and forks a second LPM for the same user.
  auto second = RequestLpm(cluster, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(second && second->ok);
  EXPECT_TRUE(second->created);
  EXPECT_NE(second->lpm_pid, first->lpm_pid);
}

TEST(PmdCrashTest, StableStorageSurvivesPmdCrash) {
  ClusterConfig config;
  config.pmd.stable_storage = true;
  Cluster cluster(config);
  cluster.AddHost("alpha");
  test::InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  auto first = RequestLpm(cluster, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(first && first->ok);
  cluster.RunFor(sim::Millis(100));

  Pmd* pmd = cluster.FindPmd("alpha");
  ASSERT_NE(pmd, nullptr);
  EXPECT_GT(pmd->stats().stable_writes, 0u);
  cluster.host("alpha").kernel().PostSignal(pmd->pid(), host::Signal::kSigKill,
                                            host::kRootUid);
  cluster.RunFor(sim::Millis(100));

  // The reloaded registry still names the live LPM: no duplicate.
  auto second = RequestLpm(cluster, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(second && second->ok);
  EXPECT_FALSE(second->created);
  EXPECT_EQ(second->lpm_pid, first->lpm_pid);
  EXPECT_EQ(second->token, first->token);
}

TEST(PmdCrashTest, DefaultConfigSurvivesPmdRestartWithoutDuplicateLpm) {
  // Regression for the durable-store PR: registrations are durable OUT
  // OF THE BOX, so a pmd restart plus an LPM re-registration request
  // must never mint a second LPM for the same user.
  Cluster cluster;  // all defaults
  cluster.AddHost("alpha");
  test::InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  auto first = RequestLpm(cluster, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(first && first->ok);
  cluster.RunFor(sim::Millis(100));

  Pmd* pmd = cluster.FindPmd("alpha");
  ASSERT_NE(pmd, nullptr);
  cluster.host("alpha").kernel().PostSignal(pmd->pid(), host::Signal::kSigKill,
                                            host::kRootUid);
  cluster.RunFor(sim::Millis(100));

  auto second = RequestLpm(cluster, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(second && second->ok);
  EXPECT_FALSE(second->created);
  EXPECT_EQ(second->lpm_pid, first->lpm_pid);
}

TEST(PmdCrashTest, StableStorageIgnoresStaleEntriesAfterHostCrash) {
  ClusterConfig config;
  config.pmd.stable_storage = true;
  Cluster cluster(config);
  cluster.AddHost("alpha");
  test::InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  auto first = RequestLpm(cluster, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(first && first->ok);
  cluster.RunFor(sim::Millis(100));

  cluster.Crash("alpha");
  cluster.RunFor(sim::Seconds(1));
  cluster.Reboot("alpha");
  cluster.RunFor(sim::Millis(100));

  // Disk survived, but the pids in it are from the previous boot; pmd
  // must not resurrect them.
  auto second = RequestLpm(cluster, "alpha", "alpha", kTestUser, kTestUser);
  ASSERT_TRUE(second && second->ok);
  EXPECT_TRUE(second->created);
}

}  // namespace
}  // namespace ppm::daemon

// watch_test.cc — the push-based monitoring protocol end to end: a
// StatSubscribe watch streams per-interval StatDelta records from every
// manager toward the subscriber along the covering graph, aggregated
// in transit, with contiguous per-host sequence numbers, O(hosts)
// frames per interval, staleness detection, and lazy cascade cancel.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/lpm.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "tests/test_util.h"
#include "tools/client.h"
#include "tools/ppmstat.h"
#include "tools/ppmtop.h"

namespace ppm::tools {
namespace {

using core::GPid;
using test::BuildThreeSegments;
using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::kTestUser;
using test::RunUntil;

constexpr uint64_t kIntervalUs = 100'000;  // 100ms virtual watch interval

// Spawns one worker per host so every host carries an LPM for the test
// user (the watch floods over the covering graph of live managers).
void SpawnWorkers(core::Cluster& cluster, PpmClient& client,
                  const std::vector<std::string>& hosts, GPid* root_out = nullptr) {
  GPid root;
  for (const std::string& h : hosts) {
    std::optional<core::CreateResp> created;
    client.CreateProcess(h, "worker-" + h, h == hosts.front() ? GPid{} : root,
                         [&](const core::CreateResp& r) { created = r; }, false);
    ASSERT_TRUE(RunUntil(cluster, [&] { return created.has_value(); })) << h;
    ASSERT_TRUE(created->ok) << h << ": " << created->error;
    if (h == hosts.front()) root = created->gpid;
  }
  if (root_out != nullptr) *root_out = root;
}

// Every LPM has released its watch state — the lazy cascade cancel has
// converged (an unsubscribed parent answers each orphan push with
// StatUnsubscribe, one hop per interval).
bool NoWatchesLeft(core::Cluster& cluster, const std::vector<std::string>& hosts) {
  for (const std::string& h : hosts) {
    core::Lpm* lpm = cluster.FindLpm(h, kTestUid);
    if (lpm != nullptr && lpm->stat_watch_count() != 0) return false;
  }
  return true;
}

// The acceptance scenario: one watch on a three-segment cluster must
// stream every host's deltas with contiguous sequence numbers, roll the
// charges up to the owning user, render, and tear down cleanly.
TEST(Watch, StreamsContiguousDeltasFromEveryHost) {
  core::Cluster cluster;
  BuildThreeSegments(cluster);
  InstallTestUser(cluster, {"vaxA", "vaxB"});
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "vaxA", "ppmtop");
  ASSERT_NE(client, nullptr);
  const std::vector<std::string> hosts = {"vaxA", "vaxB", "sun1",
                                          "vaxC", "sun2", "vaxD"};
  GPid root;
  SpawnWorkers(cluster, *client, hosts, &root);

  PpmTop top(cluster.host("vaxA"), *client, kIntervalUs);
  std::optional<bool> started;
  top.Start([&](bool ok) { started = ok; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return started.has_value(); }));
  ASSERT_TRUE(*started);
  EXPECT_TRUE(top.running());
  EXPECT_NE(top.watch_id(), 0u);
  EXPECT_EQ(client->active_watch_count(), 1u);

  // Deltas from ALL six hosts arrive, including vaxD three hops out.
  ASSERT_TRUE(RunUntil(cluster, [&] { return top.host_count() == hosts.size(); }));
  // Each host holds exactly one relay registration for this watch.
  for (const std::string& h : hosts) {
    core::Lpm* lpm = cluster.FindLpm(h, kTestUid);
    ASSERT_NE(lpm, nullptr) << h;
    EXPECT_EQ(lpm->stat_watch_count(), 1u) << h;
  }

  // Mid-watch activity so the accounting deltas have charges to
  // attribute: a fresh fork (kernel events) and simulated cpu burn on
  // the root worker.
  std::optional<core::CreateResp> churn;
  client->CreateProcess("vaxB", "churn-worker", root,
                        [&](const core::CreateResp& r) { churn = r; }, false);
  ASSERT_TRUE(RunUntil(cluster, [&] { return churn.has_value(); }));
  ASSERT_TRUE(churn->ok) << churn->error;
  cluster.host("vaxA").kernel().Charge(root.pid, sim::Millis(50));

  cluster.RunFor(sim::Seconds(1));
  // No-silent-loss: per-<watch, host> sequence numbers are contiguous.
  EXPECT_EQ(top.seq_gaps(), 0u);
  EXPECT_EQ(top.seq_dups(), 0u);
  EXPECT_GT(top.deltas_received(), 5u);
  for (const PpmTop::HostRow& row : top.Rows()) {
    EXPECT_GE(row.last_seq, 5u) << row.host;
    EXPECT_EQ(row.user, kTestUser) << row.host;
    EXPECT_EQ(row.uid, static_cast<int32_t>(kTestUid)) << row.host;
    EXPECT_FALSE(row.stale) << row.host;
  }

  // Accounting rollup: one owning user, charges attributed across all
  // six hosts through the genealogy.
  auto users = top.AccountingRollup();
  ASSERT_EQ(users.size(), 1u);
  EXPECT_EQ(users[0].user, kTestUser);
  EXPECT_EQ(users[0].uid, static_cast<int32_t>(kTestUid));
  EXPECT_EQ(users[0].hosts, hosts.size());
  EXPECT_GT(users[0].kernel_events, 0u);
  EXPECT_GT(users[0].cpu_us, 0u);

  // Per-host rate history accumulates in the series store.
  const obs::Series* ev = top.series().Find("vaxA.events_per_sec");
  ASSERT_NE(ev, nullptr);
  EXPECT_GT(ev->size(), 2u);

  // Renderings: the table lists every host plus the USERS rollup; the
  // JSON parses and shares ppmstat's schema version.
  std::string table = top.RenderTable();
  for (const std::string& h : hosts) {
    EXPECT_NE(table.find(h), std::string::npos) << h;
  }
  EXPECT_NE(table.find("USERS"), std::string::npos);
  auto parsed = obs::json::Parse(top.RenderJson());
  ASSERT_TRUE(parsed.has_value());
  const obs::json::Value* schema = parsed->Find("schema_version");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->number, static_cast<double>(kStatSchemaVersion));
  const obs::json::Value* hosts_json = parsed->Find("hosts");
  ASSERT_NE(hosts_json, nullptr);
  EXPECT_EQ(hosts_json->arr.size(), hosts.size());
  const obs::json::Value* users_json = parsed->Find("users");
  ASSERT_NE(users_json, nullptr);
  EXPECT_EQ(users_json->arr.size(), 1u);

  // Unsubscribe: the cascade cancel drains every relay registration.
  top.Stop();
  EXPECT_EQ(client->active_watch_count(), 0u);
  EXPECT_TRUE(RunUntil(cluster, [&] { return NoWatchesLeft(cluster, hosts); }));
}

// The per-opcode frame-accounting partition verifies the O(hosts) cost
// claim: one relay frame per non-origin host plus the origin's push to
// the tool, per interval — not a flood per refresh.
TEST(Watch, CostsLinearStatDeltaFramesPerInterval) {
  core::Cluster cluster;
  std::vector<std::string> hosts;
  for (int i = 0; i < 16; ++i) hosts.push_back("h" + std::to_string(i));
  for (const std::string& h : hosts) cluster.AddHost(h);
  for (size_t i = 1; i < hosts.size(); ++i) cluster.Link("h0", hosts[i]);
  InstallTestUser(cluster, {"h0", "h1"});
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "h0", "ppmtop");
  ASSERT_NE(client, nullptr);
  SpawnWorkers(cluster, *client, hosts);

  PpmTop top(cluster.host("h0"), *client, kIntervalUs);
  std::optional<bool> started;
  top.Start([&](bool ok) { started = ok; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return started.has_value(); }));
  ASSERT_TRUE(*started);
  ASSERT_TRUE(RunUntil(cluster, [&] { return top.host_count() == hosts.size(); }));
  cluster.RunFor(sim::Millis(200));  // let the pipeline reach steady state

  obs::Counter* frames =
      obs::Registry::Instance().GetCounter("net.op.StatDelta.frames");
  const uint64_t before = frames->value();
  constexpr uint64_t kIntervals = 10;
  cluster.RunFor(sim::Micros(kIntervalUs * kIntervals));
  const uint64_t sent = frames->value() - before;

  // Steady state: each of the 15 non-origin hosts relays exactly one
  // aggregated frame per interval, the origin pushes one to the tool.
  // Interval-boundary effects shift at most a couple of frames per
  // host, hence the slack; a flood-per-refresh design would send an
  // order of magnitude more.
  EXPECT_GE(sent, (hosts.size() - 1) * (kIntervals - 2));
  EXPECT_LE(sent, hosts.size() * (kIntervals + 2));

  top.Stop();
  EXPECT_TRUE(RunUntil(cluster, [&] { return NoWatchesLeft(cluster, hosts); }));
}

// A partition silences half the cluster: the watch must flag the cut
// hosts stale within two intervals of their last arrival, leave the
// reachable side streaming, and feed the count to obs/health.
TEST(Watch, FlagsPartitionedHostsStaleWithinTwoIntervals) {
  core::Cluster cluster;
  BuildThreeSegments(cluster);
  InstallTestUser(cluster, {"vaxA", "vaxB"});
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "vaxA", "ppmtop");
  ASSERT_NE(client, nullptr);
  const std::vector<std::string> hosts = {"vaxA", "vaxB", "sun1",
                                          "vaxC", "sun2", "vaxD"};
  SpawnWorkers(cluster, *client, hosts);

  PpmTop top(cluster.host("vaxA"), *client, kIntervalUs);
  std::optional<bool> started;
  top.Start([&](bool ok) { started = ok; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return started.has_value(); }));
  ASSERT_TRUE(*started);
  ASSERT_TRUE(RunUntil(cluster, [&] { return top.host_count() == hosts.size(); }));
  cluster.RunFor(sim::Millis(300));
  ASSERT_EQ(top.stale_host_count(), 0u);

  // Cut the covering-graph path between the two halves.
  cluster.network().Partition(
      {{cluster.host("vaxA").net_id(), cluster.host("vaxB").net_id(),
        cluster.host("sun1").net_id()},
       {cluster.host("vaxC").net_id(), cluster.host("sun2").net_id(),
        cluster.host("vaxD").net_id()}});

  // Per-host flag-time capture: the cut hosts drain out of the pipeline
  // at different instants, so each host's detection latency is measured
  // against its own last arrival.
  std::map<std::string, uint64_t> flagged_at;
  const uint64_t deadline =
      static_cast<uint64_t>(cluster.simulator().Now()) + 10 * kIntervalUs;
  while (flagged_at.size() < 3 &&
         static_cast<uint64_t>(cluster.simulator().Now()) < deadline) {
    cluster.RunFor(sim::Millis(10));
    const uint64_t t = static_cast<uint64_t>(cluster.simulator().Now());
    for (const PpmTop::HostRow& row : top.Rows()) {
      if (row.stale && !flagged_at.count(row.host)) flagged_at[row.host] = t;
    }
  }
  ASSERT_EQ(flagged_at.size(), 3u);
  for (const PpmTop::HostRow& row : top.Rows()) {
    const bool cut = row.host == "vaxC" || row.host == "sun2" || row.host == "vaxD";
    EXPECT_EQ(row.stale, cut) << row.host;
    if (cut) {
      // Flagged within two intervals of the host's last arrival (plus
      // the 10ms observation step).
      EXPECT_LE(flagged_at[row.host] - row.last_seen_us, 2 * kIntervalUs + 20'000)
          << row.host;
    }
  }
  // The count feeds the health surface.
  EXPECT_GE(obs::Registry::Instance().GetGauge("tool.watch.stale_hosts")->value(),
            3.0);

  // The reachable side keeps streaming without loss.
  EXPECT_EQ(top.seq_gaps(), 0u);
  EXPECT_EQ(top.seq_dups(), 0u);

  cluster.network().Heal();
  top.Stop();
  EXPECT_TRUE(RunUntil(cluster, [&] { return NoWatchesLeft(cluster, hosts); }));
}

}  // namespace
}  // namespace ppm::tools

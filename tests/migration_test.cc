// migration_test.cc — the process migration extension (the 1986 PPM had
// none; paper Sections 1/7 motivate event-dependent changes of "the site
// of execution").
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/lpm.h"
#include "tests/test_util.h"
#include "tools/client.h"

namespace ppm::core {
namespace {

using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::RunUntil;
using tools::PpmClient;

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() {
    cluster_.AddHost("home");
    cluster_.AddHost("src");
    cluster_.AddHost("dst");
    cluster_.Ethernet({"home", "src", "dst"});
    InstallTestUser(cluster_);
    cluster_.RunFor(sim::Millis(10));
    client_ = ConnectTool(cluster_, "home");
  }

  GPid Create(const std::string& host, const std::string& cmd,
              bool running = true) {
    std::optional<CreateResp> result;
    client_->CreateProcess(host, cmd, {}, [&](const CreateResp& r) { result = r; },
                           running);
    EXPECT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
    EXPECT_TRUE(result && result->ok);
    return result->gpid;
  }

  MigrateResp Migrate(const GPid& target, const std::string& dest) {
    std::optional<MigrateResp> result;
    client_->Migrate(target, dest, [&](const MigrateResp& r) { result = r; });
    EXPECT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }, sim::Seconds(60)));
    return result.value_or(MigrateResp{});
  }

  Cluster cluster_;
  PpmClient* client_ = nullptr;
};

TEST_F(MigrationTest, MovesProcessBetweenRemoteHosts) {
  ASSERT_NE(client_, nullptr);
  GPid old_gpid = Create("src", "mover");
  MigrateResp resp = Migrate(old_gpid, "dst");
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.new_gpid.host, "dst");

  // Old incarnation dead, new one alive with the same command.
  const host::Process* old_proc = cluster_.host("src").kernel().Find(old_gpid.pid);
  EXPECT_TRUE(old_proc == nullptr || !old_proc->alive());
  const host::Process* new_proc = cluster_.host("dst").kernel().Find(resp.new_gpid.pid);
  ASSERT_NE(new_proc, nullptr);
  EXPECT_TRUE(new_proc->alive());
  EXPECT_EQ(new_proc->command, "mover");
  EXPECT_EQ(new_proc->state, host::ProcState::kRunning);
  // Still adopted (trace mask carried over).
  EXPECT_NE(new_proc->adopter, host::kNoPid);
}

TEST_F(MigrationTest, GenealogyStaysConnectedAcrossTheMove) {
  ASSERT_NE(client_, nullptr);
  GPid old_gpid = Create("src", "mover");
  MigrateResp resp = Migrate(old_gpid, "dst");
  ASSERT_TRUE(resp.ok);
  cluster_.RunFor(sim::Seconds(1));

  std::optional<SnapshotResp> snap;
  client_->Snapshot([&](const SnapshotResp& r) { snap = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return snap.has_value(); }, sim::Seconds(60)));
  const ProcRecord* old_rec = nullptr;
  const ProcRecord* new_rec = nullptr;
  for (const auto& rec : snap->records) {
    if (rec.gpid == old_gpid) old_rec = &rec;
    if (rec.gpid == resp.new_gpid) new_rec = &rec;
  }
  // The old node is retained (it anchors the new one) and marked exited;
  // the new node hangs off it, so the tree never fragments.
  ASSERT_NE(old_rec, nullptr);
  EXPECT_TRUE(old_rec->exited);
  ASSERT_NE(new_rec, nullptr);
  EXPECT_EQ(new_rec->logical_parent, old_gpid);
}

TEST_F(MigrationTest, PreservesStoppedState) {
  ASSERT_NE(client_, nullptr);
  GPid old_gpid = Create("src", "sleeper");
  std::optional<SignalResp> sig;
  client_->Signal(old_gpid, host::Signal::kSigStop,
                  [&](const SignalResp& r) { sig = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return sig.has_value(); }));
  MigrateResp resp = Migrate(old_gpid, "dst");
  ASSERT_TRUE(resp.ok) << resp.error;
  cluster_.RunFor(sim::Seconds(1));
  EXPECT_EQ(cluster_.host("dst").kernel().Find(resp.new_gpid.pid)->state,
            host::ProcState::kStopped);
}

TEST_F(MigrationTest, DeadProcessFails) {
  ASSERT_NE(client_, nullptr);
  GPid g = Create("src", "shortlived");
  cluster_.host("src").kernel().PostSignal(g.pid, host::Signal::kSigKill, kTestUid);
  cluster_.RunFor(sim::Seconds(1));
  MigrateResp resp = Migrate(g, "dst");
  EXPECT_FALSE(resp.ok);
}

TEST_F(MigrationTest, SameHostRejected) {
  ASSERT_NE(client_, nullptr);
  GPid g = Create("src", "stay");
  MigrateResp resp = Migrate(g, "src");
  EXPECT_FALSE(resp.ok);
  EXPECT_TRUE(cluster_.host("src").kernel().Find(g.pid)->alive());
}

TEST_F(MigrationTest, UnreachableDestinationLeavesOriginalUntouched) {
  ASSERT_NE(client_, nullptr);
  GPid g = Create("src", "survivor");
  cluster_.Crash("dst");
  cluster_.RunFor(sim::Millis(500));
  MigrateResp resp = Migrate(g, "dst");
  EXPECT_FALSE(resp.ok);
  // Abort semantics: the original keeps running.
  EXPECT_TRUE(cluster_.host("src").kernel().Find(g.pid)->alive());
}

TEST_F(MigrationTest, UnknownDestinationFails) {
  ASSERT_NE(client_, nullptr);
  GPid g = Create("src", "survivor");
  MigrateResp resp = Migrate(g, "atlantis");
  EXPECT_FALSE(resp.ok);
  EXPECT_TRUE(cluster_.host("src").kernel().Find(g.pid)->alive());
}

TEST_F(MigrationTest, TriggerDrivenMigration) {
  // "history dependent events … trigger process state changes … and
  // possibly the site of execution": when the watchdog on src exits,
  // evacuate the worker from src to dst.
  ASSERT_NE(client_, nullptr);
  GPid watchdog = Create("src", "watchdog");
  GPid worker = Create("src", "worker");

  TriggerSpec spec;
  spec.event_kind = host::KEvent::kExit;
  spec.subject_pid = watchdog.pid;
  spec.action = TriggerAction::kMigrate;
  spec.action_target = worker;
  spec.migrate_dest = "dst";
  std::optional<TriggerResp> installed;
  client_->InstallTrigger("src", spec, [&](const TriggerResp& r) { installed = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return installed.has_value(); }));
  ASSERT_TRUE(installed->ok);

  cluster_.host("src").kernel().PostSignal(watchdog.pid, host::Signal::kSigKill,
                                           kTestUid);
  // The worker must disappear from src and reappear on dst.
  ASSERT_TRUE(RunUntil(cluster_,
                       [&] {
                         const host::Process* p =
                             cluster_.host("src").kernel().Find(worker.pid);
                         return p == nullptr || !p->alive();
                       },
                       sim::Seconds(60)));
  ASSERT_TRUE(RunUntil(cluster_,
                       [&] {
                         for (host::Pid p : cluster_.host("dst").kernel().ProcessesOf(
                                  kTestUid)) {
                           const host::Process* proc =
                               cluster_.host("dst").kernel().Find(p);
                           if (proc && proc->command == "worker") return true;
                         }
                         return false;
                       },
                       sim::Seconds(60)));
}

TEST_F(MigrationTest, MigrationCostsMoreThanRemoteCreate) {
  // Cold migration ships an image: it must cost visibly more than a
  // plain remote create.
  ASSERT_NE(client_, nullptr);
  GPid g = Create("src", "heavy");

  sim::SimTime t0 = cluster_.simulator().Now();
  std::optional<CreateResp> created;
  client_->CreateProcess("dst", "light", {}, [&](const CreateResp& r) { created = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return created.has_value(); }));
  sim::SimDuration create_cost =
      static_cast<sim::SimDuration>(cluster_.simulator().Now() - t0);

  sim::SimTime t1 = cluster_.simulator().Now();
  MigrateResp resp = Migrate(g, "dst");
  ASSERT_TRUE(resp.ok);
  sim::SimDuration migrate_cost =
      static_cast<sim::SimDuration>(cluster_.simulator().Now() - t1);
  EXPECT_GT(migrate_cost, create_cost + sim::Millis(100));
}

}  // namespace
}  // namespace ppm::core

// procfs_test.cc — the processes-as-files alternative of paper Section 6,
// including its NFS-style remote extension and its documented gaps.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "host/procfs.h"
#include "tests/test_util.h"

namespace ppm::host {
namespace {

using core::Cluster;
using test::InstallTestUser;
using test::kTestUid;
using test::RunUntil;

class ProcFsTest : public ::testing::Test {
 protected:
  ProcFsTest() : sim_(9), net_(sim_) {
    id_ = net_.AddHost("h");
    host_ = std::make_unique<Host>(sim_, net_, id_, HostType::kVax780, "h");
  }
  sim::Simulator sim_;
  net::Network net_;
  net::HostId id_;
  std::unique_ptr<Host> host_;
};

TEST_F(ProcFsTest, ListShowsLiveAndZombie) {
  Kernel& kernel = host_->kernel();
  Pid parent = kernel.Spawn(kNoPid, 100, "p");
  Pid child = kernel.Spawn(parent, 100, "c");
  kernel.Exit(child, 0);  // zombie
  ProcFs fs(kernel);
  auto pids = fs.List();
  EXPECT_NE(std::find(pids.begin(), pids.end(), parent), pids.end());
  EXPECT_NE(std::find(pids.begin(), pids.end(), child), pids.end());
}

TEST_F(ProcFsTest, StatusFileContents) {
  Kernel& kernel = host_->kernel();
  Pid p = kernel.Spawn(kNoPid, 100, "cruncher");
  ProcFs fs(kernel);
  auto status = fs.ReadStatus(p);
  ASSERT_TRUE(status.has_value());
  EXPECT_NE(status->find("pid " + std::to_string(p)), std::string::npos);
  EXPECT_NE(status->find("uid 100"), std::string::npos);
  EXPECT_NE(status->find("state running"), std::string::npos);
  EXPECT_NE(status->find("command cruncher"), std::string::npos);
}

TEST_F(ProcFsTest, ReadMissingProcess) {
  ProcFs fs(host_->kernel());
  EXPECT_FALSE(fs.ReadStatus(999).has_value());
}

TEST_F(ProcFsTest, CtlWritesMapToSignals) {
  Kernel& kernel = host_->kernel();
  Pid p = kernel.Spawn(kNoPid, 100, "target");
  ProcFs fs(kernel);
  EXPECT_TRUE(fs.WriteCtl(p, "stop", 100));
  EXPECT_EQ(kernel.Find(p)->state, ProcState::kStopped);
  EXPECT_TRUE(fs.WriteCtl(p, "cont", 100));
  EXPECT_EQ(kernel.Find(p)->state, ProcState::kRunning);
  EXPECT_TRUE(fs.WriteCtl(p, "kill", 100));
  EXPECT_FALSE(kernel.Find(p)->alive());
}

TEST_F(ProcFsTest, CtlEnforcesUid) {
  Kernel& kernel = host_->kernel();
  Pid p = kernel.Spawn(kNoPid, 100, "target");
  ProcFs fs(kernel);
  std::string err;
  EXPECT_FALSE(fs.WriteCtl(p, "kill", 200, &err));
  EXPECT_EQ(err, "permission denied");
  EXPECT_TRUE(kernel.Find(p)->alive());
}

TEST_F(ProcFsTest, BadCtlOpRejected) {
  Kernel& kernel = host_->kernel();
  Pid p = kernel.Spawn(kNoPid, 100, "target");
  ProcFs fs(kernel);
  std::string err;
  EXPECT_FALSE(fs.WriteCtl(p, "reboot", 100, &err));
  EXPECT_NE(err.find("bad ctl op"), std::string::npos);
}

// --- the NFS extension ("extends to multiple hosts") -------------------------

class RemoteProcFsTest : public ::testing::Test {
 protected:
  RemoteProcFsTest() {
    cluster_.AddHost("local");
    cluster_.AddHost("remote");
    cluster_.Link("local", "remote");
    InstallTestUser(cluster_);
    StartProcFsServer(cluster_.host("remote"));
    cluster_.RunFor(sim::Millis(10));
  }
  Cluster cluster_;
};

TEST_F(RemoteProcFsTest, RemoteListAndRead) {
  Pid p = cluster_.host("remote").kernel().Spawn(kNoPid, kTestUid, "far-proc");
  std::optional<ProcFsResult> listing;
  ProcFsList(cluster_.host("local"), "remote",
             [&](const ProcFsResult& r) { listing = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return listing.has_value(); }));
  ASSERT_TRUE(listing->ok);
  EXPECT_NE(std::find(listing->pids.begin(), listing->pids.end(), p),
            listing->pids.end());

  std::optional<ProcFsResult> status;
  ProcFsRead(cluster_.host("local"), "remote", p,
             [&](const ProcFsResult& r) { status = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return status.has_value(); }));
  ASSERT_TRUE(status->ok);
  EXPECT_NE(status->content.find("far-proc"), std::string::npos);
}

TEST_F(RemoteProcFsTest, RemoteSignalViaCtlFile) {
  // "Had we had such code, we would have used it for message delivery."
  Pid p = cluster_.host("remote").kernel().Spawn(kNoPid, kTestUid, "victim");
  std::optional<ProcFsResult> result;
  ProcFsWriteCtl(cluster_.host("local"), "remote", p, "stop", kTestUid,
                 [&](const ProcFsResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_EQ(cluster_.host("remote").kernel().Find(p)->state, ProcState::kStopped);
}

TEST_F(RemoteProcFsTest, ClaimedUidIsTrusted) {
  // AUTH_UNIX-era NFS trusts the claimed uid — the masquerade the PPM's
  // pmd-mediated channels prevent is wide open on this path.  We verify
  // the weakness honestly rather than hiding it.
  Pid p = cluster_.host("remote").kernel().Spawn(kNoPid, kTestUid, "victim");
  std::optional<ProcFsResult> result;
  ProcFsWriteCtl(cluster_.host("local"), "remote", p, "kill",
                 /*claimed_uid=*/kTestUid,  // the attacker simply claims it
                 [&](const ProcFsResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  EXPECT_TRUE(result->ok);
  EXPECT_FALSE(cluster_.host("remote").kernel().Find(p)->alive());
}

TEST_F(RemoteProcFsTest, NoEventDetection) {
  // "those aspects of process management that incorporate event
  // detection cannot be handled by that approach": between two reads,
  // any number of state changes are invisible.
  Kernel& kernel = cluster_.host("remote").kernel();
  Pid p = kernel.Spawn(kNoPid, kTestUid, "flapper");
  std::optional<ProcFsResult> before;
  ProcFsRead(cluster_.host("local"), "remote", p,
             [&](const ProcFsResult& r) { before = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return before.has_value(); }));
  // The process stops and resumes between polls.
  kernel.PostSignal(p, Signal::kSigStop, kTestUid);
  cluster_.RunFor(sim::Millis(100));
  kernel.PostSignal(p, Signal::kSigCont, kTestUid);
  cluster_.RunFor(sim::Millis(100));
  std::optional<ProcFsResult> after;
  ProcFsRead(cluster_.host("local"), "remote", p,
             [&](const ProcFsResult& r) { after = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return after.has_value(); }));
  // Both reads say "running": the stop/cont episode left no trace — the
  // PPM's kernel-event history would have recorded both transitions.
  EXPECT_NE(before->content.find("state running"), std::string::npos);
  EXPECT_NE(after->content.find("state running"), std::string::npos);
}

TEST_F(RemoteProcFsTest, ServerUnreachableFailsCleanly) {
  cluster_.Crash("remote");
  cluster_.RunFor(sim::Millis(300));
  std::optional<ProcFsResult> result;
  ProcFsList(cluster_.host("local"), "remote",
             [&](const ProcFsResult& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }, sim::Seconds(10)));
  EXPECT_FALSE(result->ok);
}

}  // namespace
}  // namespace ppm::host

// lpm_test.cc — end-to-end PPM behaviour: session establishment, the LPM
// as creation server, cross-host control, snapshots, history, triggers,
// adoption, handler pool, and time-to-live.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/lpm.h"
#include "tests/test_util.h"
#include "tools/client.h"

namespace ppm::core {
namespace {

using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::kTestUser;
using test::RunUntil;
using tools::PpmClient;

class LpmTest : public ::testing::Test {
 protected:
  LpmTest() {
    test::BuildThreeSegments(cluster_);
    InstallTestUser(cluster_, {"vaxA", "vaxB"});
    cluster_.RunFor(sim::Millis(10));
  }

  // Creates a process via `client` and waits for the result.
  GPid Create(PpmClient& client, const std::string& host, const std::string& command,
              const GPid& parent = {}) {
    std::optional<CreateResp> result;
    client.CreateProcess(host, command, parent,
                         [&](const CreateResp& r) { result = r; });
    EXPECT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
    EXPECT_TRUE(result && result->ok) << (result ? result->error : "no response");
    return result ? result->gpid : GPid{};
  }

  SnapshotResp Snap(PpmClient& client) {
    std::optional<SnapshotResp> result;
    client.Snapshot([&](const SnapshotResp& r) { result = r; });
    EXPECT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }, sim::Seconds(120)));
    return result.value_or(SnapshotResp{});
  }

  Cluster cluster_;
};

TEST_F(LpmTest, ToolSessionEstablishes) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->connected());
  EXPECT_EQ(client->lpm_host(), "vaxA");
  // First invocation made this LPM the default CCS.
  EXPECT_EQ(client->session_ccs(), "vaxA");
  Lpm* lpm = cluster_.FindLpm("vaxA", kTestUid);
  ASSERT_NE(lpm, nullptr);
  EXPECT_TRUE(lpm->is_ccs());
}

TEST_F(LpmTest, ToolWithWrongUidRejected) {
  cluster_.AddUserEverywhere("eve", 200);
  PpmClient* client = tools::SpawnTool(cluster_.host("vaxA"), kTestUser, 200, "evil");
  bool done = false, ok = true;
  client->Start([&](bool success, std::string) {
    done = true;
    ok = success;
  });
  RunUntil(cluster_, [&] { return done; });
  EXPECT_FALSE(ok);
}

TEST_F(LpmTest, CreateLocalProcess) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid g = Create(*client, "vaxA", "cruncher");
  EXPECT_EQ(g.host, "vaxA");
  const host::Process* proc = cluster_.host("vaxA").kernel().Find(g.pid);
  ASSERT_NE(proc, nullptr);
  EXPECT_TRUE(proc->alive());
  EXPECT_EQ(proc->command, "cruncher");
  EXPECT_EQ(proc->uid, kTestUid);
  // Created adopted: the LPM tracks it.
  EXPECT_NE(proc->adopter, host::kNoPid);
  EXPECT_EQ(cluster_.FindLpm("vaxA", kTestUid)->adopted_live_count(), 1u);
}

TEST_F(LpmTest, CreateRemoteProcessOneHop) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid g = Create(*client, "vaxB", "remote-worker");
  EXPECT_EQ(g.host, "vaxB");
  const host::Process* proc = cluster_.host("vaxB").kernel().Find(g.pid);
  ASSERT_NE(proc, nullptr);
  EXPECT_TRUE(proc->alive());
  // A sibling channel now exists between the two LPMs (Figure 3).
  Lpm* a = cluster_.FindLpm("vaxA", kTestUid);
  Lpm* b = cluster_.FindLpm("vaxB", kTestUid);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->sibling_hosts(), std::vector<std::string>{"vaxB"});
  EXPECT_EQ(b->sibling_hosts(), std::vector<std::string>{"vaxA"});
  // The remote LPM learned the CCS from the Hello exchange.
  EXPECT_EQ(b->ccs_host(), "vaxA");
  EXPECT_FALSE(b->is_ccs());
}

TEST_F(LpmTest, CreateRemoteProcessTwoHops) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid g = Create(*client, "vaxC", "far-worker");
  EXPECT_EQ(g.host, "vaxC");
  EXPECT_TRUE(cluster_.host("vaxC").kernel().Find(g.pid)->alive());
}

TEST_F(LpmTest, CreateOnUnknownHostFails) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  std::optional<CreateResp> result;
  client->CreateProcess("nonesuch", "x", {}, [&](const CreateResp& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  EXPECT_FALSE(result->ok);
}

TEST_F(LpmTest, SignalRemoteProcess) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid g = Create(*client, "vaxB", "victim");
  std::optional<SignalResp> result;
  client->Signal(g, host::Signal::kSigStop, [&](const SignalResp& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  EXPECT_TRUE(result->ok) << result->error;
  EXPECT_EQ(cluster_.host("vaxB").kernel().Find(g.pid)->state,
            host::ProcState::kStopped);
  // Resume it.
  result.reset();
  client->Signal(g, host::Signal::kSigCont, [&](const SignalResp& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  EXPECT_EQ(cluster_.host("vaxB").kernel().Find(g.pid)->state,
            host::ProcState::kRunning);
}

TEST_F(LpmTest, SignalDeadProcessFails) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid g = Create(*client, "vaxB", "shortlived");
  cluster_.host("vaxB").kernel().PostSignal(g.pid, host::Signal::kSigKill, kTestUid);
  cluster_.RunFor(sim::Seconds(1));
  std::optional<SignalResp> result;
  client->Signal(g, host::Signal::kSigTerm, [&](const SignalResp& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  EXPECT_FALSE(result->ok);
}

TEST_F(LpmTest, SnapshotSpansThreeHostsAsTree) {
  // Reproduces the shape of Figure 1: a computation spanning three
  // hosts, rooted at one process.
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid root = Create(*client, "vaxA", "root");
  GPid left = Create(*client, "vaxB", "left", root);
  GPid right = Create(*client, "vaxC", "right", root);
  GPid leaf = Create(*client, "vaxC", "leaf", right);

  SnapshotResp snap = Snap(*client);
  ASSERT_EQ(snap.records.size(), 4u);
  // Coverage: all three hosts replied.
  EXPECT_EQ(snap.forwarded_to.size(), 3u);

  // Verify parentage edges.
  auto find = [&](const GPid& g) -> const ProcRecord* {
    for (const auto& r : snap.records)
      if (r.gpid == g) return &r;
    return nullptr;
  };
  ASSERT_NE(find(root), nullptr);
  ASSERT_NE(find(leaf), nullptr);
  EXPECT_EQ(find(left)->logical_parent, root);
  EXPECT_EQ(find(right)->logical_parent, root);
  EXPECT_EQ(find(leaf)->logical_parent, right);
  EXPECT_FALSE(find(root)->logical_parent.valid());
}

TEST_F(LpmTest, ExitedInteriorNodeRetainedAndMarked) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid root = Create(*client, "vaxA", "root");
  GPid mid = Create(*client, "vaxB", "mid", root);
  GPid leaf = Create(*client, "vaxB", "leaf", mid);
  (void)leaf;
  // Kill the middle process; its child lives on.
  cluster_.host("vaxB").kernel().PostSignal(mid.pid, host::Signal::kSigKill, kTestUid);
  cluster_.RunFor(sim::Seconds(1));

  SnapshotResp snap = Snap(*client);
  const ProcRecord* mid_rec = nullptr;
  for (const auto& r : snap.records)
    if (r.gpid == mid) mid_rec = &r;
  ASSERT_NE(mid_rec, nullptr) << "exited interior node must be retained";
  EXPECT_TRUE(mid_rec->exited);
}

TEST_F(LpmTest, ExitedLeafEventuallyDropsFromSnapshot) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid root = Create(*client, "vaxA", "root");
  GPid leaf = Create(*client, "vaxA", "leaf", root);
  cluster_.host("vaxA").kernel().PostSignal(leaf.pid, host::Signal::kSigKill, kTestUid);
  cluster_.RunFor(sim::Seconds(1));
  SnapshotResp snap = Snap(*client);
  // Leaf anchored nothing, so it is not in the genealogical display.
  for (const auto& r : snap.records) EXPECT_NE(r.gpid, leaf);
  ASSERT_EQ(snap.records.size(), 1u);
  EXPECT_EQ(snap.records[0].gpid, root);
}

TEST_F(LpmTest, ForkInheritanceVisibleInSnapshot) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid root = Create(*client, "vaxA", "root");
  // The process forks on its own (outside the PPM request path).
  host::Pid kid = cluster_.host("vaxA").kernel().Spawn(root.pid, kTestUid, "self-fork");
  cluster_.RunFor(sim::Seconds(1));  // kernel fork event reaches the LPM
  SnapshotResp snap = Snap(*client);
  const ProcRecord* kid_rec = nullptr;
  for (const auto& r : snap.records)
    if (r.gpid.pid == kid) kid_rec = &r;
  ASSERT_NE(kid_rec, nullptr) << "kernel fork event should add the child";
  EXPECT_EQ(kid_rec->logical_parent, root);
}

TEST_F(LpmTest, AdoptExistingTree) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  // A pre-existing computation, started outside the PPM.
  host::Kernel& kernel = cluster_.host("vaxA").kernel();
  host::Pid root = kernel.Spawn(host::kNoPid, kTestUid, "old-root");
  host::Pid kid = kernel.Spawn(root, kTestUid, "old-kid");
  std::optional<AdoptResp> result;
  client->Adopt(GPid{"vaxA", root}, host::kTraceAll,
                [&](const AdoptResp& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_EQ(result->adopted_pids.size(), 2u);
  SnapshotResp snap = Snap(*client);
  EXPECT_EQ(snap.records.size(), 2u);
  // Parent link derived from kernel genealogy.
  for (const auto& r : snap.records) {
    if (r.gpid.pid == kid) {
      EXPECT_EQ(r.logical_parent, (GPid{"vaxA", root}));
    }
  }
}

TEST_F(LpmTest, AdoptForeignProcessFails) {
  cluster_.AddUserEverywhere("eve", 200);
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  host::Pid foreign = cluster_.host("vaxA").kernel().Spawn(host::kNoPid, 200, "foreign");
  std::optional<AdoptResp> result;
  client->Adopt(GPid{"vaxA", foreign}, host::kTraceAll,
                [&](const AdoptResp& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  EXPECT_FALSE(result->ok);
}

TEST_F(LpmTest, RusageOfExitedProcesses) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid g = Create(*client, "vaxA", "worker");
  cluster_.host("vaxA").kernel().PostSignal(g.pid, host::Signal::kSigKill, kTestUid);
  cluster_.RunFor(sim::Seconds(1));
  std::optional<RusageResp> result;
  client->Rusage("", [&](const RusageResp& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_TRUE(result->ok);
  ASSERT_EQ(result->records.size(), 1u);
  EXPECT_EQ(result->records[0].gpid, g);
  EXPECT_TRUE(result->records[0].killed_by_signal);
  EXPECT_EQ(result->records[0].death_signal, host::Signal::kSigKill);
}

TEST_F(LpmTest, RemoteRusage) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid g = Create(*client, "vaxB", "remote-worker");
  cluster_.host("vaxB").kernel().PostSignal(g.pid, host::Signal::kSigKill, kTestUid);
  cluster_.RunFor(sim::Seconds(1));
  std::optional<RusageResp> result;
  client->Rusage("vaxB", [&](const RusageResp& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_TRUE(result->ok) << result->error;
  ASSERT_EQ(result->records.size(), 1u);
  EXPECT_EQ(result->records[0].gpid, g);
}

TEST_F(LpmTest, HistoryRecordsLifecycle) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid g = Create(*client, "vaxA", "hist");
  cluster_.host("vaxA").kernel().PostSignal(g.pid, host::Signal::kSigStop, kTestUid);
  cluster_.RunFor(sim::Millis(200));
  cluster_.host("vaxA").kernel().PostSignal(g.pid, host::Signal::kSigCont, kTestUid);
  cluster_.RunFor(sim::Millis(200));
  cluster_.host("vaxA").kernel().PostSignal(g.pid, host::Signal::kSigKill, kTestUid);
  cluster_.RunFor(sim::Millis(200));
  std::optional<HistoryResp> result;
  client->History("", g.pid, 0, [&](const HistoryResp& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_TRUE(result->ok);
  std::vector<host::KEvent> kinds;
  for (const auto& ev : result->events) kinds.push_back(ev.kind);
  EXPECT_EQ(kinds, (std::vector<host::KEvent>{host::KEvent::kExec, host::KEvent::kStop,
                                              host::KEvent::kContinue,
                                              host::KEvent::kExit}));
}

TEST_F(LpmTest, GranularityMaskFiltersHistory) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  Lpm* lpm = cluster_.FindLpm("vaxA", kTestUid);
  ASSERT_NE(lpm, nullptr);
  lpm->set_granularity_mask(host::kTraceExit);  // record exits only
  GPid g = Create(*client, "vaxA", "quiet");
  cluster_.host("vaxA").kernel().PostSignal(g.pid, host::Signal::kSigStop, kTestUid);
  cluster_.RunFor(sim::Millis(200));
  cluster_.host("vaxA").kernel().PostSignal(g.pid, host::Signal::kSigKill, kTestUid);
  cluster_.RunFor(sim::Millis(200));
  std::optional<HistoryResp> result;
  client->History("", g.pid, 0, [&](const HistoryResp& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_EQ(result->events.size(), 1u);
  EXPECT_EQ(result->events[0].kind, host::KEvent::kExit);
  EXPECT_GT(lpm->event_log().total_filtered(), 0u);
}

TEST_F(LpmTest, TriggerFiresLocally) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid watched = Create(*client, "vaxA", "watched");
  GPid dependent = Create(*client, "vaxA", "dependent");
  // When `watched` exits, kill `dependent`.
  TriggerSpec spec;
  spec.event_kind = host::KEvent::kExit;
  spec.subject_pid = watched.pid;
  spec.action_signal = host::Signal::kSigKill;
  spec.action_target = dependent;
  std::optional<TriggerResp> installed;
  client->InstallTrigger("", spec, [&](const TriggerResp& r) { installed = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return installed.has_value(); }));
  ASSERT_TRUE(installed->ok);

  cluster_.host("vaxA").kernel().PostSignal(watched.pid, host::Signal::kSigKill, kTestUid);
  ASSERT_TRUE(RunUntil(cluster_, [&] {
    const host::Process* p = cluster_.host("vaxA").kernel().Find(dependent.pid);
    return p == nullptr || !p->alive();
  }));
  EXPECT_GT(cluster_.FindLpm("vaxA", kTestUid)->stats().triggers_fired, 0u);
}

TEST_F(LpmTest, TriggerActsAcrossHosts) {
  // History-dependent, cross-machine state change: exit on vaxA stops a
  // process on vaxC (two hops away).
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid watched = Create(*client, "vaxA", "watched");
  GPid far = Create(*client, "vaxC", "far");
  TriggerSpec spec;
  spec.event_kind = host::KEvent::kExit;
  spec.subject_pid = watched.pid;
  spec.action_signal = host::Signal::kSigStop;
  spec.action_target = far;
  std::optional<TriggerResp> installed;
  client->InstallTrigger("", spec, [&](const TriggerResp& r) { installed = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return installed.has_value(); }));

  cluster_.host("vaxA").kernel().PostSignal(watched.pid, host::Signal::kSigKill, kTestUid);
  ASSERT_TRUE(RunUntil(cluster_, [&] {
    return cluster_.host("vaxC").kernel().Find(far.pid)->state ==
           host::ProcState::kStopped;
  }));
}

TEST_F(LpmTest, TriggersAreOneShot) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid a = Create(*client, "vaxA", "a");
  GPid b = Create(*client, "vaxA", "b");
  TriggerSpec spec;
  spec.event_kind = host::KEvent::kStop;
  spec.subject_pid = a.pid;
  spec.action_signal = host::Signal::kSigStop;
  spec.action_target = b;
  std::optional<TriggerResp> installed;
  client->InstallTrigger("", spec, [&](const TriggerResp& r) { installed = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return installed.has_value(); }));

  host::Kernel& kernel = cluster_.host("vaxA").kernel();
  kernel.PostSignal(a.pid, host::Signal::kSigStop, kTestUid);
  ASSERT_TRUE(RunUntil(cluster_, [&] {
    return kernel.Find(b.pid)->state == host::ProcState::kStopped;
  }));
  // Resume b, stop a again: the trigger must not re-fire.
  kernel.PostSignal(b.pid, host::Signal::kSigCont, kTestUid);
  kernel.PostSignal(a.pid, host::Signal::kSigCont, kTestUid);
  cluster_.RunFor(sim::Seconds(1));
  kernel.PostSignal(a.pid, host::Signal::kSigStop, kTestUid);
  cluster_.RunFor(sim::Seconds(2));
  EXPECT_EQ(kernel.Find(b.pid)->state, host::ProcState::kRunning);
}

TEST_F(LpmTest, OpenFilesQuery) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  GPid g = Create(*client, "vaxB", "filer");
  cluster_.host("vaxB").kernel().OpenFileFor(g.pid, "/etc/motd", "r");
  cluster_.host("vaxB").kernel().OpenFileFor(g.pid, "/tmp/out", "w");
  std::optional<FilesResp> result;
  client->OpenFiles(g, [&](const FilesResp& r) { result = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return result.has_value(); }));
  ASSERT_TRUE(result->ok) << result->error;
  ASSERT_EQ(result->files.size(), 2u);
  EXPECT_EQ(result->files[0].path, "/etc/motd");
  EXPECT_EQ(result->files[1].mode, "w");
}

TEST_F(LpmTest, EndpointInventoryMatchesFigure4) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  Create(*client, "vaxB", "w1");
  Create(*client, "vaxC", "w2");
  Lpm* lpm = cluster_.FindLpm("vaxA", kTestUid);
  ASSERT_NE(lpm, nullptr);
  LpmEndpoints ep = lpm->Endpoints();
  EXPECT_TRUE(ep.kernel_socket);
  EXPECT_TRUE(ep.accept_socket.valid());
  EXPECT_EQ(ep.siblings.size(), 2u);
  EXPECT_EQ(ep.tool_circuits, 1u);
}

TEST_F(LpmTest, HandlersAreReused) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  for (int i = 0; i < 5; ++i) Create(*client, "vaxA", "w" + std::to_string(i));
  Lpm* lpm = cluster_.FindLpm("vaxA", kTestUid);
  ASSERT_NE(lpm, nullptr);
  // Sequential requests: one handler forked once, then reused.
  EXPECT_EQ(lpm->stats().handlers_created, 1u);
  EXPECT_GE(lpm->stats().handler_reuses, 4u);
}

TEST_F(LpmTest, ForkPerRequestPolicyCreatesHandlerPerRequest) {
  ClusterConfig config;
  config.lpm.handler_reuse = false;
  Cluster cluster(config);
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);
  for (int i = 0; i < 4; ++i) {
    std::optional<CreateResp> result;
    client->CreateProcess("solo", "w", {}, [&](const CreateResp& r) { result = r; });
    ASSERT_TRUE(RunUntil(cluster, [&] { return result.has_value(); }));
  }
  Lpm* lpm = cluster.FindLpm("solo", kTestUid);
  ASSERT_NE(lpm, nullptr);
  EXPECT_EQ(lpm->stats().handlers_created, 4u);
  EXPECT_EQ(lpm->stats().handler_reuses, 0u);
}

// --- time-to-live -----------------------------------------------------------------

TEST(LpmTtlTest, IdleLpmExitsAfterTtlAndUnregisters) {
  ClusterConfig config;
  config.lpm.time_to_live = sim::Seconds(30);
  Cluster cluster(config);
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);
  Lpm* lpm = cluster.FindLpm("solo", kTestUid);
  ASSERT_NE(lpm, nullptr);
  EXPECT_FALSE(lpm->ttl_armed());  // tool connected

  client->Disconnect();
  cluster.RunFor(sim::Seconds(1));
  ASSERT_NE(cluster.FindLpm("solo", kTestUid), nullptr);
  EXPECT_TRUE(cluster.FindLpm("solo", kTestUid)->ttl_armed());

  cluster.RunFor(sim::Seconds(35));
  EXPECT_EQ(cluster.FindLpm("solo", kTestUid), nullptr);
  // pmd registry cleaned: a new request creates a fresh LPM.
  daemon::Pmd* pmd = cluster.FindPmd("solo");
  ASSERT_NE(pmd, nullptr);
  EXPECT_EQ(pmd->registry_size(), 0u);
}

TEST(LpmTtlTest, LiveProcessesBlockTtl) {
  ClusterConfig config;
  config.lpm.time_to_live = sim::Seconds(30);
  Cluster cluster(config);
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);
  std::optional<CreateResp> created;
  client->CreateProcess("solo", "longrunner", {},
                        [&](const CreateResp& r) { created = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return created.has_value(); }));
  client->Disconnect();
  cluster.RunFor(sim::Seconds(60));
  // The PPM outlives the login session while user processes remain.
  ASSERT_NE(cluster.FindLpm("solo", kTestUid), nullptr);
  // Kill the process: now the TTL runs out.
  cluster.host("solo").kernel().PostSignal(created->gpid.pid, host::Signal::kSigKill,
                                           kTestUid);
  cluster.RunFor(sim::Seconds(60));
  EXPECT_EQ(cluster.FindLpm("solo", kTestUid), nullptr);
}

TEST(LpmTtlTest, ReconnectAfterLogoutFindsSameLpm) {
  // "a user's request for a LPM following a new login will yield an
  // existing one" — knowledge and control of running processes persists.
  ClusterConfig config;
  config.lpm.time_to_live = sim::Seconds(600);
  Cluster cluster(config);
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* first = ConnectTool(cluster, "solo");
  ASSERT_NE(first, nullptr);
  std::optional<CreateResp> created;
  first->CreateProcess("solo", "daemon-like", {},
                       [&](const CreateResp& r) { created = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return created.has_value(); }));
  Lpm* lpm_before = cluster.FindLpm("solo", kTestUid);
  first->Disconnect();
  cluster.RunFor(sim::Seconds(120));  // "logged out" for two minutes

  PpmClient* second = ConnectTool(cluster, "solo", "newlogin");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(cluster.FindLpm("solo", kTestUid), lpm_before);
  // The old computation is still visible.
  std::optional<SnapshotResp> snap;
  second->Snapshot([&](const SnapshotResp& r) { snap = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return snap.has_value(); }));
  ASSERT_EQ(snap->records.size(), 1u);
  EXPECT_EQ(snap->records[0].gpid, created->gpid);
}

}  // namespace
}  // namespace ppm::core

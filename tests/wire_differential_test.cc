// wire_differential_test.cc — locks the zero-copy codec to the wire
// format, byte for byte.  `ref` below retains the ByteWriter-based
// encoder the WireBuffer codec replaced, verbatim minus metrics; a
// seeded generator drives ~10k randomized frames covering every opcode,
// the STAT escape pair, and both header combinations (checksum only /
// checksum + trace) through both encoders and asserts the outputs are
// identical.  Round trips then prove parse(encode(x)) == x through the
// owning and zero-copy paths alike.  Any intentional format change must
// update the reference encoder here — which is the point: the diff makes
// the wire change explicit instead of letting it ride along silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/wire.h"
#include "obs/trace.h"
#include "util/bytes.h"

namespace ppm::core {
namespace {

// --- reference encoder (retained pre-WireBuffer implementation) ------------

namespace ref {

uint16_t Fletcher16(const uint8_t* p, size_t n) {
  uint32_t lo = 0, hi = 0;
  for (size_t i = 0; i < n; ++i) {
    lo = (lo + p[i]) % 255;
    hi = (hi + lo) % 255;
  }
  return static_cast<uint16_t>((hi << 8) | lo);
}

std::vector<uint8_t> WrapChecksum(const std::vector<uint8_t>& body) {
  uint16_t ck = Fletcher16(body.data(), body.size());
  std::vector<uint8_t> out;
  out.reserve(body.size() + kChecksumHeaderBytes);
  out.push_back(kChecksumHeaderTag);
  out.push_back(static_cast<uint8_t>(ck & 0xff));
  out.push_back(static_cast<uint8_t>(ck >> 8));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void PutGPid(util::ByteWriter& w, const GPid& g) {
  w.Str(g.host);
  w.I32(g.pid);
}

void PutStrVec(util::ByteWriter& w, const std::vector<std::string>& v) {
  w.U32(static_cast<uint32_t>(v.size()));
  for (const auto& s : v) w.Str(s);
}

void PutProcRecord(util::ByteWriter& w, const ProcRecord& rec) {
  PutGPid(w, rec.gpid);
  PutGPid(w, rec.logical_parent);
  w.I32(rec.uid);
  w.Str(rec.command);
  w.U8(static_cast<uint8_t>(rec.state));
  w.Bool(rec.exited);
  w.U64(rec.start_time);
  w.U64(rec.end_time);
  w.U64(static_cast<uint64_t>(rec.cpu_time));
}

void PutRusageRecord(util::ByteWriter& w, const RusageRecord& rec) {
  PutGPid(w, rec.gpid);
  w.Str(rec.command);
  w.I32(rec.exit_status);
  w.Bool(rec.killed_by_signal);
  w.U8(static_cast<uint8_t>(rec.death_signal));
  w.U64(rec.start_time);
  w.U64(rec.end_time);
  w.U64(static_cast<uint64_t>(rec.rusage.cpu_time));
  w.U64(rec.rusage.messages_sent);
  w.U64(rec.rusage.messages_received);
  w.U64(rec.rusage.files_opened);
  w.U64(rec.rusage.max_rss_kb);
  w.U64(rec.rusage.forks);
}

void PutHistEvent(util::ByteWriter& w, const HistEvent& ev) {
  w.U64(ev.at);
  w.U8(static_cast<uint8_t>(ev.kind));
  w.I32(ev.pid);
  w.I32(ev.other);
  w.U8(static_cast<uint8_t>(ev.sig));
  w.I32(ev.status);
  w.Str(ev.detail);
}

void PutTriggerSpec(util::ByteWriter& w, const TriggerSpec& spec) {
  w.U8(static_cast<uint8_t>(spec.event_kind));
  w.I32(spec.subject_pid);
  w.U8(static_cast<uint8_t>(spec.action));
  w.U8(static_cast<uint8_t>(spec.action_signal));
  PutGPid(w, spec.action_target);
  w.Str(spec.migrate_dest);
  w.Str(spec.spawn_command);
  w.Str(spec.group);
}

void PutLpmStatRecord(util::ByteWriter& w, const LpmStatRecord& rec) {
  w.Str(rec.host);
  w.Str(rec.user);
  w.I32(rec.uid);
  w.I32(rec.lpm_pid);
  w.U8(rec.mode);
  w.Bool(rec.is_ccs);
  w.Str(rec.ccs_host);
  w.I32(rec.recovery_rank);
  PutStrVec(w, rec.siblings);
  w.U32(rec.handlers);
  w.U32(rec.handlers_busy);
  w.U32(rec.queue_depth);
  w.U32(rec.queue_watermark);
  w.U32(rec.tool_circuits);
  w.U64(rec.requests);
  w.U64(rec.forwards);
  w.U64(rec.kernel_events);
  w.U64(rec.handlers_created);
  w.U64(rec.handler_reuses);
  w.U64(rec.snapshots_served);
  w.U64(rec.bcasts_originated);
  w.U64(rec.bcast_duplicates);
  w.U64(rec.triggers_fired);
  w.U64(rec.failures_detected);
  w.U64(rec.recoveries_started);
  w.U64(rec.request_timeouts);
  w.U64(rec.requests_shed);
  w.U64(rec.busy_sent);
  w.U64(rec.retries);
  w.U64(rec.deadline_expired);
  w.U64(rec.dup_suppressed);
  w.U32(rec.breaker_open);
  w.U64(rec.eventlog_size);
  w.U64(rec.eventlog_recorded);
  w.U64(rec.eventlog_filtered);
  w.U64(rec.eventlog_dropped);
  w.U32(static_cast<uint32_t>(rec.dropped_by_pid.size()));
  for (const PidDrop& d : rec.dropped_by_pid) {
    w.I32(d.pid);
    w.U64(d.dropped);
  }
  w.Bool(rec.store_enabled);
  w.U64(rec.journal_seq);
  w.U64(rec.journal_bytes);
  w.U32(rec.journal_pending);
  w.U32(rec.pmd_registry);
  w.U64(rec.pmd_requests);
  w.U64(rec.flight_records);
  w.U64(rec.flight_dumps);
  w.U8(rec.health);
  PutStrVec(w, rec.health_reasons);
  w.U32(static_cast<uint32_t>(rec.procs.size()));
  for (const auto& p : rec.procs) PutProcRecord(w, p);
  w.U32(static_cast<uint32_t>(rec.groups.size()));
  for (const GroupStatEntry& g : rec.groups) {
    w.Str(g.name);
    w.U32(g.members);
    w.U32(g.exited);
  }
  w.U32(static_cast<uint32_t>(rec.barriers.size()));
  for (const BarrierStatEntry& b : rec.barriers) {
    w.Str(b.name);
    w.U64(b.epoch);
    w.U32(b.waiters);
    w.U32(b.expected);
  }
  w.U32(rec.envars);
  w.U32(rec.envar_watchers);
  w.U64(rec.acct_cpu_us);
  w.U64(rec.acct_rusage_records);
}

void PutStatReq(util::ByteWriter& w, const StatReq& m) {
  w.U64(m.req_id);
  w.Str(m.origin_host);
  w.U64(m.bcast_seq);
  w.U64(m.signed_ts);
  PutStrVec(w, m.route);
  w.Bool(m.dump_flight);
}

void PutStatResp(util::ByteWriter& w, const StatResp& m) {
  w.U64(m.req_id);
  w.Str(m.origin_host);
  w.U64(m.bcast_seq);
  w.Str(m.replier_host);
  PutStrVec(w, m.forwarded_to);
  PutStrVec(w, m.route);
  w.U32(static_cast<uint32_t>(m.route_index));
  w.U32(static_cast<uint32_t>(m.records.size()));
  for (const auto& rec : m.records) PutLpmStatRecord(w, rec);
}

void PutStatDeltaRecord(util::ByteWriter& w, const StatDeltaRecord& rec) {
  w.Str(rec.host);
  w.Str(rec.user);
  w.I32(rec.uid);
  w.U64(rec.seq);
  w.U64(rec.t_us);
  w.U64(rec.dt_us);
  w.U64(rec.d_kernel_events);
  w.U64(rec.d_requests);
  w.U64(rec.d_requests_shed);
  w.U64(rec.d_retries);
  w.U64(rec.d_journal_bytes);
  w.U64(rec.d_eventlog_recorded);
  w.U64(rec.d_acct_cpu_us);
  w.U32(rec.queue_depth);
  w.U32(rec.procs_live);
  w.U8(rec.health);
}

void EncodeMsg(util::ByteWriter& w, const Msg& msg) {
  if (const auto* sub = std::get_if<StatSubscribe>(&msg)) {
    w.U8(kStatMsgTag);
    w.U8(kStatSubscribeSub);
    w.U64(sub->req_id);
    w.Str(sub->origin_host);
    w.U64(sub->watch_id);
    w.U64(sub->bcast_seq);
    w.U64(sub->signed_ts);
    PutStrVec(w, sub->route);
    w.U64(sub->interval_us);
    return;
  }
  if (const auto* delta = std::get_if<StatDelta>(&msg)) {
    w.U8(kStatMsgTag);
    w.U8(kStatDeltaSub);
    w.U64(delta->req_id);
    w.Str(delta->origin_host);
    w.U64(delta->watch_id);
    w.U32(static_cast<uint32_t>(delta->records.size()));
    for (const auto& rec : delta->records) PutStatDeltaRecord(w, rec);
    return;
  }
  if (const auto* unsub = std::get_if<StatUnsubscribe>(&msg)) {
    w.U8(kStatMsgTag);
    w.U8(kStatUnsubscribeSub);
    w.U64(unsub->req_id);
    w.Str(unsub->origin_host);
    w.U64(unsub->watch_id);
    return;
  }
  if (const auto* req = std::get_if<StatReq>(&msg)) {
    w.U8(kStatMsgTag);
    w.U8(kStatReqSub);
    PutStatReq(w, *req);
    return;
  }
  if (const auto* resp = std::get_if<StatResp>(&msg)) {
    w.U8(kStatMsgTag);
    w.U8(kStatRespSub);
    PutStatResp(w, *resp);
    return;
  }
  if (const auto* busy = std::get_if<BusyResp>(&msg)) {
    w.U8(kBusyMsgTag);
    w.U64(busy->req_id);
    w.Str(busy->error);
    w.U64(busy->retry_after_us);
    return;
  }
  w.U8(static_cast<uint8_t>(msg.index()));
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, HelloSibling>) {
          w.Str(m.user);
          w.Str(m.origin_host);
          w.I32(m.origin_lpm_pid);
          w.U64(m.token);
          w.Str(m.ccs_host);
        } else if constexpr (std::is_same_v<T, HelloTool>) {
          w.Str(m.user);
          w.I32(m.uid);
          w.Str(m.tool_name);
        } else if constexpr (std::is_same_v<T, HelloAck>) {
          w.Str(m.host);
          w.I32(m.lpm_pid);
          w.Str(m.ccs_host);
        } else if constexpr (std::is_same_v<T, HelloReject>) {
          w.Str(m.reason);
        } else if constexpr (std::is_same_v<T, CreateReq>) {
          w.U64(m.req_id);
          w.Str(m.target_host);
          w.Str(m.command);
          PutGPid(w, m.logical_parent);
          w.Bool(m.initially_running);
          w.U32(m.trace_mask);
        } else if constexpr (std::is_same_v<T, CreateResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          PutGPid(w, m.gpid);
        } else if constexpr (std::is_same_v<T, SignalReq>) {
          w.U64(m.req_id);
          PutGPid(w, m.target);
          w.U8(static_cast<uint8_t>(m.sig));
        } else if constexpr (std::is_same_v<T, SignalResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
        } else if constexpr (std::is_same_v<T, SnapshotReq>) {
          w.U64(m.req_id);
          w.Str(m.origin_host);
          w.U64(m.bcast_seq);
          w.U64(m.signed_ts);
          PutStrVec(w, m.route);
        } else if constexpr (std::is_same_v<T, SnapshotResp>) {
          w.U64(m.req_id);
          w.Str(m.origin_host);
          w.U64(m.bcast_seq);
          w.Str(m.replier_host);
          PutStrVec(w, m.forwarded_to);
          PutStrVec(w, m.route);
          w.U32(static_cast<uint32_t>(m.route_index));
          w.U32(static_cast<uint32_t>(m.records.size()));
          for (const auto& rec : m.records) PutProcRecord(w, rec);
        } else if constexpr (std::is_same_v<T, RusageReq>) {
          w.U64(m.req_id);
          w.Str(m.target_host);
        } else if constexpr (std::is_same_v<T, RusageResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U32(static_cast<uint32_t>(m.records.size()));
          for (const auto& rec : m.records) PutRusageRecord(w, rec);
        } else if constexpr (std::is_same_v<T, AdoptReq>) {
          w.U64(m.req_id);
          PutGPid(w, m.target);
          w.U32(m.trace_mask);
        } else if constexpr (std::is_same_v<T, AdoptResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U32(static_cast<uint32_t>(m.adopted_pids.size()));
          for (int32_t pid : m.adopted_pids) w.I32(pid);
        } else if constexpr (std::is_same_v<T, TraceReq>) {
          w.U64(m.req_id);
          PutGPid(w, m.target);
          w.U32(m.trace_mask);
        } else if constexpr (std::is_same_v<T, TraceResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
        } else if constexpr (std::is_same_v<T, HistoryReq>) {
          w.U64(m.req_id);
          w.Str(m.target_host);
          w.I32(m.pid_filter);
          w.U32(m.max_events);
        } else if constexpr (std::is_same_v<T, HistoryResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U32(static_cast<uint32_t>(m.events.size()));
          for (const auto& ev : m.events) PutHistEvent(w, ev);
        } else if constexpr (std::is_same_v<T, TriggerReq>) {
          w.U64(m.req_id);
          w.Str(m.target_host);
          PutTriggerSpec(w, m.spec);
        } else if constexpr (std::is_same_v<T, TriggerResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U64(m.trigger_id);
        } else if constexpr (std::is_same_v<T, FilesReq>) {
          w.U64(m.req_id);
          PutGPid(w, m.target);
        } else if constexpr (std::is_same_v<T, FilesResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          w.U32(static_cast<uint32_t>(m.files.size()));
          for (const auto& f : m.files) {
            w.I32(f.fd);
            w.Str(f.path);
            w.Str(f.mode);
          }
        } else if constexpr (std::is_same_v<T, MigrateReq>) {
          w.U64(m.req_id);
          PutGPid(w, m.target);
          w.Str(m.dest_host);
        } else if constexpr (std::is_same_v<T, MigrateResp>) {
          w.U64(m.req_id);
          w.Bool(m.ok);
          w.Str(m.error);
          PutGPid(w, m.new_gpid);
        } else if constexpr (std::is_same_v<T, RegisterChild>) {
          w.I32(m.parent_pid);
          PutGPid(w, m.child);
        } else if constexpr (std::is_same_v<T, BecomeCcs>) {
          w.Str(m.requested_by);
        } else if constexpr (std::is_same_v<T, CcsChanged>) {
          w.Str(m.new_ccs);
        } else if constexpr (std::is_same_v<T, Probe>) {
          w.U64(m.req_id);
        } else if constexpr (std::is_same_v<T, ProbeAck>) {
          w.U64(m.req_id);
          w.Str(m.host);
          w.Bool(m.is_ccs);
        }
      },
      msg);
}

std::vector<uint8_t> Serialize(const Msg& msg, const obs::TraceContext& trace,
                               const DeadlineStamp& stamp = {}) {
  util::ByteWriter w;
  if (trace.valid()) {
    w.U8(kTraceHeaderTag);
    w.U64(trace.trace_id);
    w.U64(trace.span_id);
    w.U64(trace.parent_span);
  }
  if (stamp.valid()) {
    w.U8(kDeadlineHeaderTag);
    w.U64(stamp.deadline_us);
    w.U64(stamp.idem_token);
  }
  EncodeMsg(w, msg);
  return WrapChecksum(w.Take());
}

std::vector<uint8_t> SerializeKernelEvent(const host::KernelEvent& ev) {
  util::ByteWriter w;
  w.U8(static_cast<uint8_t>(ev.kind));
  w.I32(ev.pid);
  w.I32(ev.other);
  w.U8(static_cast<uint8_t>(ev.sig));
  w.I32(ev.status);
  w.U64(ev.at);
  std::string detail = ev.detail;
  size_t header = w.size() + 4;
  size_t room = kKernelEventWireBytes - header;
  if (detail.size() > room) detail.resize(room);
  w.Str(detail);
  w.Pad(kKernelEventWireBytes - w.size());
  return w.Take();
}

}  // namespace ref

// --- seeded value generator -------------------------------------------------

class Gen {
 public:
  explicit Gen(uint64_t seed) : rng_(seed) {}

  uint64_t U64() { return rng_(); }
  uint32_t U32() { return static_cast<uint32_t>(rng_()); }
  int32_t I32() { return static_cast<int32_t>(rng_()); }
  uint8_t U8() { return static_cast<uint8_t>(rng_()); }
  bool B() { return (rng_() & 1) != 0; }
  size_t Size(size_t max) { return rng_() % (max + 1); }

  // Strings deliberately include NULs and the 0xF3..0xF7 escape bytes:
  // the length-prefixed format must be 8-bit clean.
  std::string Str(size_t max_len = 12) {
    static const char kSpice[] = {'\0', '\xF3', '\xF4', '\xF5', '\xF6', '\xF7', '\xFF'};
    std::string s;
    size_t n = Size(max_len);
    s.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng_() % 8 == 0) {
        s.push_back(kSpice[rng_() % sizeof(kSpice)]);
      } else {
        s.push_back(static_cast<char>('a' + rng_() % 26));
      }
    }
    return s;
  }

  GPid Gpid() { return GPid{Str(6), I32()}; }

  std::vector<std::string> StrVec(size_t max = 3) {
    std::vector<std::string> v(Size(max));
    for (auto& s : v) s = Str(8);
    return v;
  }

  host::Signal Sig() {
    static const host::Signal kSigs[] = {
        host::Signal::kSigHup,  host::Signal::kSigInt,  host::Signal::kSigKill,
        host::Signal::kSigUsr1, host::Signal::kSigTerm, host::Signal::kSigStop,
        host::Signal::kSigCont};
    return kSigs[rng_() % 7];
  }

  host::KEvent KKind() { return static_cast<host::KEvent>(rng_() % 10); }
  host::ProcState PState() { return static_cast<host::ProcState>(rng_() % 5); }

  ProcRecord Proc() {
    ProcRecord rec;
    rec.gpid = Gpid();
    rec.logical_parent = Gpid();
    rec.uid = I32();
    rec.command = Str();
    rec.state = PState();
    rec.exited = B();
    rec.start_time = U64();
    rec.end_time = U64();
    rec.cpu_time = static_cast<sim::SimDuration>(U64());
    return rec;
  }

  RusageRecord Rusage() {
    RusageRecord rec;
    rec.gpid = Gpid();
    rec.command = Str();
    rec.exit_status = I32();
    rec.killed_by_signal = B();
    rec.death_signal = Sig();
    rec.start_time = U64();
    rec.end_time = U64();
    rec.rusage.cpu_time = static_cast<sim::SimDuration>(U64());
    rec.rusage.messages_sent = U64();
    rec.rusage.messages_received = U64();
    rec.rusage.files_opened = U64();
    rec.rusage.max_rss_kb = U64();
    rec.rusage.forks = U64();
    return rec;
  }

  HistEvent Hist() {
    HistEvent ev;
    ev.at = U64();
    ev.kind = KKind();
    ev.pid = I32();
    ev.other = I32();
    ev.sig = Sig();
    ev.status = I32();
    ev.detail = Str();
    return ev;
  }

  TriggerSpec Trig() {
    TriggerSpec spec;
    spec.event_kind = KKind();
    spec.subject_pid = I32();
    spec.action = static_cast<TriggerAction>(U32() % 3);
    spec.action_signal = Sig();
    spec.action_target = Gpid();
    spec.migrate_dest = Str();
    spec.spawn_command = Str();
    spec.group = Str(6);
    return spec;
  }

  LpmStatRecord Stat() {
    LpmStatRecord rec;
    rec.host = Str(6);
    rec.user = Str(6);
    rec.uid = I32();
    rec.lpm_pid = I32();
    rec.mode = U8();
    rec.is_ccs = B();
    rec.ccs_host = Str(6);
    rec.recovery_rank = I32();
    rec.siblings = StrVec();
    rec.handlers = U32();
    rec.handlers_busy = U32();
    rec.queue_depth = U32();
    rec.queue_watermark = U32();
    rec.tool_circuits = U32();
    uint64_t* counters[] = {
        &rec.requests,          &rec.forwards,           &rec.kernel_events,
        &rec.handlers_created,  &rec.handler_reuses,     &rec.snapshots_served,
        &rec.bcasts_originated, &rec.bcast_duplicates,   &rec.triggers_fired,
        &rec.failures_detected, &rec.recoveries_started, &rec.request_timeouts,
        &rec.requests_shed,     &rec.busy_sent,          &rec.retries,
        &rec.deadline_expired,  &rec.dup_suppressed,
        &rec.eventlog_size,     &rec.eventlog_recorded,  &rec.eventlog_filtered,
        &rec.eventlog_dropped};
    for (uint64_t* c : counters) *c = U64();
    rec.breaker_open = U32();
    rec.dropped_by_pid.resize(Size(2));
    for (auto& d : rec.dropped_by_pid) d = PidDrop{I32(), U64()};
    rec.store_enabled = B();
    rec.journal_seq = U64();
    rec.journal_bytes = U64();
    rec.journal_pending = U32();
    rec.pmd_registry = U32();
    rec.pmd_requests = U64();
    rec.flight_records = U64();
    rec.flight_dumps = U64();
    rec.health = U8();
    rec.health_reasons = StrVec(2);
    rec.procs.resize(Size(2));
    for (auto& p : rec.procs) p = Proc();
    rec.groups.resize(Size(2));
    for (auto& g : rec.groups) g = GroupStatEntry{Str(6), U32(), U32()};
    rec.barriers.resize(Size(2));
    for (auto& b : rec.barriers) b = BarrierStatEntry{Str(6), U64(), U32(), U32()};
    rec.envars = U32();
    rec.envar_watchers = U32();
    rec.acct_cpu_us = U64();
    rec.acct_rusage_records = U64();
    return rec;
  }

  StatDeltaRecord DeltaRec() {
    StatDeltaRecord rec;
    rec.host = Str(6);
    rec.user = Str(6);
    rec.uid = I32();
    rec.seq = U64();
    rec.t_us = U64();
    rec.dt_us = U64();
    rec.d_kernel_events = U64();
    rec.d_requests = U64();
    rec.d_requests_shed = U64();
    rec.d_retries = U64();
    rec.d_journal_bytes = U64();
    rec.d_eventlog_recorded = U64();
    rec.d_acct_cpu_us = U64();
    rec.queue_depth = U32();
    rec.procs_live = U32();
    rec.health = U8();
    return rec;
  }

  host::KernelEvent KEvent(size_t max_detail) {
    host::KernelEvent ev;
    ev.kind = KKind();
    ev.pid = I32();
    ev.other = I32();
    ev.sig = Sig();
    ev.status = I32();
    ev.at = U64();
    ev.detail = Str(max_detail);
    return ev;
  }

  // One random message of the variant alternative `tag` (0..34, where
  // 29/30 are the STAT escape pair, 31 the BUSY escape, and 32..34 the
  // STAT subscription sub-ops).
  Msg MsgForTag(size_t tag) {
    switch (tag) {
      case 0: {
        HelloSibling m;
        m.user = Str();
        m.origin_host = Str(6);
        m.origin_lpm_pid = I32();
        m.token = U64();
        m.ccs_host = Str(6);
        return m;
      }
      case 1: {
        HelloTool m;
        m.user = Str();
        m.uid = I32();
        m.tool_name = Str();
        return m;
      }
      case 2: {
        HelloAck m;
        m.host = Str(6);
        m.lpm_pid = I32();
        m.ccs_host = Str(6);
        return m;
      }
      case 3: {
        HelloReject m;
        m.reason = Str(20);
        return m;
      }
      case 4: {
        CreateReq m;
        m.req_id = U64();
        m.target_host = Str(6);
        m.command = Str();
        m.logical_parent = Gpid();
        m.initially_running = B();
        m.trace_mask = U32();
        return m;
      }
      case 5: {
        CreateResp m;
        m.req_id = U64();
        m.ok = B();
        m.error = Str();
        m.gpid = Gpid();
        return m;
      }
      case 6: {
        SignalReq m;
        m.req_id = U64();
        m.target = Gpid();
        m.sig = Sig();
        return m;
      }
      case 7: {
        SignalResp m;
        m.req_id = U64();
        m.ok = B();
        m.error = Str();
        return m;
      }
      case 8: {
        SnapshotReq m;
        m.req_id = U64();
        m.origin_host = Str(6);
        m.bcast_seq = U64();
        m.signed_ts = U64();
        m.route = StrVec();
        return m;
      }
      case 9: {
        SnapshotResp m;
        m.req_id = U64();
        m.origin_host = Str(6);
        m.bcast_seq = U64();
        m.replier_host = Str(6);
        m.forwarded_to = StrVec();
        m.route = StrVec();
        m.route_index = Size(4);
        m.records.resize(Size(3));
        for (auto& rec : m.records) rec = Proc();
        return m;
      }
      case 10: {
        RusageReq m;
        m.req_id = U64();
        m.target_host = Str(6);
        return m;
      }
      case 11: {
        RusageResp m;
        m.req_id = U64();
        m.ok = B();
        m.error = Str();
        m.records.resize(Size(3));
        for (auto& rec : m.records) rec = Rusage();
        return m;
      }
      case 12: {
        AdoptReq m;
        m.req_id = U64();
        m.target = Gpid();
        m.trace_mask = U32();
        return m;
      }
      case 13: {
        AdoptResp m;
        m.req_id = U64();
        m.ok = B();
        m.error = Str();
        m.adopted_pids.resize(Size(4));
        for (auto& pid : m.adopted_pids) pid = I32();
        return m;
      }
      case 14: {
        TraceReq m;
        m.req_id = U64();
        m.target = Gpid();
        m.trace_mask = U32();
        return m;
      }
      case 15: {
        TraceResp m;
        m.req_id = U64();
        m.ok = B();
        m.error = Str();
        return m;
      }
      case 16: {
        HistoryReq m;
        m.req_id = U64();
        m.target_host = Str(6);
        m.pid_filter = I32();
        m.max_events = U32();
        return m;
      }
      case 17: {
        HistoryResp m;
        m.req_id = U64();
        m.ok = B();
        m.error = Str();
        m.events.resize(Size(3));
        for (auto& ev : m.events) ev = Hist();
        return m;
      }
      case 18: {
        TriggerReq m;
        m.req_id = U64();
        m.target_host = Str(6);
        m.spec = Trig();
        return m;
      }
      case 19: {
        TriggerResp m;
        m.req_id = U64();
        m.ok = B();
        m.error = Str();
        m.trigger_id = U64();
        return m;
      }
      case 20: {
        BecomeCcs m;
        m.requested_by = Str(6);
        return m;
      }
      case 21: {
        CcsChanged m;
        m.new_ccs = Str(6);
        return m;
      }
      case 22: {
        Probe m;
        m.req_id = U64();
        return m;
      }
      case 23: {
        ProbeAck m;
        m.req_id = U64();
        m.host = Str(6);
        m.is_ccs = B();
        return m;
      }
      case 24: {
        FilesReq m;
        m.req_id = U64();
        m.target = Gpid();
        return m;
      }
      case 25: {
        FilesResp m;
        m.req_id = U64();
        m.ok = B();
        m.error = Str();
        m.files.resize(Size(3));
        for (auto& f : m.files) f = FileRecord{I32(), Str(), Str(2)};
        return m;
      }
      case 26: {
        MigrateReq m;
        m.req_id = U64();
        m.target = Gpid();
        m.dest_host = Str(6);
        return m;
      }
      case 27: {
        MigrateResp m;
        m.req_id = U64();
        m.ok = B();
        m.error = Str();
        m.new_gpid = Gpid();
        return m;
      }
      case 28: {
        RegisterChild m;
        m.parent_pid = I32();
        m.child = Gpid();
        return m;
      }
      case 29: {
        StatReq m;
        m.req_id = U64();
        m.origin_host = Str(6);
        m.bcast_seq = U64();
        m.signed_ts = U64();
        m.route = StrVec();
        m.dump_flight = B();
        return m;
      }
      case 30: {
        StatResp m;
        m.req_id = U64();
        m.origin_host = Str(6);
        m.bcast_seq = U64();
        m.replier_host = Str(6);
        m.forwarded_to = StrVec();
        m.route = StrVec();
        m.route_index = Size(4);
        m.records.resize(Size(2));
        for (auto& rec : m.records) rec = Stat();
        return m;
      }
      case 32: {
        StatSubscribe m;
        m.req_id = U64();
        m.origin_host = Str(6);
        m.watch_id = U64();
        m.bcast_seq = U64();
        m.signed_ts = U64();
        m.route = StrVec();
        m.interval_us = U64();
        return m;
      }
      case 33: {
        StatDelta m;
        m.req_id = U64();
        m.origin_host = Str(6);
        m.watch_id = U64();
        m.records.resize(Size(3));
        for (auto& rec : m.records) rec = DeltaRec();
        return m;
      }
      case 34: {
        StatUnsubscribe m;
        m.req_id = U64();
        m.origin_host = Str(6);
        m.watch_id = U64();
        return m;
      }
      default: {
        BusyResp m;
        m.req_id = U64();
        m.error = Str(20);
        m.retry_after_us = U64();
        return m;
      }
    }
  }

  obs::TraceContext Trace(bool valid) {
    obs::TraceContext t;
    if (valid) {
      t.trace_id = U64() | 1;  // nonzero: valid()
      t.span_id = U64();
      t.parent_span = U64();
    }
    return t;
  }

  DeadlineStamp Stamp(bool valid) {
    DeadlineStamp s;
    if (valid) {
      s.deadline_us = U64() | 1;  // nonzero: valid()
      s.idem_token = U64();
    }
    return s;
  }

 private:
  std::mt19937_64 rng_;
};

constexpr size_t kTagCount = 35;     // 29 plain + STAT family (5) + BUSY escape
constexpr size_t kItersPerTag = 160;  // x35 tags x header combos ≈ 11k frames

// Every opcode, randomized payloads, all four header combinations
// (trace on/off x deadline on/off): the new encoder's bytes must equal
// the reference encoder's, and both parse paths (owning vector and
// zero-copy view) must round-trip the value, the trace header, and the
// deadline stamp.
TEST(WireDifferential, EncoderMatchesReferenceAllOpcodes) {
  Gen gen(0x9e3779b97f4a7c15ull);
  WireBuffer buf;
  for (size_t tag = 0; tag < kTagCount; ++tag) {
    for (size_t iter = 0; iter < kItersPerTag; ++iter) {
      const Msg msg = gen.MsgForTag(tag);
      const obs::TraceContext trace = gen.Trace(/*valid=*/iter % 2 == 0);
      const DeadlineStamp stamp = gen.Stamp(/*valid=*/iter % 4 < 2);

      const std::vector<uint8_t> want = ref::Serialize(msg, trace, stamp);
      Serialize(msg, trace, stamp, buf);
      ASSERT_EQ(want, buf.CopyOut()) << "tag " << tag << " iter " << iter;

      // The owning wrapper is the same codec behind a copy.
      ASSERT_EQ(want, stamp.valid()    ? Serialize(msg, trace, stamp)
                      : trace.valid()  ? Serialize(msg, trace)
                                       : Serialize(msg))
          << "tag " << tag << " iter " << iter;

      // Round trip, zero-copy path.
      obs::TraceContext got_trace;
      DeadlineStamp got_stamp;
      auto parsed = Parse(WireView(buf), &got_trace, &got_stamp);
      ASSERT_TRUE(parsed.has_value()) << "tag " << tag << " iter " << iter;
      ASSERT_TRUE(msg == *parsed) << "tag " << tag << " iter " << iter;
      EXPECT_EQ(trace.valid() ? trace.trace_id : 0u, got_trace.trace_id);
      EXPECT_EQ(trace.valid() ? trace.span_id : 0u, got_trace.span_id);
      EXPECT_EQ(stamp.valid() ? stamp.deadline_us : 0u, got_stamp.deadline_us);
      EXPECT_EQ(stamp.valid() ? stamp.idem_token : 0u, got_stamp.idem_token);

      // Round trip, owning path.
      auto parsed2 = Parse(want);
      ASSERT_TRUE(parsed2.has_value());
      ASSERT_TRUE(msg == *parsed2);
    }
  }
}

// The 112-byte kernel event frame: fixed-offset encoder vs the
// field-by-field reference, including details long enough to truncate.
TEST(WireDifferential, KernelEventMatchesReference) {
  Gen gen(0xc0ffee1234567890ull);
  WireBuffer buf;
  constexpr size_t kDetailRoom = 86;  // kKernelEventWireBytes - 26-byte header
  for (size_t iter = 0; iter < 10000; ++iter) {
    // A third of the events carry details past the wire's room so the
    // truncation path is compared too.
    const size_t max_detail = iter % 3 == 0 ? kDetailRoom + 14 : kDetailRoom;
    const host::KernelEvent ev = gen.KEvent(max_detail);

    const std::vector<uint8_t> want = ref::SerializeKernelEvent(ev);
    ASSERT_EQ(want.size(), kKernelEventWireBytes);
    SerializeKernelEvent(ev, buf);
    ASSERT_EQ(want, buf.CopyOut()) << "iter " << iter;
    ASSERT_EQ(want, SerializeKernelEvent(ev)) << "iter " << iter;

    auto parsed = ParseKernelEvent(WireView(buf));
    ASSERT_TRUE(parsed.has_value());
    host::KernelEvent expect = ev;
    if (expect.detail.size() > kDetailRoom) expect.detail.resize(kDetailRoom);
    ASSERT_TRUE(expect == *parsed) << "iter " << iter;
  }
}

// A reused WireBuffer must produce the same bytes as a fresh one — the
// whole point of the caller-owned buffer is reuse without reallocation,
// and stale state leaking between frames would corrupt the stream.
TEST(WireDifferential, BufferReuseIsStateless) {
  Gen gen(0xfeedface0badf00dull);
  WireBuffer reused;
  for (size_t iter = 0; iter < 500; ++iter) {
    const Msg msg = gen.MsgForTag(iter % kTagCount);
    const obs::TraceContext trace = gen.Trace(iter % 2 == 0);
    const DeadlineStamp stamp = gen.Stamp(iter % 4 < 2);
    WireBuffer fresh;
    Serialize(msg, trace, stamp, reused);
    Serialize(msg, trace, stamp, fresh);
    ASSERT_EQ(fresh.CopyOut(), reused.CopyOut()) << "iter " << iter;
  }
}

}  // namespace
}  // namespace ppm::core

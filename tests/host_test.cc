// host_test.cc — the simulated UNIX kernel: processes, signals,
// adoption, kernel events, load average, calibration.
#include <gtest/gtest.h>

#include "host/calibration.h"
#include "host/host.h"
#include "host/kernel.h"
#include "host/loadgen.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ppm::host {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() : sim_(1), kernel_(sim_, HostType::kVax780, "testhost") {}
  sim::Simulator sim_;
  Kernel kernel_;
};

TEST_F(KernelTest, InitExists) {
  const Process* init = kernel_.Find(Kernel::kInitPid);
  ASSERT_NE(init, nullptr);
  EXPECT_EQ(init->uid, kRootUid);
  EXPECT_TRUE(init->alive());
}

TEST_F(KernelTest, SpawnSetsGenealogy) {
  Pid parent = kernel_.Spawn(kNoPid, 100, "parent");
  Pid child = kernel_.Spawn(parent, 100, "child");
  const Process* c = kernel_.Find(child);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->ppid, parent);
  EXPECT_EQ(c->uid, 100);
  EXPECT_EQ(c->command, "child");
  const Process* p = kernel_.Find(parent);
  ASSERT_EQ(p->children.size(), 1u);
  EXPECT_EQ(p->children[0], child);
  EXPECT_EQ(p->rusage.forks, 1u);
}

TEST_F(KernelTest, ExitMakesZombieUntilReaped) {
  Pid parent = kernel_.Spawn(kNoPid, 100, "parent");
  Pid child = kernel_.Spawn(parent, 100, "child");
  kernel_.Exit(child, 3);
  EXPECT_EQ(kernel_.Find(child)->state, ProcState::kZombie);
  EXPECT_EQ(kernel_.Find(child)->exit_status, 3);
  auto reaped = kernel_.Reap(parent);
  ASSERT_EQ(reaped.size(), 1u);
  EXPECT_EQ(reaped[0], child);
  EXPECT_EQ(kernel_.Find(child)->state, ProcState::kDead);
}

TEST_F(KernelTest, OrphansReparentToInit) {
  Pid parent = kernel_.Spawn(kNoPid, 100, "parent");
  Pid child = kernel_.Spawn(parent, 100, "child");
  kernel_.Exit(parent, 0);
  EXPECT_EQ(kernel_.Find(child)->ppid, Kernel::kInitPid);
  // Parent was a child of init, so its zombie is auto-reaped.
  EXPECT_EQ(kernel_.Find(parent)->state, ProcState::kDead);
}

TEST_F(KernelTest, ZombieChildOfExitingParentIsReaped) {
  Pid parent = kernel_.Spawn(kNoPid, 100, "parent");
  Pid child = kernel_.Spawn(parent, 100, "child");
  kernel_.Exit(child, 0);
  EXPECT_EQ(kernel_.Find(child)->state, ProcState::kZombie);
  kernel_.Exit(parent, 0);
  EXPECT_EQ(kernel_.Find(child)->state, ProcState::kDead);
}

TEST_F(KernelTest, SignalPermissionDenied) {
  Pid mine = kernel_.Spawn(kNoPid, 100, "mine");
  std::string err;
  EXPECT_FALSE(kernel_.PostSignal(mine, Signal::kSigKill, 200, &err));
  EXPECT_EQ(err, "permission denied");
  EXPECT_TRUE(kernel_.Find(mine)->alive());
}

TEST_F(KernelTest, RootCanSignalAnyone) {
  Pid mine = kernel_.Spawn(kNoPid, 100, "mine");
  EXPECT_TRUE(kernel_.PostSignal(mine, Signal::kSigKill, kRootUid));
  EXPECT_FALSE(kernel_.Find(mine)->alive());
}

TEST_F(KernelTest, SignalUnknownPidFails) {
  std::string err;
  EXPECT_FALSE(kernel_.PostSignal(9999, Signal::kSigTerm, kRootUid, &err));
  EXPECT_EQ(err, "no such process");
}

TEST_F(KernelTest, StopAndContinue) {
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  EXPECT_TRUE(kernel_.PostSignal(p, Signal::kSigStop, 100));
  EXPECT_EQ(kernel_.Find(p)->state, ProcState::kStopped);
  // Stop twice is idempotent.
  EXPECT_TRUE(kernel_.PostSignal(p, Signal::kSigStop, 100));
  EXPECT_EQ(kernel_.Find(p)->state, ProcState::kStopped);
  EXPECT_TRUE(kernel_.PostSignal(p, Signal::kSigCont, 100));
  EXPECT_EQ(kernel_.Find(p)->state, ProcState::kRunning);
}

TEST_F(KernelTest, TermKillsByDefault) {
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  EXPECT_TRUE(kernel_.PostSignal(p, Signal::kSigTerm, 100));
  const Process* proc = kernel_.Find(p);
  EXPECT_FALSE(proc->alive());
  EXPECT_TRUE(proc->killed_by_signal);
  EXPECT_EQ(proc->death_signal, Signal::kSigTerm);
}

struct CatchingBody : ProcessBody {
  int caught = 0;
  bool OnSignal(Signal) override {
    ++caught;
    return true;  // consume
  }
};

TEST_F(KernelTest, BodyCanCatchSignals) {
  auto body = std::make_unique<CatchingBody>();
  CatchingBody* raw = body.get();
  Pid p = kernel_.Spawn(kNoPid, 100, "catcher", std::move(body));
  EXPECT_TRUE(kernel_.PostSignal(p, Signal::kSigTerm, 100));
  EXPECT_TRUE(kernel_.Find(p)->alive());
  EXPECT_EQ(raw->caught, 1);
  // SIGKILL cannot be caught.
  EXPECT_TRUE(kernel_.PostSignal(p, Signal::kSigKill, 100));
  EXPECT_FALSE(kernel_.Find(p)->alive());
}

struct ShutdownBody : ProcessBody {
  bool* flag;
  explicit ShutdownBody(bool* f) : flag(f) {}
  void OnShutdown() override { *flag = true; }
};

TEST_F(KernelTest, OnShutdownRunsAtExit) {
  bool shut = false;
  Pid p = kernel_.Spawn(kNoPid, 100, "d", std::make_unique<ShutdownBody>(&shut));
  kernel_.Exit(p, 0);
  EXPECT_TRUE(shut);
}

TEST_F(KernelTest, SignalToZombieIsAcceptedNoop) {
  Pid parent = kernel_.Spawn(kNoPid, 100, "parent");
  Pid child = kernel_.Spawn(parent, 100, "child");
  kernel_.Exit(child, 0);
  EXPECT_TRUE(kernel_.PostSignal(child, Signal::kSigKill, 100));
  EXPECT_EQ(kernel_.Find(child)->state, ProcState::kZombie);
}

// --- adoption --------------------------------------------------------------

TEST_F(KernelTest, AdoptRequiresSameUid) {
  Pid lpm = kernel_.Spawn(kNoPid, 100, "lpm");
  Pid other = kernel_.Spawn(kNoPid, 200, "other");
  std::vector<Pid> adopted;
  std::string err;
  EXPECT_FALSE(kernel_.Adopt(lpm, other, kTraceAll, 100, &adopted, &err));
  EXPECT_NE(err.find("permission"), std::string::npos);
}

TEST_F(KernelTest, AdoptCoversDescendants) {
  Pid lpm = kernel_.Spawn(kNoPid, 100, "lpm");
  Pid root = kernel_.Spawn(kNoPid, 100, "root");
  Pid kid = kernel_.Spawn(root, 100, "kid");
  Pid grandkid = kernel_.Spawn(kid, 100, "grandkid");
  std::vector<Pid> adopted;
  EXPECT_TRUE(kernel_.Adopt(lpm, root, kTraceAll, 100, &adopted));
  EXPECT_EQ(adopted, (std::vector<Pid>{root, kid, grandkid}));
  EXPECT_EQ(kernel_.Find(grandkid)->adopter, lpm);
  EXPECT_EQ(kernel_.Find(grandkid)->trace_mask, kTraceAll);
}

TEST_F(KernelTest, ChildrenInheritAdoption) {
  Pid lpm = kernel_.Spawn(kNoPid, 100, "lpm");
  Pid root = kernel_.Spawn(kNoPid, 100, "root");
  std::vector<Pid> adopted;
  ASSERT_TRUE(kernel_.Adopt(lpm, root, kTraceExit, 100, &adopted));
  Pid later_child = kernel_.Spawn(root, 100, "later");
  EXPECT_EQ(kernel_.Find(later_child)->adopter, lpm);
  EXPECT_EQ(kernel_.Find(later_child)->trace_mask, kTraceExit);
}

TEST_F(KernelTest, SetTraceMaskRequiresAdoption) {
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  std::string err;
  EXPECT_FALSE(kernel_.SetTraceMask(p, kTraceExit, 100, &err));
  EXPECT_EQ(err, "process not adopted");
}

// --- kernel events -----------------------------------------------------------

TEST_F(KernelTest, TracedExitEmitsEventAfterDelay) {
  Pid lpm = kernel_.Spawn(kNoPid, 100, "lpm");
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  std::vector<Pid> adopted;
  ASSERT_TRUE(kernel_.Adopt(lpm, p, kTraceAll, 100, &adopted));
  std::vector<KernelEvent> events;
  kernel_.RegisterEventSink(100, lpm, [&](const KernelEvent& ev) { events.push_back(ev); });

  kernel_.Exit(p, 7);
  EXPECT_TRUE(events.empty());  // asynchronous: not visible yet
  sim_.Run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, KEvent::kExit);
  EXPECT_EQ(events[0].pid, p);
  EXPECT_EQ(events[0].status, 7);
  // Delivery took the Table-1 time (VAX 780 at ~zero load: ~6.35 ms).
  EXPECT_GE(sim_.Now(), 6000u);
  EXPECT_LE(sim_.Now(), 8000u);
}

TEST_F(KernelTest, UntracedEventsNotEmitted) {
  Pid lpm = kernel_.Spawn(kNoPid, 100, "lpm");
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  std::vector<Pid> adopted;
  ASSERT_TRUE(kernel_.Adopt(lpm, p, kTraceFork, 100, &adopted));  // only forks
  int events = 0;
  kernel_.RegisterEventSink(100, lpm, [&](const KernelEvent&) { ++events; });
  kernel_.Exit(p, 0);  // exit not traced
  sim_.Run();
  EXPECT_EQ(events, 0);
  EXPECT_GT(kernel_.stats().exits, 0u);
}

TEST_F(KernelTest, ForkOfTracedProcessEmitsForkEvent) {
  Pid lpm = kernel_.Spawn(kNoPid, 100, "lpm");
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  std::vector<Pid> adopted;
  ASSERT_TRUE(kernel_.Adopt(lpm, p, kTraceFork, 100, &adopted));
  std::vector<KernelEvent> events;
  kernel_.RegisterEventSink(100, lpm, [&](const KernelEvent& ev) { events.push_back(ev); });
  Pid child = kernel_.Spawn(p, 100, "child");
  sim_.Run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, KEvent::kFork);
  EXPECT_EQ(events[0].pid, p);
  EXPECT_EQ(events[0].other, child);
}

TEST_F(KernelTest, EventsDroppedWithoutSink) {
  Pid lpm = kernel_.Spawn(kNoPid, 100, "lpm");
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  std::vector<Pid> adopted;
  ASSERT_TRUE(kernel_.Adopt(lpm, p, kTraceAll, 100, &adopted));
  kernel_.Exit(p, 0);
  sim_.Run();
  EXPECT_GT(kernel_.stats().events_dropped, 0u);
}

TEST_F(KernelTest, StaleEventNotDeliveredToReplacementSink) {
  Pid lpm = kernel_.Spawn(kNoPid, 100, "lpm");
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  std::vector<Pid> adopted;
  ASSERT_TRUE(kernel_.Adopt(lpm, p, kTraceAll, 100, &adopted));
  int old_sink = 0, new_sink = 0;
  kernel_.RegisterEventSink(100, lpm, [&](const KernelEvent&) { ++old_sink; });
  kernel_.Exit(p, 0);  // event in flight toward old sink
  kernel_.UnregisterEventSink(100);
  Pid lpm2 = kernel_.Spawn(kNoPid, 100, "lpm2");
  kernel_.RegisterEventSink(100, lpm2, [&](const KernelEvent&) { ++new_sink; });
  sim_.Run();
  EXPECT_EQ(old_sink, 0);
  EXPECT_EQ(new_sink, 0);  // message was addressed to the dead manager
}

// --- files & IPC ------------------------------------------------------------------

TEST_F(KernelTest, OpenCloseFiles) {
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  int fd1 = kernel_.OpenFileFor(p, "/tmp/a", "r");
  int fd2 = kernel_.OpenFileFor(p, "/tmp/b", "w");
  EXPECT_GE(fd1, 3);
  EXPECT_NE(fd1, fd2);
  EXPECT_EQ(kernel_.Find(p)->open_files.size(), 2u);
  EXPECT_TRUE(kernel_.CloseFileFor(p, fd1));
  EXPECT_EQ(kernel_.Find(p)->open_files.size(), 1u);
  EXPECT_FALSE(kernel_.CloseFileFor(p, fd1));
  EXPECT_EQ(kernel_.Find(p)->rusage.files_opened, 2u);
}

TEST_F(KernelTest, IpcAccounting) {
  Pid p = kernel_.Spawn(kNoPid, 100, "p");
  kernel_.RecordIpc(p, true, 100);
  kernel_.RecordIpc(p, false, 50);
  kernel_.RecordIpc(p, true, 10);
  EXPECT_EQ(kernel_.Find(p)->rusage.messages_sent, 2u);
  EXPECT_EQ(kernel_.Find(p)->rusage.messages_received, 1u);
}

// --- load average & cost scaling ---------------------------------------------------

TEST_F(KernelTest, LoadAverageConvergesToRunCount) {
  for (int i = 0; i < 3; ++i) kernel_.Spawn(kNoPid, 100, "spin");
  sim_.RunUntil(sim_.Now() + sim::Seconds(60));
  EXPECT_NEAR(kernel_.LoadAverage(), 3.0, 0.05);
}

TEST_F(KernelTest, LoadAverageDecaysAfterExit) {
  Pid a = kernel_.Spawn(kNoPid, 100, "spin");
  Pid b = kernel_.Spawn(kNoPid, 100, "spin");
  sim_.RunUntil(sim_.Now() + sim::Seconds(60));
  kernel_.PostSignal(a, Signal::kSigKill, 100);
  kernel_.PostSignal(b, Signal::kSigKill, 100);
  sim_.RunUntil(sim_.Now() + sim::Seconds(60));
  EXPECT_NEAR(kernel_.LoadAverage(), 0.0, 0.05);
}

TEST_F(KernelTest, ChargeScalesWithLoad) {
  sim::SimDuration idle_cost = kernel_.Charge(Kernel::kInitPid, sim::Millis(10));
  for (int i = 0; i < 4; ++i) kernel_.Spawn(kNoPid, 100, "spin");
  sim_.RunUntil(sim_.Now() + sim::Seconds(60));
  sim::SimDuration loaded_cost = kernel_.Charge(Kernel::kInitPid, sim::Millis(10));
  EXPECT_GT(loaded_cost, idle_cost);
}

TEST_F(KernelTest, CrashAllKillsEverything) {
  bool shut = false;
  kernel_.Spawn(kNoPid, 100, "a");
  kernel_.Spawn(kNoPid, 100, "b", std::make_unique<ShutdownBody>(&shut));
  kernel_.CrashAll();
  EXPECT_TRUE(shut);
  EXPECT_EQ(kernel_.live_count(), 0u);
  EXPECT_NEAR(kernel_.LoadAverage(), 0.0, 1.0);
}

// --- calibration ---------------------------------------------------------------------

// Table 1 of the paper, bucket midpoints (ms).
struct Table1Case {
  HostType type;
  double la;
  double expect_ms;
};

class Table1Fit : public ::testing::TestWithParam<Table1Case> {};

TEST_P(Table1Fit, PolynomialMatchesPaper) {
  const auto& c = GetParam();
  double got = static_cast<double>(KernelMsgDelay(c.type, c.la)) / 1000.0;
  EXPECT_NEAR(got, c.expect_ms, 0.05) << ToString(c.type) << " at la=" << c.la;
}

INSTANTIATE_TEST_SUITE_P(
    PaperValues, Table1Fit,
    ::testing::Values(Table1Case{HostType::kVax780, 0.5, 7.2},
                      Table1Case{HostType::kVax780, 1.5, 9.8},
                      Table1Case{HostType::kVax780, 2.5, 13.6},
                      Table1Case{HostType::kVax750, 0.5, 7.2},
                      Table1Case{HostType::kVax750, 1.5, 9.6},
                      Table1Case{HostType::kVax750, 2.5, 12.8},
                      Table1Case{HostType::kVax750, 3.5, 18.9},
                      Table1Case{HostType::kSun2, 0.5, 8.31},
                      Table1Case{HostType::kSun2, 1.5, 14.13},
                      Table1Case{HostType::kSun2, 2.5, 22.0},
                      Table1Case{HostType::kSun2, 3.5, 42.7}));

TEST(Calibration, DelayMonotonicInLoad) {
  for (HostType t : {HostType::kVax780, HostType::kVax750, HostType::kSun2}) {
    sim::SimDuration prev = 0;
    for (double la = 0; la <= 4.0; la += 0.25) {
      sim::SimDuration d = KernelMsgDelay(t, la);
      EXPECT_GE(d, prev) << ToString(t) << " la=" << la;
      prev = d;
    }
  }
}

TEST(Calibration, SunDegradesFasterThanVax) {
  // The paper's SUN II loses much more to load than the VAXen.
  auto slope = [](HostType t) {
    return KernelMsgDelay(t, 3.5) - KernelMsgDelay(t, 0.5);
  };
  EXPECT_GT(slope(HostType::kSun2), slope(HostType::kVax750));
  EXPECT_GT(slope(HostType::kSun2), slope(HostType::kVax780));
}

// --- load generator --------------------------------------------------------------------

class LoadGenTest : public ::testing::Test {
 protected:
  LoadGenTest() : sim_(1), net_(sim_) {
    id_ = net_.AddHost("h");
    host_ = std::make_unique<Host>(sim_, net_, id_, HostType::kVax780, "h");
  }
  sim::Simulator sim_;
  net::Network net_;
  net::HostId id_;
  std::unique_ptr<Host> host_;
};

TEST_F(LoadGenTest, FullDutyPinsLoad) {
  LoadGenerator gen(*host_, 100, 2, 1.0);
  sim_.RunUntil(sim_.Now() + sim::Seconds(60));
  EXPECT_NEAR(host_->kernel().LoadAverage(), 2.0, 0.1);
  gen.Stop();
  sim_.RunUntil(sim_.Now() + sim::Seconds(60));
  EXPECT_NEAR(host_->kernel().LoadAverage(), 0.0, 0.1);
}

TEST_F(LoadGenTest, FractionalDutyHitsTarget) {
  LoadGenerator gen(*host_, 100, 3, 0.5);
  EXPECT_NEAR(gen.target_load(), 1.5, 1e-9);
  sim_.RunUntil(sim_.Now() + sim::Seconds(120));
  EXPECT_NEAR(host_->kernel().LoadAverage(), 1.5, 0.25);
}

TEST_F(LoadGenTest, SurvivesHostCrash) {
  LoadGenerator gen(*host_, 100, 2, 0.5);
  sim_.RunUntil(sim_.Now() + sim::Seconds(10));
  host_->Crash();
  sim_.RunUntil(sim_.Now() + sim::Seconds(10));  // toggles must not fire into dead kernel
  host_->Reboot();
  sim_.RunUntil(sim_.Now() + sim::Seconds(10));
  EXPECT_NEAR(host_->kernel().LoadAverage(), 0.0, 0.1);
  gen.Stop();  // must not touch the new kernel's pids
}

TEST_F(LoadGenTest, HostCrashRebootCycle) {
  EXPECT_TRUE(host_->up());
  host_->Crash();
  EXPECT_FALSE(host_->up());
  EXPECT_FALSE(net_.HostUp(id_));
  uint32_t gen_before = host_->generation();
  host_->Reboot();
  EXPECT_TRUE(host_->up());
  EXPECT_TRUE(net_.HostUp(id_));
  EXPECT_EQ(host_->generation(), gen_before + 1);
  // Fresh kernel: process table reset to init only.
  EXPECT_EQ(host_->kernel().live_count(), 1u);
}

}  // namespace
}  // namespace ppm::host

// prof_test — the wall-clock profiler (obs/prof.h) and its report
// tooling (tools/ppmprof.h).
//
// The timing-sensitive tests assert *identities* of the accounting
// scheme (parent child-time == sum of child durations, exact to the
// nanosecond, because both sides fold in the same measured number) —
// never absolute durations, which would flake under load.  The Scope /
// Site classes are compiled in both PPM_PROFILE modes, so those tests
// drive them directly; only the macro-expansion test is mode-dependent.
#include <gtest/gtest.h>

#include <chrono>

#include "bench/bench_common.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "tools/ppmprof.h"
#include "tools/trace_export.h"

namespace ppm {
namespace {

using obs::prof::ProfRegistry;
using obs::prof::Scope;
using obs::prof::Site;
using obs::prof::SiteSnapshot;

// Busy-waits so a span has a measurable, strictly positive duration.
void SpinFor(std::chrono::nanoseconds d) {
  auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

const SiteSnapshot* FindSnap(const std::vector<SiteSnapshot>& sites,
                             const std::string& name) {
  for (const SiteSnapshot& s : sites) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override { ProfRegistry::Instance().Reset(); }
};

TEST_F(ProfTest, NestedScopesAttributeExclusiveTimeExactly) {
  Site* outer = ProfRegistry::Instance().GetSite("prof.test.outer");
  Site* inner = ProfRegistry::Instance().GetSite("prof.test.inner");
  constexpr int kIters = 20;
  for (int i = 0; i < kIters; ++i) {
    Scope a(outer);
    SpinFor(std::chrono::microseconds(5));
    {
      Scope b(inner);
      SpinFor(std::chrono::microseconds(5));
    }
  }
  auto sites = ProfRegistry::Instance().Snapshot();
  const SiteSnapshot* o = FindSnap(sites, "prof.test.outer");
  const SiteSnapshot* in = FindSnap(sites, "prof.test.inner");
  ASSERT_NE(o, nullptr);
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(o->count, kIters);
  EXPECT_EQ(in->count, kIters);
  // The identity of the exclusive-time scheme: every nanosecond the
  // inner site accumulated was also added to the outer site's child
  // time — exactly, because both sides fold in the same measured dur.
  EXPECT_EQ(o->child_ns, in->total_ns);
  EXPECT_EQ(o->self_ns(), o->total_ns - in->total_ns);
  // Both spans spin, so each side's exclusive time is strictly positive.
  EXPECT_GT(o->self_ns(), 0u);
  EXPECT_GT(in->self_ns(), 0u);
  EXPECT_GE(o->total_ns, in->total_ns);
  // Edges: outer is a root, inner's only caller is outer.
  ASSERT_EQ(o->edges.size(), 1u);
  EXPECT_EQ(o->edges[0].parent, "");
  EXPECT_EQ(o->edges[0].count, kIters);
  ASSERT_EQ(in->edges.size(), 1u);
  EXPECT_EQ(in->edges[0].parent, "prof.test.outer");
  EXPECT_EQ(in->edges[0].count, kIters);
}

TEST_F(ProfTest, ReentrantScopesKeepSelfAndChildSeparate) {
  Site* site = ProfRegistry::Instance().GetSite("prof.test.rec");
  std::function<void(int)> recurse = [&](int depth) {
    Scope s(site);
    SpinFor(std::chrono::microseconds(5));
    if (depth > 1) recurse(depth - 1);
  };
  recurse(3);
  auto sites = ProfRegistry::Instance().Snapshot();
  const SiteSnapshot* r = FindSnap(sites, "prof.test.rec");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->count, 3u);
  // The two nested invocations charge the site as its own caller; the
  // outermost is a root.  child_ns counts the nested spans, so the
  // site's self time stays below its (double-counted) total.
  EXPECT_GT(r->child_ns, 0u);
  EXPECT_LT(r->child_ns, r->total_ns);
  EXPECT_GT(r->self_ns(), 0u);
  uint64_t root_count = 0, self_count = 0;
  for (const auto& e : r->edges) {
    if (e.parent.empty()) root_count += e.count;
    if (e.parent == "prof.test.rec") self_count += e.count;
  }
  EXPECT_EQ(root_count, 1u);
  EXPECT_EQ(self_count, 2u);
}

TEST_F(ProfTest, MinMaxCountAccumulate) {
  Site* site = ProfRegistry::Instance().GetSite("prof.test.stats");
  for (int i = 1; i <= 3; ++i) {
    Scope s(site);
    SpinFor(std::chrono::microseconds(2 * i));
  }
  auto sites = ProfRegistry::Instance().Snapshot();
  const SiteSnapshot* s = FindSnap(sites, "prof.test.stats");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 3u);
  EXPECT_GT(s->min_ns, 0u);
  EXPECT_LE(s->min_ns, s->max_ns);
  EXPECT_GE(s->total_ns, s->max_ns);
  EXPECT_EQ(s->child_ns, 0u);
  EXPECT_EQ(s->self_ns(), s->total_ns);
}

TEST_F(ProfTest, ResetZeroesStatsButKeepsHandles) {
  Site* site = ProfRegistry::Instance().GetSite("prof.test.reset");
  { Scope s(site); }
  EXPECT_EQ(site->count(), 1u);
  ProfRegistry::Instance().Reset();
  EXPECT_EQ(ProfRegistry::Instance().GetSite("prof.test.reset"), site);
  EXPECT_EQ(site->count(), 0u);
  { Scope s(site); }
  EXPECT_EQ(site->count(), 1u);
}

TEST_F(ProfTest, TimelineCapturesNestingDepthAndOrder) {
  Site* outer = ProfRegistry::Instance().GetSite("prof.test.tl.outer");
  Site* inner = ProfRegistry::Instance().GetSite("prof.test.tl.inner");
  ProfRegistry::Instance().StartTimeline(16);
  {
    Scope a(outer);
    SpinFor(std::chrono::microseconds(2));
    {
      Scope b(inner);
      SpinFor(std::chrono::microseconds(2));
    }
  }
  auto spans = ProfRegistry::Instance().StopTimeline();
  ASSERT_EQ(spans.size(), 2u);
  // Spans are recorded at close: inner first, at depth 1.
  EXPECT_EQ(spans[0].site, inner);
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].site, outer);
  EXPECT_EQ(spans[1].depth, 0u);
  EXPECT_GE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[0].dur_ns, spans[1].dur_ns);

  std::string merged = tools::RenderTimelineWithProf({}, spans);
  EXPECT_NE(merged.find("prof.test.tl.inner"), std::string::npos);
  EXPECT_NE(merged.find("prof.test.tl.outer"), std::string::npos);
  EXPECT_NE(merged.find("2 captured"), std::string::npos);
}

TEST_F(ProfTest, TimelineDropsBeyondCapacity) {
  Site* site = ProfRegistry::Instance().GetSite("prof.test.tl.cap");
  ProfRegistry::Instance().StartTimeline(2);
  for (int i = 0; i < 5; ++i) {
    Scope s(site);
  }
  EXPECT_EQ(ProfRegistry::Instance().timeline_dropped(), 3u);
  auto spans = ProfRegistry::Instance().StopTimeline();
  EXPECT_EQ(spans.size(), 2u);
}

TEST_F(ProfTest, RenderersOnSyntheticSnapshot) {
  std::vector<SiteSnapshot> sites(2);
  sites[0].name = "alpha";
  sites[0].count = 4;
  sites[0].total_ns = 4'000'000;
  sites[0].min_ns = 900'000;
  sites[0].max_ns = 1'100'000;
  sites[0].child_ns = 1'000'000;
  sites[0].edges = {{"", 4, 4'000'000}};
  sites[1].name = "beta";
  sites[1].count = 2;
  sites[1].total_ns = 1'000'000;
  sites[1].min_ns = 400'000;
  sites[1].max_ns = 600'000;
  sites[1].edges = {{"alpha", 2, 1'000'000}};

  std::string flat = tools::RenderProfFlat(sites);
  // alpha self = 3 ms > beta self = 1 ms: alpha sorts first.
  EXPECT_LT(flat.find("alpha"), flat.find("beta"));

  std::string tree = tools::RenderProfTopDown(sites);
  // beta renders as a child of alpha, not a root.
  EXPECT_NE(tree.find("alpha"), std::string::npos);
  EXPECT_LT(tree.find("alpha"), tree.find("beta"));

  EXPECT_EQ(tools::RootTotalNs(sites), 4'000'000u);

  std::string json_text = tools::RenderProfJson(sites);
  auto doc = obs::json::Parse(json_text);
  ASSERT_TRUE(doc && doc->is_object());
  const auto* parsed_sites = doc->Find("sites");
  ASSERT_NE(parsed_sites, nullptr);
}

#if PPM_PROF_ENABLED
TEST_F(ProfTest, MacroRegistersAndChargesSite) {
  {
    PPM_PROF_SCOPE("prof.test.macro");
    SpinFor(std::chrono::microseconds(1));
  }
  const Site* site = ProfRegistry::Instance().FindSite("prof.test.macro");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->count(), 1u);
  EXPECT_GT(site->total_ns(), 0u);
}
#endif

// --- per-opcode wire accounting --------------------------------------

// Sums the net.op.*.frames / net.op.*.bytes counters from a registry
// dump (the same enumeration path ppmprof uses).
void SumOpCounters(uint64_t* frames, uint64_t* bytes) {
  *frames = 0;
  *bytes = 0;
  auto doc = obs::json::Parse(obs::Registry::Instance().DumpJson());
  ASSERT_TRUE(doc && doc->is_object());
  const auto* counters = doc->Find("counters");
  ASSERT_TRUE(counters && counters->is_object());
  for (const auto& [key, value] : counters->obj) {
    if (key.rfind("net.op.", 0) != 0 || !value.is_number()) continue;
    if (key.size() > 7 && key.rfind(".frames") == key.size() - 7) {
      *frames += static_cast<uint64_t>(value.number);
    } else if (key.rfind(".bytes") == key.size() - 6) {
      *bytes += static_cast<uint64_t>(value.number);
    }
  }
}

TEST(WireAccountingTest, PerOpcodeCountersPartitionNetTotalsExactly) {
  obs::Registry::Instance().Reset();
  core::ClusterConfig config;
  core::Cluster cluster(config);
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.Ethernet({"a", "b"});
  bench::InstallUser(cluster);
  cluster.RunFor(sim::Millis(10));

  tools::PpmClient* client = bench::Connect(cluster, "a");
  ASSERT_NE(client, nullptr);
  // Traffic across every opcode family: control handshakes (connect),
  // data (create/signal), the snapshot broadcast, and the 0xF6 STAT
  // escape.
  auto g1 = bench::CreateSync(cluster, *client, "a", "worker", {}, true);
  ASSERT_TRUE(g1.has_value());
  auto g2 = bench::CreateSync(cluster, *client, "b", "remote-worker", {}, true);
  ASSERT_TRUE(g2.has_value());
  EXPECT_TRUE(bench::SignalSync(cluster, *client, *g2, host::Signal::kSigHup));
  auto snap = bench::SnapshotSync(cluster, *client);
  ASSERT_TRUE(snap.has_value());
  std::optional<core::StatResp> stat;
  client->Stat(false, [&](const core::StatResp& r) { stat = r; });
  ASSERT_TRUE(bench::RunUntil(cluster, [&] { return stat.has_value(); }));
  // And the 0xF8 group family: a cross-host gang plus an envar flood.
  std::optional<core::GroupSpawnResp> gang;
  client->GroupSpawn("opgang", {"a", "b"}, {"gw", "gw"},
                     [&](const core::GroupSpawnResp& r) { gang = r; });
  ASSERT_TRUE(bench::RunUntil(cluster, [&] { return gang.has_value(); }));
  ASSERT_TRUE(gang->ok);
  std::optional<core::EnvarSetResp> envar;
  client->GenvSet("op.key", "v", [&](const core::EnvarSetResp& r) { envar = r; });
  ASSERT_TRUE(bench::RunUntil(cluster, [&] { return envar.has_value(); }));
  cluster.RunFor(sim::Seconds(2));

  const obs::Counter* frames_sent =
      obs::Registry::Instance().FindCounter("net.frames.sent");
  const obs::Counter* bytes_sent =
      obs::Registry::Instance().FindCounter("net.bytes.sent");
  ASSERT_NE(frames_sent, nullptr);
  ASSERT_NE(bytes_sent, nullptr);
  ASSERT_GT(frames_sent->value(), 0u);
  ASSERT_GT(bytes_sent->value(), 0u);

  uint64_t op_frames = 0, op_bytes = 0;
  SumOpCounters(&op_frames, &op_bytes);
  // The partition is exact, not approximate: every frame the network
  // sent was classified into exactly one net.op.* class.
  EXPECT_EQ(op_frames, frames_sent->value());
  EXPECT_EQ(op_bytes, bytes_sent->value());

  // The classifier saw real kernel-path opcodes, not just "unknown".
  const obs::Counter* syn = obs::Registry::Instance().FindCounter("net.op.ctl.syn.frames");
  ASSERT_NE(syn, nullptr);
  EXPECT_GT(syn->value(), 0u);

  // The 0xF8 escape classifies by sub-byte: the cross-host gang part and
  // the envar flood land in their own classes, never in "unknown" (which
  // would still sum but would hide the group family from the table).
  const obs::Counter* part =
      obs::Registry::Instance().FindCounter("net.op.GroupPartReq.frames");
  ASSERT_NE(part, nullptr);
  EXPECT_GT(part->value(), 0u);
  const obs::Counter* upd =
      obs::Registry::Instance().FindCounter("net.op.EnvarUpdate.frames");
  ASSERT_NE(upd, nullptr);
  EXPECT_GT(upd->value(), 0u);

  std::string table = tools::RenderWireAccounting();
  EXPECT_NE(table.find("opcode sums match"), std::string::npos);
  EXPECT_EQ(table.find("MISMATCH"), std::string::npos);
}

}  // namespace
}  // namespace ppm

// history_test.cc — unit tests for the event log and trigger table
// (the integration paths are covered in lpm_test; these pin the
// data-structure semantics directly).
#include <gtest/gtest.h>

#include "core/history.h"

namespace ppm::core {
namespace {

HistEvent Ev(host::KEvent kind, host::Pid pid, sim::SimTime at = 0) {
  HistEvent ev;
  ev.kind = kind;
  ev.pid = pid;
  ev.at = at;
  return ev;
}

TEST(EventLog, RecordsInOrder) {
  EventLog log;
  log.Record(Ev(host::KEvent::kFork, 1, 10), host::kTraceAll);
  log.Record(Ev(host::KEvent::kExit, 1, 20), host::kTraceAll);
  auto events = log.Query();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, host::KEvent::kFork);
  EXPECT_EQ(events[1].kind, host::KEvent::kExit);
}

TEST(EventLog, GranularityMaskFilters) {
  EventLog log;
  log.Record(Ev(host::KEvent::kFork, 1), host::kTraceExit);   // filtered
  log.Record(Ev(host::KEvent::kExit, 1), host::kTraceExit);   // kept
  log.Record(Ev(host::KEvent::kIpcSend, 1), host::kTraceExit);  // filtered
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.total_recorded(), 1u);
  EXPECT_EQ(log.total_filtered(), 2u);
}

TEST(EventLog, StateChangeFlagCoversStopAndContinue) {
  EventLog log;
  log.Record(Ev(host::KEvent::kStop, 1), host::kTraceStateChange);
  log.Record(Ev(host::KEvent::kContinue, 1), host::kTraceStateChange);
  EXPECT_EQ(log.size(), 2u);
}

TEST(EventLog, RingDropsOldest) {
  EventLog log(3);
  for (host::Pid i = 1; i <= 5; ++i) {
    log.Record(Ev(host::KEvent::kExec, i), host::kTraceAll);
  }
  auto events = log.Query();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].pid, 3);
  EXPECT_EQ(events[2].pid, 5);
  EXPECT_EQ(log.total_recorded(), 5u);
}

TEST(EventLog, DropAccountingIsPerPidAndConserved) {
  // Regression: eviction used to bump only the aggregate counter, so a
  // STAT reader could not tell whose history was lost.  Each evicted
  // event must be charged to the pid of the event that was evicted — not
  // the pid of the arriving one — and the breakdown must sum to the
  // total.
  EventLog log(2);
  log.Record(Ev(host::KEvent::kExec, 1), host::kTraceAll);
  log.Record(Ev(host::KEvent::kExec, 1), host::kTraceAll);
  log.Record(Ev(host::KEvent::kExec, 2), host::kTraceAll);  // evicts a pid-1
  log.Record(Ev(host::KEvent::kExec, 2), host::kTraceAll);  // evicts a pid-1
  log.Record(Ev(host::KEvent::kExec, 3), host::kTraceAll);  // evicts a pid-2
  EXPECT_EQ(log.total_dropped(), 3u);
  const auto& by_pid = log.dropped_by_pid();
  ASSERT_EQ(by_pid.size(), 2u);
  EXPECT_EQ(by_pid.at(1), 2u);
  EXPECT_EQ(by_pid.at(2), 1u);
  uint64_t sum = 0;
  for (const auto& [pid, n] : by_pid) sum += n;
  EXPECT_EQ(sum, log.total_dropped());
  // Filtered events are not drops and charge nobody.
  log.Record(Ev(host::KEvent::kIpcSend, 9), 0);
  EXPECT_EQ(log.total_dropped(), 3u);
}

TEST(EventLog, QueryFiltersAndLimits) {
  EventLog log;
  for (int i = 0; i < 10; ++i) {
    log.Record(Ev(host::KEvent::kExec, i % 2 ? 7 : 8), host::kTraceAll);
  }
  EXPECT_EQ(log.Query(7).size(), 5u);
  EXPECT_EQ(log.Query(7, 2).size(), 2u);
  EXPECT_EQ(log.Query(host::kNoPid, 3).size(), 3u);
  EXPECT_EQ(log.Query(99).size(), 0u);
}

TEST(EventLog, QueryWithMaxReturnsMostRecent) {
  // Regression: Query(pid, max) used to return the *oldest* max matching
  // events.  A tool asking for "the last 3 things that happened" must get
  // the newest ones, oldest-first within the window.
  EventLog log;
  for (host::Pid i = 1; i <= 6; ++i) {
    log.Record(Ev(host::KEvent::kExec, i, /*at=*/i * 10), host::kTraceAll);
  }
  auto events = log.Query(host::kNoPid, 3);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].pid, 4);
  EXPECT_EQ(events[1].pid, 5);
  EXPECT_EQ(events[2].pid, 6);

  // Same for a pid-filtered query: only even pids, last two.
  EventLog filtered;
  for (host::Pid i = 1; i <= 8; ++i) {
    filtered.Record(Ev(host::KEvent::kExec, i % 2 ? 7 : 8, /*at=*/i),
                    host::kTraceAll);
  }
  auto recent = filtered.Query(8, 2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].at, 6);
  EXPECT_EQ(recent[1].at, 8);
}

TEST(TriggerTable, MatchesKindAndSubject) {
  TriggerTable table;
  TriggerSpec spec;
  spec.event_kind = host::KEvent::kExit;
  spec.subject_pid = 5;
  table.Install(spec);
  int fired = 0;
  auto fire = [&](uint64_t, const TriggerSpec&, const HistEvent&) { ++fired; };
  table.Match(Ev(host::KEvent::kExit, 6), fire);   // wrong subject
  table.Match(Ev(host::KEvent::kFork, 5), fire);   // wrong kind
  EXPECT_EQ(fired, 0);
  table.Match(Ev(host::KEvent::kExit, 5), fire);
  EXPECT_EQ(fired, 1);
}

TEST(TriggerTable, WildcardSubjectMatchesAnyPid) {
  TriggerTable table;
  TriggerSpec spec;
  spec.event_kind = host::KEvent::kStop;
  spec.subject_pid = host::kNoPid;
  table.Install(spec);
  int fired = 0;
  table.Match(Ev(host::KEvent::kStop, 123),
              [&](uint64_t, const TriggerSpec&, const HistEvent&) { ++fired; });
  EXPECT_EQ(fired, 1);
}

TEST(TriggerTable, OneShotSemantics) {
  TriggerTable table;
  TriggerSpec spec;
  spec.event_kind = host::KEvent::kExit;
  spec.subject_pid = host::kNoPid;
  table.Install(spec);
  int fired = 0;
  auto fire = [&](uint64_t, const TriggerSpec&, const HistEvent&) { ++fired; };
  table.Match(Ev(host::KEvent::kExit, 1), fire);
  table.Match(Ev(host::KEvent::kExit, 2), fire);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.fired_count(), 1u);
}

TEST(TriggerTable, RemoveBeforeFire) {
  TriggerTable table;
  TriggerSpec spec;
  spec.event_kind = host::KEvent::kExit;
  uint64_t id = table.Install(spec);
  EXPECT_TRUE(table.Remove(id));
  EXPECT_FALSE(table.Remove(id));
  int fired = 0;
  table.Match(Ev(host::KEvent::kExit, 1),
              [&](uint64_t, const TriggerSpec&, const HistEvent&) { ++fired; });
  EXPECT_EQ(fired, 0);
}

TEST(TriggerTable, MultipleTriggersOnOneEvent) {
  TriggerTable table;
  TriggerSpec a;
  a.event_kind = host::KEvent::kExit;
  a.subject_pid = 9;
  a.action_signal = host::Signal::kSigStop;
  TriggerSpec b = a;
  b.action_signal = host::Signal::kSigUsr1;
  table.Install(a);
  table.Install(b);
  std::vector<host::Signal> fired;
  table.Match(Ev(host::KEvent::kExit, 9), [&](uint64_t, const TriggerSpec& spec, const HistEvent&) {
    fired.push_back(spec.action_signal);
  });
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], host::Signal::kSigStop);
  EXPECT_EQ(fired[1], host::Signal::kSigUsr1);
}

TEST(TriggerTable, InstallDuringFireIsSafe) {
  // A trigger action that installs another trigger must not invalidate
  // the iteration.
  TriggerTable table;
  TriggerSpec spec;
  spec.event_kind = host::KEvent::kExit;
  table.Install(spec);
  int fired = 0;
  table.Match(Ev(host::KEvent::kExit, 1), [&](uint64_t, const TriggerSpec&, const HistEvent&) {
    ++fired;
    TriggerSpec nested;
    nested.event_kind = host::KEvent::kExit;
    table.Install(nested);
  });
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(table.size(), 1u);  // the nested one awaits the next event
  table.Match(Ev(host::KEvent::kExit, 2), [&](uint64_t, const TriggerSpec&, const HistEvent&) {
    ++fired;
  });
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace ppm::core

// rdp_test.cc — the reliable datagram protocol (paper Section 3's
// "promising alternative for scalability").
#include <gtest/gtest.h>

#include "net/rdp.h"
#include "sim/simulator.h"

namespace ppm::net {
namespace {

class RdpTest : public ::testing::Test {
 protected:
  RdpTest() : sim_(5), net_(sim_) {
    a_ = net_.AddHost("a");
    b_ = net_.AddHost("b");
    c_ = net_.AddHost("c");
    net_.AddLink(a_, b_);
    net_.AddLink(b_, c_);
  }
  sim::Simulator sim_;
  Network net_;
  HostId a_, b_, c_;
};

TEST_F(RdpTest, DeliversAndAcks) {
  std::vector<std::string> got;
  RdpEndpoint server(net_, b_, 70, [&](SocketAddr, const std::vector<uint8_t>& d) {
    got.emplace_back(d.begin(), d.end());
  });
  RdpEndpoint client(net_, a_, 70, nullptr);
  std::optional<bool> acked;
  client.SendReliable(server.addr(), {'h', 'i'}, [&](bool ok) { acked = ok; });
  sim_.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "hi");
  ASSERT_TRUE(acked.has_value());
  EXPECT_TRUE(*acked);
  EXPECT_EQ(client.stats().retransmits, 0u);
}

TEST_F(RdpTest, OrderPreservedPerPeer) {
  std::vector<std::string> got;
  RdpEndpoint server(net_, b_, 70, [&](SocketAddr, const std::vector<uint8_t>& d) {
    got.emplace_back(d.begin(), d.end());
  });
  RdpEndpoint client(net_, a_, 70, nullptr);
  for (int i = 0; i < 8; ++i) {
    std::string m = "m" + std::to_string(i);
    client.SendReliable(server.addr(), {m.begin(), m.end()});
  }
  sim_.Run();
  ASSERT_EQ(got.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], "m" + std::to_string(i));
}

TEST_F(RdpTest, RetransmitsThroughTransientPartition) {
  std::vector<std::string> got;
  RdpEndpoint server(net_, b_, 70, [&](SocketAddr, const std::vector<uint8_t>& d) {
    got.emplace_back(d.begin(), d.end());
  });
  RdpEndpoint client(net_, a_, 70, nullptr);
  net_.SetLinkUp(a_, b_, false);
  std::optional<bool> acked;
  client.SendReliable(server.addr(), {'x'}, [&](bool ok) { acked = ok; });
  // Two retransmit periods of darkness, then heal.
  sim_.RunUntil(sim_.Now() + sim::Millis(450));
  net_.SetLinkUp(a_, b_, true);
  sim_.Run();
  ASSERT_TRUE(acked.has_value());
  EXPECT_TRUE(*acked);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_GE(client.stats().retransmits, 2u);
  EXPECT_EQ(client.stats().failures, 0u);
}

TEST_F(RdpTest, GivesUpAfterMaxRetries) {
  RdpParams params;
  params.max_retries = 3;
  params.retransmit_timeout = sim::Millis(100);
  RdpEndpoint client(net_, a_, 70, nullptr, params);
  net_.SetLinkUp(a_, b_, false);
  std::optional<bool> acked;
  client.SendReliable(SocketAddr{b_, 70}, {'x'}, [&](bool ok) { acked = ok; });
  sim_.Run();
  ASSERT_TRUE(acked.has_value());
  EXPECT_FALSE(*acked);
  EXPECT_EQ(client.stats().failures, 1u);
  // Subsequent messages still flow once the network returns.
  net_.SetLinkUp(a_, b_, true);
  std::vector<std::string> got;
  RdpEndpoint server(net_, b_, 70, [&](SocketAddr, const std::vector<uint8_t>& d) {
    got.emplace_back(d.begin(), d.end());
  });
  std::optional<bool> second;
  client.SendReliable(server.addr(), {'y'}, [&](bool ok) { second = ok; });
  sim_.Run();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(*second);
  ASSERT_EQ(got.size(), 1u);
}

TEST_F(RdpTest, DuplicateDataSuppressedWhenAckLost) {
  // Break the reverse path only: data arrives, ACKs vanish, the sender
  // retransmits, the receiver must deliver exactly once.
  //
  // The simulated network has symmetric links, so emulate a lost ACK by
  // crashing the *sender's* inbound processing: instead, use a tiny
  // retransmit timeout and a long one-way latency so the first ACK is
  // still in flight when the retransmission leaves.
  Network slow_net(sim_, NetworkParams{});
  HostId x = slow_net.AddHost("x");
  HostId y = slow_net.AddHost("y");
  slow_net.AddLink(x, y, LinkParams{sim::Millis(150), sim::Micros(1)});
  RdpParams params;
  params.retransmit_timeout = sim::Millis(200);  // < RTT of 300ms
  int delivered = 0;
  RdpEndpoint server(slow_net, y, 70,
                     [&](SocketAddr, const std::vector<uint8_t>&) { ++delivered; },
                     params);
  RdpEndpoint client(slow_net, x, 70, nullptr, params);
  std::optional<bool> acked;
  client.SendReliable(server.addr(), {'q'}, [&](bool ok) { acked = ok; });
  sim_.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_GE(server.stats().duplicates, 1u);
  ASSERT_TRUE(acked.has_value());
  EXPECT_TRUE(*acked);
}

TEST_F(RdpTest, IndependentPeersInterleave) {
  std::vector<std::string> got_b, got_c;
  RdpEndpoint server_b(net_, b_, 70, [&](SocketAddr, const std::vector<uint8_t>& d) {
    got_b.emplace_back(d.begin(), d.end());
  });
  RdpEndpoint server_c(net_, c_, 70, [&](SocketAddr, const std::vector<uint8_t>& d) {
    got_c.emplace_back(d.begin(), d.end());
  });
  RdpEndpoint client(net_, a_, 70, nullptr);
  for (int i = 0; i < 4; ++i) {
    client.SendReliable(server_b.addr(), {'b'});
    client.SendReliable(server_c.addr(), {'c'});
  }
  sim_.Run();
  EXPECT_EQ(got_b.size(), 4u);
  EXPECT_EQ(got_c.size(), 4u);
}

TEST_F(RdpTest, CloseFailsQueuedMessages) {
  RdpEndpoint client(net_, a_, 70, nullptr);
  net_.SetLinkUp(a_, b_, false);
  int failed = 0;
  for (int i = 0; i < 3; ++i) {
    client.SendReliable(SocketAddr{b_, 70}, {'x'}, [&](bool ok) { failed += !ok; });
  }
  client.Close();
  sim_.Run();
  EXPECT_EQ(failed, 3);
}

TEST_F(RdpTest, BidirectionalTraffic) {
  std::vector<std::string> got_a, got_b;
  RdpEndpoint* pb = nullptr;
  RdpEndpoint ea(net_, a_, 70, [&](SocketAddr from, const std::vector<uint8_t>& d) {
    got_a.emplace_back(d.begin(), d.end());
    (void)from;
  });
  RdpEndpoint eb(net_, b_, 70, [&](SocketAddr from, const std::vector<uint8_t>& d) {
    got_b.emplace_back(d.begin(), d.end());
    if (pb) pb->SendReliable(from, {'p', 'o', 'n', 'g'});
  });
  pb = &eb;
  ea.SendReliable(eb.addr(), {'p', 'i', 'n', 'g'});
  sim_.Run();
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_b[0], "ping");
  ASSERT_EQ(got_a.size(), 1u);
  EXPECT_EQ(got_a[0], "pong");
}

TEST_F(RdpTest, ReceiverResyncsAfterSenderRestart) {
  std::vector<std::string> got;
  RdpEndpoint server(net_, b_, 70, [&](SocketAddr, const std::vector<uint8_t>& d) {
    got.emplace_back(d.begin(), d.end());
  });
  {
    RdpEndpoint client(net_, a_, 70, nullptr);
    client.SendReliable(server.addr(), {'1'});
    client.SendReliable(server.addr(), {'2'});
    sim_.Run();
  }
  // A "rebooted" sender starts its sequence space over.
  RdpEndpoint client2(net_, a_, 70, nullptr);
  client2.SendReliable(server.addr(), {'3'});
  sim_.Run();
  // seq 0 from the new incarnation < expected 2: the receiver treats it
  // as a duplicate (conservative; matching 1986-era RDP behaviour where
  // new incarnations should change ports).  Verify no crash and stats.
  EXPECT_GE(got.size(), 2u);
}

TEST_F(RdpTest, ExactlyOnceInOrderUnderDuplicationAndReordering) {
  // An adversarial link that duplicates nearly a third of the frames and
  // delays half of them out of order must not show through RDP: the
  // receiver sees every message exactly once, in send order.
  LinkFaultProfile faults;
  faults.duplicate = 0.3;
  faults.reorder = 0.5;
  faults.reorder_delay_max = sim::Millis(50);
  net_.SetLinkFaults(a_, b_, faults);

  std::vector<std::string> got;
  RdpEndpoint server(net_, b_, 70, [&](SocketAddr, const std::vector<uint8_t>& d) {
    got.emplace_back(d.begin(), d.end());
  });
  RdpEndpoint client(net_, a_, 70, nullptr);
  constexpr int kMessages = 40;
  int acked = 0;
  for (int i = 0; i < kMessages; ++i) {
    std::string m = "m" + std::to_string(i);
    client.SendReliable(server.addr(), {m.begin(), m.end()},
                        [&](bool ok) { acked += ok; });
  }
  sim_.Run();

  // The fault profile actually fired — otherwise the test proves nothing.
  EXPECT_GT(net_.stats().faults_duplicated, 0u);
  EXPECT_GT(net_.stats().faults_reordered, 0u);

  ASSERT_EQ(got.size(), static_cast<size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(got[static_cast<size_t>(i)], "m" + std::to_string(i));
  }
  EXPECT_EQ(acked, kMessages);
  EXPECT_EQ(client.stats().failures, 0u);
  // Injected duplicates surface as receiver-side suppressions, never as
  // second deliveries.
  EXPECT_GT(server.stats().duplicates, 0u);
}

}  // namespace
}  // namespace ppm::net

// broadcast_test.cc — duplicate suppression (Section 4) and the
// graph-covering snapshot broadcast on cyclic sibling graphs.
#include <gtest/gtest.h>

#include "core/broadcast.h"
#include "core/cluster.h"
#include "core/lpm.h"
#include "tests/test_util.h"
#include "tools/client.h"

namespace ppm::core {
namespace {

using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::RunUntil;
using tools::PpmClient;

TEST(BroadcastFilter, FirstSightingAccepted) {
  BroadcastFilter filter(sim::Seconds(60));
  EXPECT_TRUE(filter.CheckAndRecord("vaxA", 1, 0));
  EXPECT_FALSE(filter.CheckAndRecord("vaxA", 1, 1000));
  EXPECT_EQ(filter.duplicates_suppressed(), 1u);
}

TEST(BroadcastFilter, DifferentOriginsIndependent) {
  BroadcastFilter filter(sim::Seconds(60));
  EXPECT_TRUE(filter.CheckAndRecord("vaxA", 1, 0));
  EXPECT_TRUE(filter.CheckAndRecord("vaxB", 1, 0));
  EXPECT_TRUE(filter.CheckAndRecord("vaxA", 2, 0));
}

TEST(BroadcastFilter, EntriesAgeOutOfWindow) {
  BroadcastFilter filter(sim::Seconds(10));
  EXPECT_TRUE(filter.CheckAndRecord("vaxA", 1, 0));
  EXPECT_EQ(filter.Size(sim::Seconds(5)), 1u);
  // Past the window the entry is forgotten: a late duplicate re-floods.
  EXPECT_EQ(filter.Size(static_cast<sim::SimTime>(sim::Seconds(11))), 0u);
  EXPECT_TRUE(
      filter.CheckAndRecord("vaxA", 1, static_cast<sim::SimTime>(sim::Seconds(12))));
  EXPECT_EQ(filter.stale_refloods(), 1u);
}

TEST(BroadcastFilter, WindowBoundsMemory) {
  BroadcastFilter filter(sim::Seconds(10));
  for (uint64_t i = 0; i < 1000; ++i) {
    filter.CheckAndRecord("vaxA", i, i * 100'000);  // one per 100ms
  }
  // Only ~100 fit in a 10s window.
  EXPECT_LE(filter.Size(1000 * 100'000), 101u);
}

// --- snapshots over cyclic sibling graphs --------------------------------------

class CyclicSnapshotTest : public ::testing::Test {
 protected:
  CyclicSnapshotTest() {
    cluster_.AddHost("a");
    cluster_.AddHost("b");
    cluster_.AddHost("c");
    cluster_.Ethernet({"a", "b", "c"});
    InstallTestUser(cluster_);
    cluster_.RunFor(sim::Millis(10));
  }
  Cluster cluster_;
};

TEST_F(CyclicSnapshotTest, TriangleSiblingGraphTerminates) {
  // Build a *cyclic* sibling graph: a—b, b—c, c—a, by creating processes
  // in a ring from tools on each host.
  PpmClient* ta = ConnectTool(cluster_, "a");
  ASSERT_NE(ta, nullptr);
  std::optional<CreateResp> r1, r2, r3;
  ta->CreateProcess("b", "w1", {}, [&](const CreateResp& r) { r1 = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return r1.has_value(); }));
  PpmClient* tb = ConnectTool(cluster_, "b");
  ASSERT_NE(tb, nullptr);
  tb->CreateProcess("c", "w2", {}, [&](const CreateResp& r) { r2 = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return r2.has_value(); }));
  PpmClient* tc = ConnectTool(cluster_, "c");
  ASSERT_NE(tc, nullptr);
  tc->CreateProcess("a", "w3", {}, [&](const CreateResp& r) { r3 = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return r3.has_value(); }));

  Lpm* a = cluster_.FindLpm("a", kTestUid);
  Lpm* b = cluster_.FindLpm("b", kTestUid);
  Lpm* c = cluster_.FindLpm("c", kTestUid);
  ASSERT_EQ(a->sibling_hosts().size(), 2u);
  ASSERT_EQ(b->sibling_hosts().size(), 2u);
  ASSERT_EQ(c->sibling_hosts().size(), 2u);

  // Snapshot from a: the flood crosses the ring both ways; duplicate
  // suppression must stop it, and all three hosts' records must arrive.
  std::optional<SnapshotResp> snap;
  ta->Snapshot([&](const SnapshotResp& r) { snap = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return snap.has_value(); }, sim::Seconds(60)));
  EXPECT_EQ(snap->records.size(), 3u);
  EXPECT_EQ(snap->forwarded_to.size(), 3u);  // coverage: a, b, c
  // At least one duplicate was suppressed somewhere in the ring.
  uint64_t dups = a->stats().bcast_duplicates + b->stats().bcast_duplicates +
                  c->stats().bcast_duplicates;
  EXPECT_GE(dups, 1u);
}

TEST_F(CyclicSnapshotTest, RepeatedSnapshotsUseFreshSequences) {
  PpmClient* ta = ConnectTool(cluster_, "a");
  ASSERT_NE(ta, nullptr);
  std::optional<CreateResp> created;
  ta->CreateProcess("b", "w", {}, [&](const CreateResp& r) { created = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return created.has_value(); }));
  for (int round = 0; round < 5; ++round) {
    std::optional<SnapshotResp> snap;
    ta->Snapshot([&](const SnapshotResp& r) { snap = r; });
    ASSERT_TRUE(RunUntil(cluster_, [&] { return snap.has_value(); }, sim::Seconds(60)));
    EXPECT_EQ(snap->records.size(), 1u) << "round " << round;
  }
  // 5 distinct broadcast sequences, no cross-round suppression.
  EXPECT_EQ(cluster_.FindLpm("a", kTestUid)->stats().bcasts_originated, 5u);
}

TEST_F(CyclicSnapshotTest, ConcurrentSnapshotsFromDifferentOrigins) {
  PpmClient* ta = ConnectTool(cluster_, "a");
  PpmClient* tb = ConnectTool(cluster_, "b");
  ASSERT_NE(ta, nullptr);
  ASSERT_NE(tb, nullptr);
  std::optional<CreateResp> c1, c2;
  ta->CreateProcess("b", "w1", {}, [&](const CreateResp& r) { c1 = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return c1.has_value(); }));
  tb->CreateProcess("a", "w2", {}, [&](const CreateResp& r) { c2 = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return c2.has_value(); }));

  std::optional<SnapshotResp> sa, sb;
  ta->Snapshot([&](const SnapshotResp& r) { sa = r; });
  tb->Snapshot([&](const SnapshotResp& r) { sb = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return sa.has_value() && sb.has_value(); },
                       sim::Seconds(60)));
  EXPECT_EQ(sa->records.size(), 2u);
  EXPECT_EQ(sb->records.size(), 2u);
}

}  // namespace
}  // namespace ppm::core

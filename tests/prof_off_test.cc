// prof_off_test — the compile-out contract of obs/prof.h.
//
// This TU forces PPM_PROFILE_DISABLED regardless of the build-wide
// PPM_PROFILE option (the CMake target adds the define; the #ifndef
// keeps -DPPM_PROFILE=OFF builds from redefining it).  PPM_PROF_SCOPE
// must expand to nothing: no site registered, no code on the hot path —
// while the registry API itself stays linked and usable, which is what
// lets ppmprof tooling build unconditionally.
#ifndef PPM_PROFILE_DISABLED
#define PPM_PROFILE_DISABLED
#endif

#include <gtest/gtest.h>

#include "obs/prof.h"

static_assert(PPM_PROF_ENABLED == 0,
              "PPM_PROFILE_DISABLED must compile the scope macros out");

namespace ppm {
namespace {

TEST(ProfOffTest, ScopeMacroExpandsToNothing) {
  {
    // With the profiler compiled out this is a plain (void)0 — in
    // particular it must be valid in expression-statement position and
    // must not register "prof.off.test.unique" anywhere.
    PPM_PROF_SCOPE("prof.off.test.unique");
    PPM_PROF_SCOPE_SITE(nullptr);
  }
  EXPECT_EQ(obs::prof::ProfRegistry::Instance().FindSite("prof.off.test.unique"),
            nullptr);
}

TEST(ProfOffTest, RegistryApiStaysUsableWhenCompiledOut) {
  // Tooling (ppmprof, trace_export) links against the registry in both
  // modes; a disabled build just sees no macro-fed data.
  auto& reg = obs::prof::ProfRegistry::Instance();
  obs::prof::Site* site = reg.GetSite("prof.off.test.manual");
  ASSERT_NE(site, nullptr);
  {
    obs::prof::Scope s(site);
  }
  EXPECT_EQ(site->count(), 1u);
  reg.Reset();
  EXPECT_EQ(site->count(), 0u);
}

}  // namespace
}  // namespace ppm

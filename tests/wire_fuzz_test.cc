// wire_fuzz_test.cc — adversarial input for the zero-copy parsers.
// Seeded mutation of real frames (truncation at every prefix, single
// bit flips, corrupted length prefixes with *fixed-up* checksums so the
// reader's bounds checks — not the checksum — are what is exercised)
// plus pure random garbage.  The parser contract under attack: Parse
// returns nullopt instead of crashing or reading out of bounds (the
// sanitizer job turns any overread into a failure), and the
// net.corrupt_frames counter advances exactly when a checksummed frame
// fails verification — mutation-by-mutation, not approximately.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppm::core {
namespace {

uint64_t CorruptFrames() {
  return obs::Registry::Instance().GetCounter("net.corrupt_frames")->value();
}

uint16_t Fletcher16(const uint8_t* p, size_t n) {
  uint32_t lo = 0, hi = 0;
  for (size_t i = 0; i < n; ++i) {
    lo = (lo + p[i]) % 255;
    hi = (hi + lo) % 255;
  }
  return static_cast<uint16_t>((hi << 8) | lo);
}

// Mirror of Parse's corruption bookkeeping: the counter ticks exactly
// when a frame long enough to carry the 0xF4 header fails verification.
bool ExpectCorruptTick(const uint8_t* p, size_t len) {
  if (len < kChecksumHeaderBytes || p[0] != kChecksumHeaderTag) return false;
  const uint16_t stored = static_cast<uint16_t>(p[1] | (static_cast<uint16_t>(p[2]) << 8));
  return stored != Fletcher16(p + kChecksumHeaderBytes, len - kChecksumHeaderBytes);
}

// Re-stamp the stored checksum so a mutated body verifies again.
void FixupChecksum(std::vector<uint8_t>& frame) {
  const uint16_t ck =
      Fletcher16(frame.data() + kChecksumHeaderBytes, frame.size() - kChecksumHeaderBytes);
  frame[1] = static_cast<uint8_t>(ck & 0xff);
  frame[2] = static_cast<uint8_t>(ck >> 8);
}

// A frame pool with some structural variety: flat messages, nested
// vectors, the STAT escape, and trace headers.
std::vector<std::vector<uint8_t>> FramePool() {
  std::vector<std::vector<uint8_t>> pool;
  pool.push_back(Serialize(Msg{HelloReject{"gone fishing"}}));
  HelloSibling hs;
  hs.user = "ana";
  hs.origin_host = "vaxA";
  hs.origin_lpm_pid = 77;
  hs.token = 0xdeadbeefcafef00dull;
  hs.ccs_host = "vaxB";
  pool.push_back(Serialize(Msg{hs}));
  SnapshotResp sr;
  sr.req_id = 9;
  sr.origin_host = "vaxA";
  sr.replier_host = "sun1";
  sr.route = {"vaxA", "sun1", "sun2"};
  sr.records.resize(2);
  sr.records[0].gpid = {"vaxA", 12};
  sr.records[0].command = "cruncher";
  sr.records[1].gpid = {"sun1", 44};
  pool.push_back(Serialize(Msg{sr}));
  StatReq stq;
  stq.req_id = 5;
  stq.origin_host = "vaxB";
  stq.route = {"vaxB"};
  pool.push_back(Serialize(Msg{stq}));
  StatDelta sd;
  sd.origin_host = "vaxC";
  sd.watch_id = 3;
  sd.records.resize(2);
  sd.records[0].host = "vaxC";
  sd.records[0].user = "ana";
  sd.records[0].seq = 2;
  sd.records[0].d_kernel_events = 17;
  sd.records[1].host = "sun1";
  sd.records[1].seq = 2;
  pool.push_back(Serialize(Msg{sd}));
  obs::TraceContext trace;
  trace.trace_id = 0x1234;
  trace.span_id = 0x5678;
  trace.parent_span = 0x9abc;
  pool.push_back(Serialize(Msg{Probe{31337}}, trace));
  DeadlineStamp stamp;
  stamp.deadline_us = 0x44556677;
  stamp.idem_token = 0x8899aabbccddeeffull;
  pool.push_back(Serialize(Msg{Probe{31338}}, trace, stamp));
  BusyResp busy;
  busy.req_id = 7;
  busy.error = "handler queue full";
  busy.retry_after_us = 200000;
  pool.push_back(Serialize(Msg{busy}, obs::TraceContext{}, stamp));
  return pool;
}

// Every proper prefix of every pool frame.  A truncated frame almost
// always fails its checksum; when a 16-bit Fletcher collision lets one
// through, the parser may still reject it structurally — the exactness
// claim is about the counter, which must follow the checksum verdict.
TEST(WireFuzz, TruncatedFramesNeverCrashAndCountExactly) {
  for (const auto& frame : FramePool()) {
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      const bool expect_tick = ExpectCorruptTick(frame.data(), cut);
      const uint64_t before = CorruptFrames();
      auto msg = Parse(WireView(frame.data(), cut));
      EXPECT_EQ(before + (expect_tick ? 1 : 0), CorruptFrames())
          << "cut " << cut << " of " << frame.size();
      if (expect_tick) {
        EXPECT_FALSE(msg.has_value()) << "cut " << cut;
      }
    }
  }
}

// Single-bit flips anywhere past the escape tag.  Fletcher-16 detects
// every single-bit change (the delta is a power of two, never ≡ 0 mod
// 255), so a body flip is always a counter tick; a flip inside the
// stored checksum bytes mismatches the recomputed sum just the same.
TEST(WireFuzz, SingleBitFlipsAreAlwaysDetected) {
  std::mt19937_64 rng(0x5eed);
  for (const auto& frame : FramePool()) {
    for (int iter = 0; iter < 400; ++iter) {
      std::vector<uint8_t> mutated = frame;
      const size_t pos = 1 + rng() % (mutated.size() - 1);
      mutated[pos] ^= static_cast<uint8_t>(1u << (rng() % 8));
      const uint64_t before = CorruptFrames();
      auto msg = Parse(mutated);
      EXPECT_FALSE(msg.has_value()) << "pos " << pos;
      EXPECT_EQ(before + 1, CorruptFrames()) << "pos " << pos;
    }
  }
}

// Flipping the escape tag itself re-types the frame arbitrarily; the
// only contract left is memory safety and no counter tick (the 0xF4
// path was never entered).
TEST(WireFuzz, TagByteFlipsAreMemorySafe) {
  for (const auto& frame : FramePool()) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> mutated = frame;
      mutated[0] ^= static_cast<uint8_t>(1u << bit);
      const uint64_t before = CorruptFrames();
      (void)Parse(mutated);
      EXPECT_EQ(before, CorruptFrames()) << "bit " << bit;
    }
  }
}

// Oversized length prefixes with a VALID checksum: the reader's bounds
// checks alone must reject the frame, without the checksum as a safety
// net and without reading past the view.
TEST(WireFuzz, OversizedLengthPrefixesAreBoundsChecked) {
  // HelloReject body: [tag][u32 reason length][bytes] — the length
  // prefix sits right after the 3-byte checksum header and the tag.
  std::vector<uint8_t> frame = Serialize(Msg{HelloReject{"abc"}});
  const size_t len_off = kChecksumHeaderBytes + 1;
  for (uint32_t huge : {0x10u, 0xffffu, 0x7fffffffu, 0xffffffffu}) {
    std::vector<uint8_t> mutated = frame;
    for (int i = 0; i < 4; ++i) {
      mutated[len_off + i] = static_cast<uint8_t>(huge >> (8 * i));
    }
    FixupChecksum(mutated);
    const uint64_t before = CorruptFrames();
    auto msg = Parse(mutated);
    EXPECT_FALSE(msg.has_value()) << "len " << huge;
    EXPECT_EQ(before, CorruptFrames()) << "len " << huge;  // checksum was valid
  }

  // SnapshotReq carries a string-vector count; an inflated count must
  // be rejected before it becomes a giant reserve() or an overread.
  SnapshotReq req;
  req.req_id = 1;
  req.origin_host = "h";
  req.route = {"a", "b"};
  std::vector<uint8_t> snap = Serialize(Msg{req});
  const size_t count_off = kChecksumHeaderBytes + 1 + 8 + (4 + 1) + 8 + 8;
  for (uint32_t huge : {0x40u, 0xffffffu, 0xffffffffu}) {
    std::vector<uint8_t> mutated = snap;
    for (int i = 0; i < 4; ++i) {
      mutated[count_off + i] = static_cast<uint8_t>(huge >> (8 * i));
    }
    FixupChecksum(mutated);
    auto msg = Parse(mutated);
    EXPECT_FALSE(msg.has_value()) << "count " << huge;
  }
}

// Pure random garbage, with the escape tag forced some of the time so
// the checksum path sees traffic too.  The counter model must hold
// byte-for-byte even here.
TEST(WireFuzz, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(0xba5eba11);
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<uint8_t> junk(rng() % 64);
    for (auto& b : junk) b = static_cast<uint8_t>(rng());
    if (!junk.empty() && iter % 3 == 0) junk[0] = kChecksumHeaderTag;
    const bool expect_tick = ExpectCorruptTick(junk.data(), junk.size());
    const uint64_t before = CorruptFrames();
    (void)Parse(junk);
    EXPECT_EQ(before + (expect_tick ? 1 : 0), CorruptFrames()) << "iter " << iter;
  }
}

// The kernel-event parser: wrong sizes, bad kinds, inflated detail
// lengths, random 112-byte payloads.  Always nullopt or a value — never
// a read past the 112-byte view.
TEST(WireFuzz, KernelEventParserIsBoundsChecked) {
  std::mt19937_64 rng(0x4e7e57);
  // Wrong sizes: only exactly 112 bytes is a kernel event.
  std::vector<uint8_t> big(256, 0);
  for (size_t len = 0; len < big.size(); ++len) {
    if (len == kKernelEventWireBytes) continue;
    EXPECT_FALSE(ParseKernelEvent(WireView(big.data(), len)).has_value()) << len;
  }
  // Random payloads: kind and detail-length validation gate acceptance.
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<uint8_t> bytes(kKernelEventWireBytes);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng());
    auto ev = ParseKernelEvent(bytes);
    if (ev.has_value()) {
      // Acceptance implies the gates held.
      EXPECT_LE(static_cast<uint8_t>(ev->kind), 9);
      EXPECT_LE(ev->detail.size(), kKernelEventWireBytes - 26);
    }
  }
  // An inflated detail length in an otherwise valid event.
  host::KernelEvent ev;
  ev.kind = host::KEvent::kExec;
  ev.pid = 4;
  ev.detail = "sh";
  std::vector<uint8_t> bytes = SerializeKernelEvent(ev);
  bytes[22] = 0xff;  // detail length prefix (offset 22, little-endian)
  bytes[23] = 0xff;
  EXPECT_FALSE(ParseKernelEvent(bytes).has_value());
}

// The payload classifier runs on every data frame the network delivers;
// it must tolerate any prefix of any frame and arbitrary junk.
TEST(WireFuzz, ClassifierIsMemorySafe) {
  std::mt19937_64 rng(0xc1a55);
  for (const auto& frame : FramePool()) {
    for (size_t cut = 0; cut <= frame.size(); ++cut) {
      const char* label = ClassifyWireFrame(frame.data(), cut);
      EXPECT_NE(nullptr, label);
    }
  }
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> junk(rng() % 40);
    for (auto& b : junk) b = static_cast<uint8_t>(rng());
    EXPECT_NE(nullptr, ClassifyWireFrame(junk.data(), junk.size()));
  }
}

}  // namespace
}  // namespace ppm::core

// net_edge_test.cc — corner cases of the network substrate: close
// semantics, simultaneous connects, listener lifecycle, multi-partition
// shapes, and fault/heal interleavings.
#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"

namespace ppm::net {
namespace {

class NetEdgeTest : public ::testing::Test {
 protected:
  NetEdgeTest() : sim_(7), net_(sim_) {
    for (const char* n : {"a", "b", "c", "d"}) ids_.push_back(net_.AddHost(n));
    net_.AddLink(ids_[0], ids_[1]);
    net_.AddLink(ids_[1], ids_[2]);
    net_.AddLink(ids_[2], ids_[3]);
  }

  // Opens a circuit a->b:port with collecting callbacks.
  ConnId Open(HostId from, HostId to, Port port) {
    std::optional<ConnId> conn;
    net_.Connect(from, SocketAddr{to, port}, ConnCallbacks{},
                 [&](std::optional<ConnId> c) { conn = c; });
    sim_.Run();
    return conn.value_or(kInvalidConn);
  }

  sim::Simulator sim_;
  Network net_;
  std::vector<HostId> ids_;
};

TEST_F(NetEdgeTest, DoubleCloseIsIdempotent) {
  net_.Listen(ids_[1], 9, [](ConnId, SocketAddr) { return ConnCallbacks{}; });
  ConnId c = Open(ids_[0], ids_[1], 9);
  ASSERT_NE(c, kInvalidConn);
  net_.Close(c);
  net_.Close(c);  // second close: no crash, no effect
  sim_.Run();
  EXPECT_FALSE(net_.ConnAlive(c));
}

TEST_F(NetEdgeTest, SendAfterLocalCloseFails) {
  net_.Listen(ids_[1], 9, [](ConnId, SocketAddr) { return ConnCallbacks{}; });
  ConnId c = Open(ids_[0], ids_[1], 9);
  net_.Close(c);
  EXPECT_FALSE(net_.Send(c, {'x'}));
}

TEST_F(NetEdgeTest, PeerCanStillReceiveNothingAfterFin) {
  int got = 0;
  net_.Listen(ids_[1], 9, [&](ConnId, SocketAddr) {
    ConnCallbacks cb;
    cb.on_data = [&](ConnId, const std::vector<uint8_t>&) { ++got; };
    return cb;
  });
  ConnId c = Open(ids_[0], ids_[1], 9);
  net_.Send(c, {'1'});
  net_.Close(c);
  sim_.Run();
  EXPECT_EQ(got, 1);  // data sent before FIN arrives; nothing after
}

TEST_F(NetEdgeTest, SimultaneousConnectsBothSucceed) {
  // a->b and b->a racing: two independent circuits, both usable.
  net_.Listen(ids_[0], 9, [](ConnId, SocketAddr) { return ConnCallbacks{}; });
  net_.Listen(ids_[1], 9, [](ConnId, SocketAddr) { return ConnCallbacks{}; });
  std::optional<ConnId> ab, ba;
  net_.Connect(ids_[0], SocketAddr{ids_[1], 9}, ConnCallbacks{},
               [&](std::optional<ConnId> c) { ab = c; });
  net_.Connect(ids_[1], SocketAddr{ids_[0], 9}, ConnCallbacks{},
               [&](std::optional<ConnId> c) { ba = c; });
  sim_.Run();
  ASSERT_TRUE(ab.has_value());
  ASSERT_TRUE(ba.has_value());
  EXPECT_TRUE(net_.ConnAlive(*ab));
  EXPECT_TRUE(net_.ConnAlive(*ba));
  EXPECT_EQ(net_.ConnsTouching(ids_[0]).size(), 2u);
}

TEST_F(NetEdgeTest, UnlistenThenRebind) {
  net_.Listen(ids_[1], 9, [](ConnId, SocketAddr) { return ConnCallbacks{}; });
  net_.Unlisten(ids_[1], 9);
  EXPECT_FALSE(net_.HasListener(ids_[1], 9));
  // Connect now refused.
  std::optional<ConnId> c;
  bool called = false;
  net_.Connect(ids_[0], SocketAddr{ids_[1], 9}, ConnCallbacks{},
               [&](std::optional<ConnId> conn) {
                 called = true;
                 c = conn;
               });
  sim_.Run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(c.has_value());
  // Rebinding works (the port was freed).
  net_.Listen(ids_[1], 9, [](ConnId, SocketAddr) { return ConnCallbacks{}; });
  EXPECT_NE(Open(ids_[0], ids_[1], 9), kInvalidConn);
}

TEST_F(NetEdgeTest, CrashClearsBindsForReboot) {
  net_.Listen(ids_[1], 9, [](ConnId, SocketAddr) { return ConnCallbacks{}; });
  net_.BindDgram(ids_[1], 53, [](SocketAddr, const std::vector<uint8_t>&,
                                 const std::vector<HostId>&) {});
  net_.SetHostUp(ids_[1], false);
  EXPECT_FALSE(net_.HasListener(ids_[1], 9));
  net_.SetHostUp(ids_[1], true);
  // Fresh process can take the same ports.
  net_.Listen(ids_[1], 9, [](ConnId, SocketAddr) { return ConnCallbacks{}; });
  net_.BindDgram(ids_[1], 53, [](SocketAddr, const std::vector<uint8_t>&,
                                 const std::vector<HostId>&) {});
  EXPECT_TRUE(net_.HasListener(ids_[1], 9));
}

TEST_F(NetEdgeTest, ThreeWayPartitionIsolatesEachGroup) {
  net_.Partition({{ids_[0]}, {ids_[1], ids_[2]}, {ids_[3]}});
  EXPECT_FALSE(net_.HopDistance(ids_[0], ids_[1]).has_value());
  EXPECT_EQ(net_.HopDistance(ids_[1], ids_[2]), 1u);
  EXPECT_FALSE(net_.HopDistance(ids_[2], ids_[3]).has_value());
  net_.Heal();
  EXPECT_EQ(net_.HopDistance(ids_[0], ids_[3]), 3u);
}

TEST_F(NetEdgeTest, RepartitionMovesTheCut) {
  net_.Partition({{ids_[0], ids_[1]}, {ids_[2], ids_[3]}});
  EXPECT_FALSE(net_.HopDistance(ids_[1], ids_[2]).has_value());
  // New partition with the cut elsewhere: b-c restored, a isolated.
  net_.Partition({{ids_[0]}, {ids_[1], ids_[2], ids_[3]}});
  EXPECT_EQ(net_.HopDistance(ids_[1], ids_[2]), 1u);
  EXPECT_FALSE(net_.HopDistance(ids_[0], ids_[1]).has_value());
}

TEST_F(NetEdgeTest, CircuitSurvivesUnrelatedLinkFailure) {
  net_.Listen(ids_[1], 9, [](ConnId, SocketAddr) { return ConnCallbacks{}; });
  bool closed = false;
  std::optional<ConnId> conn;
  ConnCallbacks cb;
  cb.on_close = [&](ConnId, CloseReason) { closed = true; };
  net_.Connect(ids_[0], SocketAddr{ids_[1], 9}, cb,
               [&](std::optional<ConnId> c) { conn = c; });
  sim_.Run();
  ASSERT_TRUE(conn.has_value());
  net_.SetLinkUp(ids_[2], ids_[3], false);  // far away
  sim_.Run();
  EXPECT_FALSE(closed);
  EXPECT_TRUE(net_.ConnAlive(*conn));
}

TEST_F(NetEdgeTest, InFlightDataDeliveredBeforeAbortNotice) {
  std::vector<std::string> got;
  std::optional<CloseReason> reason;
  net_.Listen(ids_[2], 9, [&](ConnId, SocketAddr) {
    ConnCallbacks cb;
    cb.on_data = [&](ConnId, const std::vector<uint8_t>& d) {
      got.emplace_back(d.begin(), d.end());
    };
    cb.on_close = [&](ConnId, CloseReason r) { reason = r; };
    return cb;
  });
  ConnId c = Open(ids_[0], ids_[2], 9);
  ASSERT_NE(c, kInvalidConn);
  net_.Send(c, {'l', 'a', 's', 't'});
  net_.Abort(c);  // sender dies while the frame is on the 2-hop path
  // Like TCP: bytes already on the wire still arrive; the break notice
  // follows.  Sends attempted *after* the abort are refused locally.
  EXPECT_FALSE(net_.Send(c, {'x'}));
  sim_.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "last");
  ASSERT_TRUE(reason.has_value());
  EXPECT_EQ(*reason, CloseReason::kPeerCrash);
}

TEST_F(NetEdgeTest, ConnectFromCrashedHostIsDropped) {
  net_.Listen(ids_[1], 9, [](ConnId, SocketAddr) { return ConnCallbacks{}; });
  net_.SetHostUp(ids_[0], false);
  bool called = false;
  net_.Connect(ids_[0], SocketAddr{ids_[1], 9}, ConnCallbacks{},
               [&](std::optional<ConnId>) { called = true; });
  sim_.Run();
  // The caller is dead; its callback never fires (no ghost completions).
  EXPECT_FALSE(called);
}

TEST_F(NetEdgeTest, HopDistanceToSelfZeroEvenWhenIsolated) {
  net_.Partition({{ids_[0]}, {ids_[1], ids_[2], ids_[3]}});
  EXPECT_EQ(net_.HopDistance(ids_[0], ids_[0]), 0u);
}

TEST_F(NetEdgeTest, DgramAcrossHealedPartition) {
  std::string got;
  net_.BindDgram(ids_[3], 53, [&](SocketAddr, const std::vector<uint8_t>& d,
                                  const std::vector<HostId>&) {
    got.assign(d.begin(), d.end());
  });
  net_.Partition({{ids_[0]}, {ids_[1], ids_[2], ids_[3]}});
  net_.SendDgram(ids_[0], 1000, SocketAddr{ids_[3], 53}, {'x'});
  sim_.Run();
  EXPECT_EQ(got, "");  // dropped silently during the partition
  net_.Heal();
  net_.SendDgram(ids_[0], 1000, SocketAddr{ids_[3], 53}, {'y'});
  sim_.Run();
  EXPECT_EQ(got, "y");
}

TEST_F(NetEdgeTest, LargeFrameCostsMoreThanSmall) {
  std::vector<sim::SimTime> arrivals;
  net_.BindDgram(ids_[1], 53, [&](SocketAddr, const std::vector<uint8_t>&,
                                  const std::vector<HostId>&) {
    arrivals.push_back(sim_.Now());
  });
  net_.SendDgram(ids_[0], 1000, SocketAddr{ids_[1], 53}, std::vector<uint8_t>(10, 1));
  sim_.Run();
  sim::SimTime small = arrivals[0];
  sim::SimTime start = sim_.Now();
  net_.SendDgram(ids_[0], 1000, SocketAddr{ids_[1], 53},
                 std::vector<uint8_t>(100000, 1));
  sim_.Run();
  EXPECT_GT(arrivals[1] - start, small);
}

}  // namespace
}  // namespace ppm::net

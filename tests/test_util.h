// test_util.h — shared fixtures and helpers for the PPM test suite.
#pragma once

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chaos/engine.h"
#include "chaos/plan.h"
#include "core/cluster.h"
#include "tools/client.h"

namespace ppm::test {

// Advances the simulation until `pred()` holds, in small increments, up
// to `horizon` from now.  Returns true if the predicate became true.
template <typename Pred>
bool RunUntil(core::Cluster& cluster, Pred pred,
              sim::SimDuration horizon = sim::Seconds(60),
              sim::SimDuration step = sim::Millis(10)) {
  sim::SimTime deadline = cluster.simulator().Now() + static_cast<sim::SimTime>(horizon);
  while (!pred()) {
    if (cluster.simulator().Now() >= deadline) return false;
    cluster.RunFor(step);
  }
  return true;
}

// A ready-made three-Ethernet environment mirroring the paper's:
//   segment 1: vaxA vaxB sun1        (the user's home segment)
//   segment 2: vaxB vaxC sun2        (vaxB is the gateway)
//   segment 3: vaxC vaxD             (vaxC is the gateway)
// so vaxA—vaxC is two hops and vaxA—vaxD is three.
inline void BuildThreeSegments(core::Cluster& cluster) {
  cluster.AddHost("vaxA", host::HostType::kVax780);
  cluster.AddHost("vaxB", host::HostType::kVax780);
  cluster.AddHost("sun1", host::HostType::kSun2);
  cluster.AddHost("vaxC", host::HostType::kVax750);
  cluster.AddHost("sun2", host::HostType::kSun2);
  cluster.AddHost("vaxD", host::HostType::kVax780);
  cluster.Ethernet({"vaxA", "vaxB", "sun1"});
  cluster.Ethernet({"vaxB", "vaxC", "sun2"});
  cluster.Ethernet({"vaxC", "vaxD"});
}

constexpr host::Uid kTestUid = 100;
inline const char* kTestUser = "leslie";

// Installs the standard test account with full trust and a recovery list.
inline void InstallTestUser(core::Cluster& cluster,
                            const std::vector<std::string>& recovery = {}) {
  cluster.AddUserEverywhere(kTestUser, kTestUid);
  cluster.TrustUserEverywhere(kTestUser, kTestUid);
  if (!recovery.empty()) cluster.SetRecoveryList(kTestUid, recovery);
}

// Spawns a tool for the test user on `host_name` and completes its
// session establishment; returns nullptr on failure.
inline tools::PpmClient* ConnectTool(core::Cluster& cluster, const std::string& host_name,
                                     const std::string& tool_name = "testtool") {
  tools::PpmClient* client =
      tools::SpawnTool(cluster.host(host_name), kTestUser, kTestUid, tool_name);
  bool done = false;
  bool ok = false;
  client->Start([&](bool success, std::string) {
    done = true;
    ok = success;
  });
  if (!RunUntil(cluster, [&] { return done; })) return nullptr;
  return ok ? client : nullptr;
}

// Runs a chaos plan at a seed and folds the outcome into a gtest
// assertion.  The failure message always leads with the (seed, plan)
// replay pair, which reproduces the run exactly.
inline ::testing::AssertionResult RunChaos(uint64_t seed,
                                           const chaos::ChaosPlan& plan) {
  chaos::ChaosOutcome outcome = chaos::RunChaosPlan(seed, plan);
  if (outcome.ok()) return ::testing::AssertionSuccess() << outcome.Summary();
  // Post-mortem: drop the auto-emitted flight dump next to the test
  // binary so CI can upload it as an artifact.
  if (!outcome.flight_dump.empty()) {
    std::string path = "flight-" + plan.name + "-" + std::to_string(seed) + ".txt";
    std::ofstream f(path);
    if (f) f << outcome.flight_dump;
  }
  return ::testing::AssertionFailure() << outcome.Summary();
}

}  // namespace ppm::test

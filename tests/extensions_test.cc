// extensions_test.cc — the paper's sketched-but-unbuilt features that
// this reproduction implements: the CCS name server (Section 5), the
// resilient-computation supervisor (Sections 5/7), and the graphical
// display tool (Section 7).
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/lpm.h"
#include "core/nameserver.h"
#include "tests/test_util.h"
#include "tools/client.h"
#include "tools/dot_export.h"
#include "tools/supervisor.h"

namespace ppm {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::GPid;
using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::kTestUser;
using test::RunUntil;
using tools::PpmClient;

// --- CCS name server ---------------------------------------------------------

core::CcsNameServer* FindNs(Cluster& cluster, const std::string& host_name) {
  host::Host& h = cluster.host(host_name);
  if (!h.up()) return nullptr;
  for (host::Pid p : h.kernel().AllPids()) {
    host::Process* proc = h.kernel().Find(p);
    if (proc && proc->alive() && proc->command == "ccs-nameserver") {
      return dynamic_cast<core::CcsNameServer*>(proc->body.get());
    }
  }
  return nullptr;
}

TEST(NameServerTest, RegisterAndQuery) {
  Cluster cluster;
  cluster.AddHost("ns");
  cluster.AddHost("client");
  cluster.Link("ns", "client");
  core::StartCcsNameServer(cluster.host("ns"));
  cluster.RunFor(sim::Millis(10));

  core::NsRegister(cluster.host("client"), "ns", "leslie", "vaxA");
  cluster.RunFor(sim::Millis(100));
  core::CcsNameServer* ns = FindNs(cluster, "ns");
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(ns->Lookup("leslie"), "vaxA");
  EXPECT_EQ(ns->stats().registrations, 1u);

  std::optional<std::optional<std::string>> answer;
  core::NsQuery(cluster.host("client"), "ns", "leslie", sim::Seconds(1),
                [&](std::optional<std::string> a) { answer = a; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return answer.has_value(); }, sim::Seconds(5)));
  ASSERT_TRUE(answer->has_value());
  EXPECT_EQ(**answer, "vaxA");
}

TEST(NameServerTest, UnknownUserMisses) {
  Cluster cluster;
  cluster.AddHost("ns");
  cluster.AddHost("client");
  cluster.Link("ns", "client");
  core::StartCcsNameServer(cluster.host("ns"));
  cluster.RunFor(sim::Millis(10));
  std::optional<std::optional<std::string>> answer;
  core::NsQuery(cluster.host("client"), "ns", "ghost", sim::Seconds(1),
                [&](std::optional<std::string> a) { answer = a; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return answer.has_value(); }, sim::Seconds(5)));
  EXPECT_FALSE(answer->has_value());
  EXPECT_EQ(FindNs(cluster, "ns")->stats().misses, 1u);
}

TEST(NameServerTest, QueryTimesOutWhenServerDown) {
  Cluster cluster;
  cluster.AddHost("ns");
  cluster.AddHost("client");
  cluster.Link("ns", "client");
  cluster.RunFor(sim::Millis(10));  // no server started
  std::optional<std::optional<std::string>> answer;
  core::NsQuery(cluster.host("client"), "ns", "leslie", sim::Millis(300),
                [&](std::optional<std::string> a) { answer = a; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return answer.has_value(); }, sim::Seconds(5)));
  EXPECT_FALSE(answer->has_value());
}

TEST(NameServerTest, LateAnswerAfterTimeoutIgnored) {
  Cluster cluster;
  net::NetworkParams slow;
  ClusterConfig config;
  config.default_link = net::LinkParams{sim::Millis(400), sim::Micros(1)};
  Cluster slow_cluster(config);
  slow_cluster.AddHost("ns");
  slow_cluster.AddHost("client");
  slow_cluster.Link("ns", "client");
  core::StartCcsNameServer(slow_cluster.host("ns"));
  slow_cluster.RunFor(sim::Millis(10));
  core::NsRegister(slow_cluster.host("client"), "ns", "leslie", "vaxA");
  slow_cluster.RunFor(sim::Seconds(2));
  int calls = 0;
  std::optional<std::string> got;
  // 400 ms each way: the answer arrives after the 300 ms timeout.
  core::NsQuery(slow_cluster.host("client"), "ns", "leslie", sim::Millis(300),
                [&](std::optional<std::string> a) {
                  ++calls;
                  got = a;
                });
  slow_cluster.RunFor(sim::Seconds(3));
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(got.has_value());
}

class NsRecoveryTest : public ::testing::Test {
 protected:
  NsRecoveryTest() : cluster_(MakeConfig()) {
    cluster_.AddHost("ns");
    cluster_.AddHost("vaxA");
    cluster_.AddHost("vaxB");
    cluster_.AddHost("vaxC");
    cluster_.Ethernet({"ns", "vaxA", "vaxB", "vaxC"});
    // NO .recovery file: the name server is the only coordination.
    InstallTestUser(cluster_);
    core::StartCcsNameServer(cluster_.host("ns"));
    cluster_.RunFor(sim::Millis(10));
  }
  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.lpm.ccs_nameserver = "ns";
    config.lpm.retry_interval = sim::Seconds(15);
    config.lpm.time_to_die = sim::Seconds(120);
    return config;
  }
  Cluster cluster_;
};

TEST_F(NsRecoveryTest, DefaultCcsRegistersItself) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  cluster_.RunFor(sim::Millis(200));
  core::CcsNameServer* ns = FindNs(cluster_, "ns");
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(ns->Lookup(kTestUser), "vaxA");
}

TEST_F(NsRecoveryTest, SurvivorSelfAppointsAndRegistersWhenCcsDies) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  std::optional<core::CreateResp> created;
  client->CreateProcess("vaxB", "w", {}, [&](const core::CreateResp& r) { created = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return created.has_value(); }));

  cluster_.Crash("vaxA");
  core::Lpm* b = cluster_.FindLpm("vaxB", kTestUid);
  ASSERT_NE(b, nullptr);
  // vaxB queries the name server, finds the dead vaxA registered, fails
  // to reach it, self-appoints and re-registers.
  ASSERT_TRUE(RunUntil(cluster_, [&] { return b->is_ccs(); }, sim::Seconds(60)));
  cluster_.RunFor(sim::Millis(200));
  EXPECT_EQ(FindNs(cluster_, "ns")->Lookup(kTestUser), "vaxB");
  EXPECT_EQ(b->mode(), core::LpmMode::kNormal);
}

TEST_F(NsRecoveryTest, SecondSurvivorFindsNewCcsThroughServer) {
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  std::optional<core::CreateResp> c1, c2;
  client->CreateProcess("vaxB", "w", {}, [&](const core::CreateResp& r) { c1 = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return c1.has_value(); }));
  client->CreateProcess("vaxC", "w", {}, [&](const core::CreateResp& r) { c2 = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return c2.has_value(); }));

  cluster_.Crash("vaxA");
  core::Lpm* b = cluster_.FindLpm("vaxB", kTestUid);
  core::Lpm* c = cluster_.FindLpm("vaxC", kTestUid);
  // One of them self-appoints; the other finds it via the server (which
  // survivor wins depends on event order, so accept either).
  ASSERT_TRUE(RunUntil(cluster_, [&] { return b->is_ccs() || c->is_ccs(); },
                       sim::Seconds(60)));
  ASSERT_TRUE(RunUntil(cluster_,
                       [&] {
                         return (b->is_ccs() && c->ccs_host() == "vaxB") ||
                                (c->is_ccs() && b->ccs_host() == "vaxC");
                       },
                       sim::Seconds(120)));
  EXPECT_EQ(b->mode(), core::LpmMode::kNormal);
  EXPECT_EQ(c->mode(), core::LpmMode::kNormal);
}

TEST_F(NsRecoveryTest, FallsBackToRecoveryFileWhenServerDown) {
  cluster_.SetRecoveryList(kTestUid, {"vaxA", "vaxB"});
  PpmClient* client = ConnectTool(cluster_, "vaxA");
  ASSERT_NE(client, nullptr);
  std::optional<core::CreateResp> created;
  client->CreateProcess("vaxB", "w", {}, [&](const core::CreateResp& r) { created = r; });
  ASSERT_TRUE(RunUntil(cluster_, [&] { return created.has_value(); }));

  cluster_.Crash("ns");
  cluster_.Crash("vaxA");
  core::Lpm* b = cluster_.FindLpm("vaxB", kTestUid);
  // Name server unreachable -> .recovery walk -> vaxA dead -> vaxB = me.
  ASSERT_TRUE(RunUntil(cluster_, [&] { return b->is_ccs(); }, sim::Seconds(60)));
  EXPECT_EQ(b->ccs_host(), "vaxB");
}

// --- supervisor ------------------------------------------------------------------

class SupervisorTest : public ::testing::Test {
 protected:
  SupervisorTest() {
    cluster_.AddHost("home");
    cluster_.AddHost("alt");
    cluster_.Link("home", "alt");
    InstallTestUser(cluster_);
    cluster_.RunFor(sim::Millis(10));
    client_ = ConnectTool(cluster_, "home", "supervisor");
  }
  Cluster cluster_;
  PpmClient* client_ = nullptr;
};

TEST_F(SupervisorTest, LaunchesAllWorkers) {
  ASSERT_NE(client_, nullptr);
  tools::Supervisor sup(cluster_, *client_);
  sup.Launch({{"w1", "worker", {"home"}}, {"w2", "worker", {"alt", "home"}}});
  ASSERT_TRUE(RunUntil(cluster_, [&] { return sup.AllHealthy(); }, sim::Seconds(30)));
  EXPECT_EQ(sup.status().at("w1").host, "home");
  EXPECT_EQ(sup.status().at("w2").host, "alt");
  sup.Stop();
}

TEST_F(SupervisorTest, RestartsCrashedWorkerInPlace) {
  ASSERT_NE(client_, nullptr);
  tools::Supervisor sup(cluster_, *client_);
  std::vector<std::string> events;
  sup.set_event_handler([&](const std::string& name, const std::string& what,
                            const std::string& where) {
    events.push_back(name + ":" + what + "@" + where);
  });
  sup.Launch({{"w1", "worker", {"alt"}}});
  ASSERT_TRUE(RunUntil(cluster_, [&] { return sup.AllHealthy(); }, sim::Seconds(30)));
  GPid first = sup.status().at("w1").gpid;

  cluster_.host("alt").kernel().PostSignal(first.pid, host::Signal::kSigKill, kTestUid);
  ASSERT_TRUE(RunUntil(cluster_,
                       [&] {
                         return sup.AllHealthy() && sup.status().at("w1").gpid != first;
                       },
                       sim::Seconds(60)));
  EXPECT_EQ(sup.status().at("w1").host, "alt");
  EXPECT_EQ(sup.total_restarts(), 1u);
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.back(), "w1:restarted@alt");
  sup.Stop();
}

TEST_F(SupervisorTest, FailsOverToFallbackHostWhenHomeCrashes) {
  ASSERT_NE(client_, nullptr);
  tools::Supervisor sup(cluster_, *client_);
  sup.Launch({{"w1", "worker", {"alt", "home"}}});
  ASSERT_TRUE(RunUntil(cluster_, [&] { return sup.AllHealthy(); }, sim::Seconds(30)));
  ASSERT_EQ(sup.status().at("w1").host, "alt");

  cluster_.Crash("alt");
  // The worker vanished with its host; the supervisor must move it.
  ASSERT_TRUE(RunUntil(cluster_,
                       [&] {
                         return sup.AllHealthy() && sup.status().at("w1").host == "home";
                       },
                       sim::Seconds(120)));
  sup.Stop();
}

TEST_F(SupervisorTest, GivesUpAfterRestartBudget) {
  ASSERT_NE(client_, nullptr);
  tools::SupervisorConfig config;
  config.max_restarts_per_worker = 2;
  config.poll_interval = sim::Seconds(1);
  tools::Supervisor sup(cluster_, *client_, config);
  sup.Launch({{"w1", "crashy", {"home"}}});
  ASSERT_TRUE(RunUntil(cluster_, [&] { return sup.AllHealthy(); }, sim::Seconds(30)));

  // Keep killing it as soon as it reappears.
  for (int i = 0; i < 3; ++i) {
    GPid current = sup.status().at("w1").gpid;
    if (current.valid()) {
      cluster_.host("home").kernel().PostSignal(current.pid, host::Signal::kSigKill,
                                                kTestUid);
    }
    RunUntil(cluster_,
             [&] {
               return sup.status().at("w1").failed ||
                      (sup.status().at("w1").gpid.valid() &&
                       sup.status().at("w1").gpid != current);
             },
             sim::Seconds(60));
  }
  EXPECT_TRUE(sup.status().at("w1").failed);
  EXPECT_EQ(sup.total_restarts(), 2u);
  sup.Stop();
}

// --- DOT export ----------------------------------------------------------------------

TEST(DotExportTest, EmitsClustersNodesAndEdges) {
  std::vector<core::ProcRecord> records;
  core::ProcRecord root;
  root.gpid = {"vaxA", 1};
  root.command = "root";
  root.state = host::ProcState::kRunning;
  records.push_back(root);
  core::ProcRecord kid;
  kid.gpid = {"vaxB", 2};
  kid.logical_parent = {"vaxA", 1};
  kid.command = "kid";
  kid.state = host::ProcState::kStopped;
  records.push_back(kid);
  core::ProcRecord gone;
  gone.gpid = {"vaxA", 3};
  gone.logical_parent = {"vaxA", 1};
  gone.command = "gone";
  gone.exited = true;
  records.push_back(gone);

  std::string dot = tools::ExportDot(records);
  EXPECT_NE(dot.find("digraph \"ppm\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"vaxA\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"vaxB\""), std::string::npos);
  // Cross-host parent edge is dashed; same-host is not.
  EXPECT_NE(dot.find("\"vaxA_1\" -> \"vaxB_2\" [style=dashed];"), std::string::npos);
  EXPECT_NE(dot.find("\"vaxA_1\" -> \"vaxA_3\";"), std::string::npos);
  // States drive the fill colours; exited is gray.
  EXPECT_NE(dot.find("palegreen"), std::string::npos);
  EXPECT_NE(dot.find("lightsalmon"), std::string::npos);
  EXPECT_NE(dot.find("lightgray"), std::string::npos);
  EXPECT_NE(dot.find("(exited)"), std::string::npos);
  // Balanced braces, single digraph.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(DotExportTest, QuotingSurvivesHostileNames) {
  std::vector<core::ProcRecord> records;
  core::ProcRecord p;
  p.gpid = {"vaxA", 1};
  p.command = "evil \"quoted\" \\ name";
  records.push_back(p);
  std::string dot = tools::ExportDot(records);
  EXPECT_NE(dot.find("\\\"quoted\\\""), std::string::npos);
}

TEST(DotExportTest, OptionsRespected) {
  std::vector<core::ProcRecord> records;
  core::ProcRecord p;
  p.gpid = {"vaxA", 1};
  p.command = "x";
  records.push_back(p);
  tools::DotOptions options;
  options.graph_name = "mygraph";
  options.cluster_by_host = false;
  options.rankdir_lr = true;
  std::string dot = tools::ExportDot(records, options);
  EXPECT_NE(dot.find("digraph \"mygraph\""), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_EQ(dot.find("subgraph"), std::string::npos);
}

TEST(DotExportTest, EndToEndFromSnapshot) {
  Cluster cluster;
  cluster.AddHost("a");
  cluster.AddHost("b");
  cluster.Link("a", "b");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "a");
  ASSERT_NE(client, nullptr);
  std::optional<core::CreateResp> root, kid;
  client->CreateProcess("a", "root", {}, [&](const core::CreateResp& r) { root = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return root.has_value(); }));
  client->CreateProcess("b", "kid", root->gpid,
                        [&](const core::CreateResp& r) { kid = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return kid.has_value(); }));
  std::optional<core::SnapshotResp> snap;
  client->Snapshot([&](const core::SnapshotResp& r) { snap = r; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return snap.has_value(); }, sim::Seconds(60)));
  std::string dot = tools::ExportDot(snap->records);
  EXPECT_NE(dot.find("root"), std::string::npos);
  EXPECT_NE(dot.find("kid"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // cross-host edge
}

}  // namespace
}  // namespace ppm

// wire_test.cc — the PPM wire protocol: round trips for every message
// type, the 112-byte kernel event format, and robustness against
// truncation and garbage (an LPM must survive sibling garbage).
#include <gtest/gtest.h>

#include "core/wire.h"

namespace ppm::core {
namespace {

ProcRecord MakeProcRecord() {
  ProcRecord rec;
  rec.gpid = {"vaxA", 42};
  rec.logical_parent = {"vaxB", 7};
  rec.uid = 100;
  rec.command = "cruncher";
  rec.state = host::ProcState::kStopped;
  rec.exited = false;
  rec.start_time = 1000;
  rec.end_time = 0;
  rec.cpu_time = 12345;
  return rec;
}

RusageRecord MakeRusageRecord() {
  RusageRecord rec;
  rec.gpid = {"sun1", 9};
  rec.command = "worker";
  rec.exit_status = 3;
  rec.killed_by_signal = true;
  rec.death_signal = host::Signal::kSigKill;
  rec.start_time = 5;
  rec.end_time = 500;
  rec.rusage.cpu_time = 777;
  rec.rusage.messages_sent = 11;
  rec.rusage.messages_received = 22;
  rec.rusage.files_opened = 3;
  rec.rusage.max_rss_kb = 640;
  rec.rusage.forks = 2;
  return rec;
}

LpmStatRecord MakeLpmStatRecord() {
  LpmStatRecord rec;
  rec.host = "vaxA";
  rec.lpm_pid = 31;
  rec.mode = 1;
  rec.is_ccs = true;
  rec.ccs_host = "vaxA";
  rec.recovery_rank = 0;
  rec.siblings = {"vaxB", "vaxC"};
  rec.handlers = 4;
  rec.handlers_busy = 2;
  rec.queue_depth = 1;
  rec.queue_watermark = 7;
  rec.tool_circuits = 1;
  rec.requests = 100;
  rec.forwards = 10;
  rec.kernel_events = 5000;
  rec.handlers_created = 4;
  rec.handler_reuses = 96;
  rec.snapshots_served = 12;
  rec.bcasts_originated = 3;
  rec.bcast_duplicates = 2;
  rec.triggers_fired = 1;
  rec.failures_detected = 1;
  rec.recoveries_started = 1;
  rec.request_timeouts = 2;
  rec.eventlog_size = 256;
  rec.eventlog_recorded = 4000;
  rec.eventlog_filtered = 1000;
  rec.eventlog_dropped = 3744;
  rec.dropped_by_pid = {{42, 3000}, {43, 744}};
  rec.store_enabled = true;
  rec.journal_seq = 88;
  rec.journal_bytes = 4096;
  rec.journal_pending = 3;
  rec.pmd_registry = 2;
  rec.pmd_requests = 9;
  rec.flight_records = 777;
  rec.flight_dumps = 1;
  rec.health = 1;
  rec.health_reasons = {"dispatcher backlog (9 queued)"};
  rec.procs = {MakeProcRecord()};
  return rec;
}

// One representative of every message type.
std::vector<Msg> AllMessages() {
  std::vector<Msg> msgs;
  msgs.push_back(HelloSibling{"leslie", "vaxA", 17, 0xdeadbeefcafeULL, "vaxB"});
  msgs.push_back(HelloTool{"leslie", 100, "snapshot"});
  msgs.push_back(HelloAck{"vaxB", 21, "vaxA"});
  msgs.push_back(HelloReject{"authentication failed"});
  msgs.push_back(CreateReq{5, "vaxC", "worker", {"vaxA", 3}, false, host::kTraceExit});
  msgs.push_back(CreateResp{5, true, "", {"vaxC", 88}});
  msgs.push_back(SignalReq{6, {"vaxB", 12}, host::Signal::kSigStop});
  msgs.push_back(SignalResp{6, false, "no such process"});
  SnapshotReq sreq;
  sreq.req_id = 7;
  sreq.origin_host = "vaxA";
  sreq.bcast_seq = 3;
  sreq.signed_ts = 999;
  sreq.route = {"vaxA", "vaxB"};
  msgs.push_back(sreq);
  SnapshotResp sresp;
  sresp.req_id = 7;
  sresp.origin_host = "vaxA";
  sresp.bcast_seq = 3;
  sresp.replier_host = "vaxC";
  sresp.forwarded_to = {"vaxD"};
  sresp.route = {"vaxA", "vaxB", "vaxC"};
  sresp.route_index = 1;
  sresp.records = {MakeProcRecord(), MakeProcRecord()};
  msgs.push_back(sresp);
  msgs.push_back(RusageReq{8, "vaxB"});
  RusageResp rresp;
  rresp.req_id = 8;
  rresp.ok = true;
  rresp.records = {MakeRusageRecord()};
  msgs.push_back(rresp);
  msgs.push_back(AdoptReq{9, {"vaxA", 5}, host::kTraceAll});
  AdoptResp aresp;
  aresp.req_id = 9;
  aresp.ok = true;
  aresp.adopted_pids = {5, 6, 7};
  msgs.push_back(aresp);
  msgs.push_back(TraceReq{10, {"vaxA", 5}, host::kTraceIpc});
  msgs.push_back(TraceResp{10, true, ""});
  msgs.push_back(HistoryReq{11, "vaxB", -1, 100});
  HistoryResp hresp;
  hresp.req_id = 11;
  hresp.ok = true;
  HistEvent ev;
  ev.at = 123;
  ev.kind = host::KEvent::kSignal;
  ev.pid = 4;
  ev.other = 2;
  ev.sig = host::Signal::kSigTerm;
  ev.status = -1;
  ev.detail = "d";
  hresp.events = {ev};
  msgs.push_back(hresp);
  TriggerReq treq;
  treq.req_id = 12;
  treq.target_host = "vaxB";
  treq.spec.event_kind = host::KEvent::kExit;
  treq.spec.subject_pid = 31;
  treq.spec.action_signal = host::Signal::kSigKill;
  treq.spec.action_target = {"vaxC", 77};
  msgs.push_back(treq);
  msgs.push_back(TriggerResp{12, true, "", 4});
  msgs.push_back(BecomeCcs{"vaxB"});
  msgs.push_back(CcsChanged{"vaxC"});
  msgs.push_back(Probe{13});
  msgs.push_back(ProbeAck{13, "vaxA", true});
  msgs.push_back(FilesReq{14, {"vaxB", 8}});
  FilesResp fresp;
  fresp.req_id = 14;
  fresp.ok = true;
  fresp.files = {{3, "/etc/motd", "r"}, {4, "/tmp/x", "rw"}};
  msgs.push_back(fresp);
  msgs.push_back(MigrateReq{15, {"vaxA", 6}, "vaxC"});
  msgs.push_back(MigrateResp{15, true, "", {"vaxC", 31}});
  TriggerReq mig_trig;
  mig_trig.req_id = 16;
  mig_trig.target_host = "vaxA";
  mig_trig.spec.event_kind = host::KEvent::kExit;
  mig_trig.spec.subject_pid = 3;
  mig_trig.spec.action = TriggerAction::kMigrate;
  mig_trig.spec.action_target = {"vaxA", 9};
  mig_trig.spec.migrate_dest = "vaxB";
  msgs.push_back(mig_trig);
  msgs.push_back(RegisterChild{17, {"vaxC", 4}});
  StatReq stat_req;
  stat_req.req_id = 18;
  stat_req.origin_host = "vaxA";
  stat_req.bcast_seq = 5;
  stat_req.signed_ts = 777;
  stat_req.route = {"vaxA", "vaxB"};
  stat_req.dump_flight = true;
  msgs.push_back(stat_req);
  StatResp stat_resp;
  stat_resp.req_id = 18;
  stat_resp.origin_host = "vaxA";
  stat_resp.bcast_seq = 5;
  stat_resp.replier_host = "vaxB";
  stat_resp.forwarded_to = {"vaxC"};
  stat_resp.route = {"vaxA", "vaxB"};
  stat_resp.route_index = 1;
  stat_resp.records = {MakeLpmStatRecord()};
  msgs.push_back(stat_resp);
  BusyResp busy;
  busy.req_id = 19;
  busy.error = "handler queue full";
  busy.retry_after_us = 250000;
  msgs.push_back(busy);
  msgs.push_back(GroupSpawnReq{20, "farm", {"vaxA", "vaxB"}, {"worker 1", "worker 2"}});
  GroupSpawnResp gsresp;
  gsresp.req_id = 20;
  gsresp.ok = true;
  gsresp.members = {{"vaxA", 41}, {"vaxB", 42}};
  gsresp.host_errors = {"vaxC: no handler"};
  msgs.push_back(gsresp);
  msgs.push_back(GroupPartReq{21, "farm", "vaxA", "worker 3"});
  msgs.push_back(GroupPartResp{21, true, "", {"vaxB", 43}});
  msgs.push_back(GroupUndoReq{22, "farm", {"vaxB", 43}});
  msgs.push_back(GroupAck{23, false, "not the central coordinator (ccs=vaxB)", "vaxB"});
  msgs.push_back(GroupExitNotify{24, "farm", {"vaxA", 41}, 7});
  msgs.push_back(GroupAddNotify{25, "farm", {"vaxA", 44}});
  msgs.push_back(GroupSignalReq{26, "farm", host::Signal::kSigUsr1});
  msgs.push_back(GroupSignalResp{26, true, "", 3, 1});
  msgs.push_back(GroupJoinReq{27, "farm"});
  GroupJoinResp gjresp;
  gjresp.req_id = 27;
  gjresp.ok = true;
  gjresp.group = "farm";
  gjresp.exits = {{{"vaxA", 41}, 0}, {{"vaxB", 42}, 9}};
  msgs.push_back(gjresp);
  msgs.push_back(BarrierEnterReq{28, "phase", 3, 5});
  BarrierEnterResp beresp;
  beresp.req_id = 28;
  beresp.ok = true;
  beresp.released = false;
  beresp.epoch = 3;
  beresp.stragglers = {"vaxC", "vaxD"};
  msgs.push_back(beresp);
  msgs.push_back(BarrierJoinReq{29, "phase", 3, 5, "vaxB", 2});
  BarrierReleaseReq brel;
  brel.req_id = 30;
  brel.name = "phase";
  brel.epoch = 3;
  brel.released = true;
  msgs.push_back(brel);
  msgs.push_back(EnvarSetReq{31, "farm.mode", "drain"});
  msgs.push_back(EnvarSetResp{31, true, "", 4});
  msgs.push_back(EnvarGetReq{32, "farm.mode"});
  msgs.push_back(EnvarGetResp{32, true, "", "farm.mode", "drain", 4});
  EnvarUpdate eup;
  eup.req_id = 33;
  eup.origin_host = "vaxA";
  eup.bcast_seq = 6;
  eup.signed_ts = 888;
  eup.route = {"vaxA", "vaxB"};
  eup.key = "farm.mode";
  eup.value = "drain";
  eup.version = 4;
  eup.version_origin = "vaxA";
  msgs.push_back(eup);
  EnvarSync esync;
  esync.req_id = 34;
  esync.entries = {{"farm.mode", "drain", 4, "vaxA"}, {"farm.size", "16", 1, "vaxB"}};
  msgs.push_back(esync);
  EnvarWatchReq ewreq;
  ewreq.req_id = 35;
  ewreq.key = "farm.mode";
  ewreq.spec.event_kind = host::KEvent::kExit;
  ewreq.spec.action = TriggerAction::kSpawn;
  ewreq.spec.spawn_command = "reconfig";
  ewreq.spec.group = "farm";
  msgs.push_back(ewreq);
  msgs.push_back(EnvarWatchResp{35, true, "", 2});
  StatSubscribe ssub;
  ssub.req_id = 36;
  ssub.origin_host = "vaxA";
  ssub.watch_id = 7;
  ssub.bcast_seq = 8;
  ssub.signed_ts = 991;
  ssub.route = {"vaxA", "vaxB"};
  ssub.interval_us = 100'000;
  msgs.push_back(ssub);
  StatDeltaRecord drec;
  drec.host = "vaxB";
  drec.user = "leslie";
  drec.uid = 100;
  drec.seq = 4;
  drec.t_us = 1'234'567;
  drec.dt_us = 100'000;
  drec.d_kernel_events = 55;
  drec.d_requests = 12;
  drec.d_requests_shed = 1;
  drec.d_retries = 2;
  drec.d_journal_bytes = 4096;
  drec.d_eventlog_recorded = 60;
  drec.d_acct_cpu_us = 70'000;
  drec.queue_depth = 3;
  drec.procs_live = 9;
  drec.health = 1;
  StatDelta sdelta;
  sdelta.req_id = 36;
  sdelta.origin_host = "vaxA";
  sdelta.watch_id = 7;
  sdelta.records = {drec, drec};
  msgs.push_back(sdelta);
  StatUnsubscribe sunsub;
  sunsub.req_id = 37;
  sunsub.origin_host = "vaxA";
  sunsub.watch_id = 7;
  msgs.push_back(sunsub);
  return msgs;
}

class WireRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(WireRoundTrip, SerializeParseIdentity) {
  Msg original = AllMessages()[GetParam()];
  auto bytes = Serialize(original);
  auto parsed = Parse(bytes);
  ASSERT_TRUE(parsed.has_value()) << MsgTypeName(original);
  EXPECT_EQ(parsed->index(), original.index());
  // Re-serialization is byte-identical (canonical encoding).
  EXPECT_EQ(Serialize(*parsed), bytes) << MsgTypeName(original);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, WireRoundTrip,
                         ::testing::Range<size_t>(0, AllMessages().size()));

class WireTruncation : public ::testing::TestWithParam<size_t> {};

TEST_P(WireTruncation, EveryPrefixRejectedOrWhole) {
  // Chopping any number of bytes off the end must yield a clean parse
  // failure, never a crash or a bogus success that reads out of bounds.
  Msg original = AllMessages()[GetParam()];
  auto bytes = Serialize(original);
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + static_cast<long>(len));
    auto parsed = Parse(prefix);
    // Most prefixes fail; a few may parse if trailing fields are empty
    // collections — those must at least be the same type.
    if (parsed) {
      EXPECT_EQ(parsed->index(), original.index());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, WireTruncation,
                         ::testing::Range<size_t>(0, AllMessages().size()));

TEST(Wire, GarbageRejected) {
  EXPECT_FALSE(Parse(std::vector<uint8_t>{}).has_value());
  EXPECT_FALSE(Parse(std::vector<uint8_t>{0xff}).has_value());
  EXPECT_FALSE(Parse(std::vector<uint8_t>{200, 1, 2, 3}).has_value());
}

TEST(Wire, FieldValuesSurvive) {
  CreateReq req;
  req.req_id = 0x1122334455667788ULL;
  req.target_host = "host-with-long-name.berkeley.edu";
  req.command = "a out with spaces";
  req.logical_parent = {"x", -1};
  req.initially_running = true;
  req.trace_mask = 0x5a;
  auto parsed = Parse(Serialize(Msg{req}));
  ASSERT_TRUE(parsed.has_value());
  const auto& got = std::get<CreateReq>(*parsed);
  EXPECT_EQ(got.req_id, req.req_id);
  EXPECT_EQ(got.target_host, req.target_host);
  EXPECT_EQ(got.command, req.command);
  EXPECT_EQ(got.logical_parent, req.logical_parent);
  EXPECT_EQ(got.initially_running, true);
  EXPECT_EQ(got.trace_mask, 0x5au);
}

TEST(Wire, SnapshotRecordsSurvive) {
  SnapshotResp resp;
  resp.req_id = 1;
  resp.origin_host = "o";
  resp.replier_host = "r";
  resp.records = {MakeProcRecord()};
  auto parsed = Parse(Serialize(Msg{resp}));
  ASSERT_TRUE(parsed.has_value());
  const auto& got = std::get<SnapshotResp>(*parsed);
  ASSERT_EQ(got.records.size(), 1u);
  EXPECT_EQ(got.records[0].gpid, (GPid{"vaxA", 42}));
  EXPECT_EQ(got.records[0].logical_parent, (GPid{"vaxB", 7}));
  EXPECT_EQ(got.records[0].state, host::ProcState::kStopped);
  EXPECT_EQ(got.records[0].cpu_time, 12345);
}

// --- the STAT escape opcode (0xF6) ---------------------------------------

TEST(Wire, StatRecordFieldsSurvive) {
  StatResp resp;
  resp.req_id = 99;
  resp.origin_host = "o";
  resp.replier_host = "r";
  resp.records = {MakeLpmStatRecord()};
  auto parsed = Parse(Serialize(Msg{resp}));
  ASSERT_TRUE(parsed.has_value());
  const auto& got = std::get<StatResp>(*parsed);
  ASSERT_EQ(got.records.size(), 1u);
  const LpmStatRecord& rec = got.records[0];
  const LpmStatRecord want = MakeLpmStatRecord();
  EXPECT_EQ(rec.host, want.host);
  EXPECT_EQ(rec.mode, want.mode);
  EXPECT_EQ(rec.is_ccs, want.is_ccs);
  EXPECT_EQ(rec.recovery_rank, want.recovery_rank);
  EXPECT_EQ(rec.siblings, want.siblings);
  EXPECT_EQ(rec.queue_watermark, want.queue_watermark);
  EXPECT_EQ(rec.kernel_events, want.kernel_events);
  EXPECT_EQ(rec.request_timeouts, want.request_timeouts);
  EXPECT_EQ(rec.eventlog_dropped, want.eventlog_dropped);
  EXPECT_EQ(rec.dropped_by_pid, want.dropped_by_pid);
  EXPECT_EQ(rec.store_enabled, want.store_enabled);
  EXPECT_EQ(rec.journal_pending, want.journal_pending);
  EXPECT_EQ(rec.flight_records, want.flight_records);
  EXPECT_EQ(rec.health, want.health);
  EXPECT_EQ(rec.health_reasons, want.health_reasons);
  ASSERT_EQ(rec.procs.size(), 1u);
  EXPECT_EQ(rec.procs[0].gpid, (GPid{"vaxA", 42}));
}

TEST(Wire, StatUsesEscapeOpcodeNotVariantIndex) {
  // The body (after the checksum header) must lead with 0xF6 + sub-byte,
  // so a pre-STAT decoder sees an unknown opcode instead of misparsing.
  StatReq req;
  req.req_id = 1;
  auto bytes = Serialize(Msg{req});
  ASSERT_GT(bytes.size(), kChecksumHeaderBytes + 1);
  EXPECT_EQ(bytes[kChecksumHeaderBytes], kStatMsgTag);
  EXPECT_EQ(bytes[kChecksumHeaderBytes + 1], kStatReqSub);
}

TEST(Wire, StatUnknownSubByteRejected) {
  StatReq req;
  req.req_id = 1;
  auto bytes = Serialize(Msg{req});
  // Flip the sub-byte to something undefined; the checksum must be
  // recomputed or the frame dies earlier for the wrong reason.
  std::vector<uint8_t> body(bytes.begin() + kChecksumHeaderBytes, bytes.end());
  body[1] = 0x7e;
  auto reframed = Parse(body);  // unchecksummed frames are still parsed
  EXPECT_FALSE(reframed.has_value());
}

TEST(Wire, MsgTypeNamesDistinct) {
  std::set<std::string> names;
  std::set<size_t> indices;
  for (const Msg& m : AllMessages()) {
    names.insert(MsgTypeName(m));
    indices.insert(m.index());
  }
  // One distinct human-readable name per distinct wire tag.
  EXPECT_EQ(names.size(), indices.size());
  EXPECT_EQ(indices.size(), std::variant_size_v<Msg>);
}

// --- the 112-byte kernel event format (Table 1's message) ---------------------

TEST(KernelEventWire, ExactlyTable1Size) {
  host::KernelEvent ev;
  ev.kind = host::KEvent::kExit;
  ev.pid = 12;
  ev.status = 3;
  ev.at = 999;
  auto bytes = SerializeKernelEvent(ev);
  EXPECT_EQ(bytes.size(), kKernelEventWireBytes);
  EXPECT_EQ(bytes.size(), 112u);
}

TEST(KernelEventWire, RoundTrip) {
  host::KernelEvent ev;
  ev.kind = host::KEvent::kSignal;
  ev.pid = 7;
  ev.other = 3;
  ev.sig = host::Signal::kSigUsr1;
  ev.status = -9;
  ev.at = 123456789;
  ev.detail = "note";
  auto parsed = ParseKernelEvent(SerializeKernelEvent(ev));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->kind, ev.kind);
  EXPECT_EQ(parsed->pid, ev.pid);
  EXPECT_EQ(parsed->other, ev.other);
  EXPECT_EQ(parsed->sig, ev.sig);
  EXPECT_EQ(parsed->status, ev.status);
  EXPECT_EQ(parsed->at, ev.at);
  EXPECT_EQ(parsed->detail, ev.detail);
}

TEST(KernelEventWire, LongDetailTruncatedToFit) {
  host::KernelEvent ev;
  ev.kind = host::KEvent::kFileOpen;
  ev.pid = 1;
  ev.detail = std::string(500, 'p');
  auto bytes = SerializeKernelEvent(ev);
  EXPECT_EQ(bytes.size(), 112u);
  auto parsed = ParseKernelEvent(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_LT(parsed->detail.size(), 112u);
  EXPECT_EQ(parsed->detail, std::string(parsed->detail.size(), 'p'));
}

TEST(KernelEventWire, WrongSizeRejected) {
  host::KernelEvent ev;
  ev.kind = host::KEvent::kFork;
  auto bytes = SerializeKernelEvent(ev);
  bytes.pop_back();
  EXPECT_FALSE(ParseKernelEvent(bytes).has_value());
  bytes.push_back(0);
  bytes.push_back(0);
  EXPECT_FALSE(ParseKernelEvent(bytes).has_value());
}

TEST(KernelEventWire, BadKindRejected) {
  host::KernelEvent ev;
  ev.kind = host::KEvent::kFork;
  auto bytes = SerializeKernelEvent(ev);
  bytes[0] = 200;  // not a KEvent
  EXPECT_FALSE(ParseKernelEvent(bytes).has_value());
}

}  // namespace
}  // namespace ppm::core

// util_test.cc — byte serialization and string helpers.
#include <gtest/gtest.h>

#include <limits>

#include "util/bytes.h"
#include "util/strings.h"

namespace ppm::util {
namespace {

TEST(Bytes, U8RoundTrip) {
  ByteWriter w;
  w.U8(0);
  w.U8(255);
  w.U8(42);
  auto buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.U8(), 0);
  EXPECT_EQ(r.U8(), 255);
  EXPECT_EQ(r.U8(), 42);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Bytes, U16LittleEndian) {
  ByteWriter w;
  w.U16(0x1234);
  EXPECT_EQ(w.bytes()[0], 0x34);
  EXPECT_EQ(w.bytes()[1], 0x12);
}

TEST(Bytes, U32RoundTrip) {
  ByteWriter w;
  w.U32(0);
  w.U32(std::numeric_limits<uint32_t>::max());
  w.U32(0xdeadbeef);
  auto buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.U32(), 0u);
  EXPECT_EQ(r.U32(), std::numeric_limits<uint32_t>::max());
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
}

TEST(Bytes, U64RoundTrip) {
  ByteWriter w;
  w.U64(0x0123456789abcdefULL);
  auto buf = w.Take();
  EXPECT_EQ(buf.size(), 8u);
  ByteReader r(buf);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
}

TEST(Bytes, SignedRoundTrip) {
  ByteWriter w;
  w.I32(-1);
  w.I32(std::numeric_limits<int32_t>::min());
  w.I64(-123456789012345LL);
  auto buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.I32(), -1);
  EXPECT_EQ(r.I32(), std::numeric_limits<int32_t>::min());
  EXPECT_EQ(r.I64(), -123456789012345LL);
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.Str("");
  w.Str("hello");
  w.Str(std::string(1000, 'x'));
  auto buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.Str(), "");
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), std::string(1000, 'x'));
}

TEST(Bytes, BlobRoundTrip) {
  ByteWriter w;
  w.Blob({1, 2, 3});
  auto buf = w.Take();
  ByteReader r(buf);
  auto blob = r.Blob();
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(*blob, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(Bytes, UnderflowReturnsNullopt) {
  std::vector<uint8_t> buf{1, 2};
  ByteReader r(buf);
  EXPECT_FALSE(r.U32().has_value());
  // Failed reads must not consume anything usable.
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(Bytes, StringLengthLieRejected) {
  ByteWriter w;
  w.U32(1000);  // claims 1000 bytes follow
  w.U8('x');
  auto buf = w.Take();
  ByteReader r(buf);
  EXPECT_FALSE(r.Str().has_value());
}

TEST(Bytes, PadAndSkip) {
  ByteWriter w;
  w.U8(7);
  w.Pad(10);
  EXPECT_EQ(w.size(), 11u);
  auto buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.U8(), 7);
  EXPECT_TRUE(r.Skip(10));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_FALSE(r.Skip(1));
}

TEST(Bytes, BoolRoundTrip) {
  ByteWriter w;
  w.Bool(true);
  w.Bool(false);
  auto buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.Bool(), true);
  EXPECT_EQ(r.Bool(), false);
}

// Property: every (value, offset) combination survives a round trip
// through a shared buffer.
class BytesPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BytesPropertyTest, MixedRoundTrip) {
  uint64_t v = GetParam();
  ByteWriter w;
  w.U64(v);
  w.U32(static_cast<uint32_t>(v));
  w.U16(static_cast<uint16_t>(v));
  w.U8(static_cast<uint8_t>(v));
  w.Str(std::to_string(v));
  auto buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.U64(), v);
  EXPECT_EQ(r.U32(), static_cast<uint32_t>(v));
  EXPECT_EQ(r.U16(), static_cast<uint16_t>(v));
  EXPECT_EQ(r.U8(), static_cast<uint8_t>(v));
  EXPECT_EQ(r.Str(), std::to_string(v));
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Values, BytesPropertyTest,
                         ::testing::Values(0ULL, 1ULL, 0xffULL, 0x100ULL, 0xffffULL,
                                           0x10000ULL, 0xffffffffULL, 0x100000000ULL,
                                           0x7fffffffffffffffULL, 0xffffffffffffffffULL,
                                           0x123456789abcdef0ULL));

TEST(Strings, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  auto parts = Split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(Strings, SplitEmptyString) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\nx\r\n"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no-trim"), "no-trim");
}

TEST(Strings, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(StartsWith("hello world", "hello"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
  EXPECT_FALSE(StartsWith("abc", "abd"));
}

}  // namespace
}  // namespace ppm::util

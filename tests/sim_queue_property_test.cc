// sim_queue_property_test.cc — pins the batched same-timestamp dispatch
// to the scheduler's ordering contract.  A naive reference model (one
// linear scan per pop, no heap, no batching) executes the same seeded
// random schedules — including events whose handlers schedule more
// events and cancel others at the head and middle of a timestamp run —
// and every observable must agree: global (timestamp, schedule-order)
// firing order, the virtual-clock trajectory, and the sim.events.fired
// counter.  If the batch refill ever reorders a tie or lets a cancelled
// entry advance the clock, these tests see it.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "obs/metrics.h"
#include "sim/simulator.h"

namespace ppm::sim {
namespace {

uint64_t FiredCount() {
  return obs::Registry::Instance().GetCounter("sim.events.fired")->value();
}

// --- the randomized schedule script ----------------------------------------

// One schedulable unit.  Firing it schedules `children` (by spec index,
// at a relative delay) and cancels `cancels` (by spec index, skipped if
// that spec has not been scheduled yet — deterministic in both the real
// simulator and the model).
struct Spec {
  std::vector<std::pair<size_t, SimDuration>> children;
  std::vector<size_t> cancels;
};

struct Script {
  std::vector<Spec> specs;
  std::vector<std::pair<size_t, SimTime>> roots;  // scheduled before running
};

Script MakeScript(uint64_t seed, size_t n_specs) {
  std::mt19937_64 rng(seed);
  Script s;
  s.specs.resize(n_specs);
  const size_t n_roots = n_specs / 3 + 1;
  // Indices n_roots.. are handed out to parents one by one, so every
  // spec is scheduled at most once.
  size_t next_child = n_roots;
  for (size_t i = 0; i < n_roots; ++i) {
    // Few distinct timestamps on purpose: ties are the interesting case.
    s.roots.emplace_back(i, static_cast<SimTime>(rng() % 8));
  }
  for (size_t i = 0; i < n_specs; ++i) {
    const size_t n_children = rng() % 3;
    for (size_t c = 0; c < n_children && next_child < n_specs; ++c) {
      // Delay 0 lands the child on the parent's own timestamp — it must
      // still fire after everything already queued there.
      s.specs[i].children.emplace_back(next_child++, static_cast<SimDuration>(rng() % 3));
    }
    if (rng() % 4 == 0) {
      s.specs[i].cancels.push_back(rng() % n_specs);
    }
  }
  return s;
}

// --- reference model: linear scan, fire-one-at-a-time ----------------------

struct ModelRun {
  std::vector<size_t> order;   // spec indices in firing order
  std::vector<SimTime> times;  // virtual clock at each firing
};

ModelRun RunModel(const Script& script, SimTime horizon) {
  struct Pending {
    SimTime at;
    uint64_t seq;
    size_t spec;
    bool cancelled = false;
  };
  ModelRun out;
  std::vector<Pending> pending;
  std::vector<bool> scheduled(script.specs.size(), false);
  uint64_t seq = 0;
  SimTime now = 0;
  for (const auto& [spec, at] : script.roots) {
    pending.push_back(Pending{at, seq++, spec});
    scheduled[spec] = true;
  }
  for (;;) {
    // Naive pop: linear scan for the earliest (at, seq).
    size_t best = pending.size();
    for (size_t i = 0; i < pending.size(); ++i) {
      if (best == pending.size() || pending[i].at < pending[best].at ||
          (pending[i].at == pending[best].at && pending[i].seq < pending[best].seq)) {
        best = i;
      }
    }
    if (best == pending.size() || pending[best].at > horizon) break;
    Pending ev = pending[best];
    pending.erase(pending.begin() + best);
    if (ev.cancelled) continue;  // surfaced cancelled events do not advance time
    now = ev.at;
    out.order.push_back(ev.spec);
    out.times.push_back(now);
    const Spec& spec = script.specs[ev.spec];
    for (const auto& [child, delay] : spec.children) {
      pending.push_back(Pending{now + delay, seq++, child});
      scheduled[child] = true;
    }
    for (size_t target : spec.cancels) {
      if (!scheduled[target]) continue;
      for (Pending& p : pending) {
        if (p.spec == target) p.cancelled = true;
      }
    }
  }
  return out;
}

// --- driving the real simulator with the same script ------------------------

struct SimRun {
  std::vector<size_t> order;
  std::vector<SimTime> times;
};

SimRun RunSimulator(Simulator& sim, const Script& script, SimTime horizon) {
  SimRun out;
  std::vector<EventId> ids(script.specs.size(), kInvalidEventId);
  std::function<EventFn(size_t)> make_fn = [&](size_t idx) -> EventFn {
    return [&, idx] {
      out.order.push_back(idx);
      out.times.push_back(sim.Now());
      const Spec& spec = script.specs[idx];
      for (const auto& [child, delay] : spec.children) {
        ids[child] = sim.ScheduleIn(delay, make_fn(child), "prop");
      }
      for (size_t target : spec.cancels) {
        if (ids[target] != kInvalidEventId) sim.Cancel(ids[target]);
      }
    };
  };
  for (const auto& [spec, at] : script.roots) {
    ids[spec] = sim.ScheduleAt(at, make_fn(spec), "prop");
  }
  sim.RunUntil(horizon);
  return out;
}

// --- property: batched dispatch == naive reference ---------------------------

TEST(SimQueueProperty, MatchesReferenceSchedulerAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    const Script script = MakeScript(seed * 0x9e3779b9u, /*n_specs=*/120);
    const ModelRun want = RunModel(script, /*horizon=*/1000);

    Simulator sim(seed);
    const uint64_t fired_before = FiredCount();
    const SimRun got = RunSimulator(sim, script, 1000);

    ASSERT_EQ(want.order, got.order) << "seed " << seed;
    ASSERT_EQ(want.times, got.times) << "seed " << seed;
    // Every model firing is a counter tick — no more, no fewer: a
    // cancelled-in-batch entry must not count.
    ASSERT_EQ(want.order.size(), FiredCount() - fired_before) << "seed " << seed;
    EXPECT_EQ(static_cast<SimTime>(1000), sim.Now()) << "seed " << seed;
  }
}

// Split horizons must not change the firing order: the batch is an
// implementation detail, never visible across RunUntil boundaries.
TEST(SimQueueProperty, SplitHorizonsMatchSingleRun) {
  const Script script = MakeScript(0xabcdef, 120);
  const ModelRun want = RunModel(script, 1000);

  Simulator sim(7);
  SimRun got;
  std::vector<EventId> ids(script.specs.size(), kInvalidEventId);
  std::function<EventFn(size_t)> make_fn = [&](size_t idx) -> EventFn {
    return [&, idx] {
      got.order.push_back(idx);
      got.times.push_back(sim.Now());
      for (const auto& [child, delay] : script.specs[idx].children) {
        ids[child] = sim.ScheduleIn(delay, make_fn(child), "prop");
      }
      for (size_t target : script.specs[idx].cancels) {
        if (ids[target] != kInvalidEventId) sim.Cancel(ids[target]);
      }
    };
  };
  for (const auto& [spec, at] : script.roots) {
    ids[spec] = sim.ScheduleAt(at, make_fn(spec), "prop");
  }
  for (SimTime h : {2, 3, 5, 9, 250, 1000}) {
    sim.RunUntil(h);
    EXPECT_EQ(h, sim.Now());
  }
  EXPECT_EQ(want.order, got.order);
  EXPECT_EQ(want.times, got.times);
}

// --- directed tie and cancellation cases -------------------------------------

TEST(SimQueueProperty, SameTimestampFifoIsStable) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(50, [&order, i] { order.push_back(i); }, "tie");
  }
  sim.RunUntil(100);
  ASSERT_EQ(100u, order.size());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(i, order[i]);
}

TEST(SimQueueProperty, CancelHeadOfTimestampRun) {
  Simulator sim(1);
  std::vector<int> order;
  EventId head = sim.ScheduleAt(10, [&order] { order.push_back(1); }, "t");
  sim.ScheduleAt(10, [&order] { order.push_back(2); }, "t");
  sim.ScheduleAt(10, [&order] { order.push_back(3); }, "t");
  EXPECT_TRUE(sim.Cancel(head));
  const uint64_t fired_before = FiredCount();
  sim.RunUntil(20);
  EXPECT_EQ((std::vector<int>{2, 3}), order);
  EXPECT_EQ(2u, FiredCount() - fired_before);
}

TEST(SimQueueProperty, CancelMiddleOfTimestampRun) {
  Simulator sim(1);
  std::vector<int> order;
  sim.ScheduleAt(10, [&order] { order.push_back(1); }, "t");
  EventId mid = sim.ScheduleAt(10, [&order] { order.push_back(2); }, "t");
  sim.ScheduleAt(10, [&order] { order.push_back(3); }, "t");
  EXPECT_TRUE(sim.Cancel(mid));
  sim.RunUntil(20);
  EXPECT_EQ((std::vector<int>{1, 3}), order);
}

// A handler cancelling a later event in the SAME timestamp run: the
// victim is already sitting in the drained batch, so this is exactly
// the case where skip-at-fire-time must work without re-heapifying.
TEST(SimQueueProperty, HandlerCancelsLaterEventInSameBatch) {
  Simulator sim(1);
  std::vector<int> order;
  EventId victim = kInvalidEventId;
  sim.ScheduleAt(10, [&] {
    order.push_back(1);
    sim.Cancel(victim);
  }, "t");
  victim = sim.ScheduleAt(10, [&order] { order.push_back(2); }, "t");
  sim.ScheduleAt(10, [&order] { order.push_back(3); }, "t");
  const uint64_t fired_before = FiredCount();
  sim.RunUntil(20);
  EXPECT_EQ((std::vector<int>{1, 3}), order);
  EXPECT_EQ(2u, FiredCount() - fired_before);
}

// A handler scheduling at its own timestamp: the new event fires in the
// same virtual instant but strictly after everything already queued
// there (it carries a later sequence number, hence a later batch).
TEST(SimQueueProperty, SameTimestampSelfScheduleFiresAfterQueued) {
  Simulator sim(1);
  std::vector<int> order;
  sim.ScheduleAt(10, [&] {
    order.push_back(1);
    sim.ScheduleAt(10, [&order] { order.push_back(4); }, "t");
  }, "t");
  sim.ScheduleAt(10, [&order] { order.push_back(2); }, "t");
  sim.ScheduleAt(10, [&order] { order.push_back(3); }, "t");
  sim.RunUntil(20);
  EXPECT_EQ((std::vector<int>{1, 2, 3, 4}), order);
  EXPECT_EQ(static_cast<SimTime>(20), sim.Now());
}

// Cancelling the sole queued event must leave the clock untouched even
// after a run — cancelled entries never advance time.
TEST(SimQueueProperty, CancelledSoleEventDoesNotAdvanceClockViaRun) {
  Simulator sim(1);
  bool fired = false;
  EventId id = sim.ScheduleAt(42, [&fired] { fired = true; }, "t");
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_EQ(0u, sim.Run(100));
  EXPECT_FALSE(fired);
  EXPECT_EQ(static_cast<SimTime>(0), sim.Now());
}

}  // namespace
}  // namespace ppm::sim

// chaos_schedule_test.cc — the seeded sweep over declarative chaos plans.
//
// Where chaos_test.cc hand-rolls one adversarial scenario, this suite
// drives the chaos *engine* (src/chaos/) over its canned plans at many
// seeds.  Every stochastic choice a run makes draws from the cluster
// simulator's single RNG, so a failed run is reproduced exactly by the
// (seed, plan) pair its failure message prints:
//
//   RunChaos(<seed>, chaos::CrashPlan())       // in any test or a debugger
//
// The seed count per plan comes from the PPM_CHAOS_SEEDS CMake cache
// variable (default 24, so 3 plans sweep 72 runs); raise it for a longer
// soak:  cmake -B build -DPPM_CHAOS_SEEDS=64 && ctest -L chaos.
//
// What a run asserts (see chaos/invariants.h for the full list): the
// cluster converges after the final heal (no dying LPM, a single CCS),
// fresh tool sessions work end to end on every host, completed snapshots
// cover exactly the reachable sibling graph, crashed hosts leak no
// binds or circuits, genealogy stays a forest, frame accounting stays
// conservative, and checksum corruption detections never exceed
// injections.
#include <gtest/gtest.h>

#include "chaos/plan.h"
#include "tests/test_util.h"

#ifndef PPM_CHAOS_SEEDS
#define PPM_CHAOS_SEEDS 24
#endif

namespace ppm {
namespace {

using test::RunChaos;

class CrashScheduleTest : public ::testing::TestWithParam<uint64_t> {};
class PartitionScheduleTest : public ::testing::TestWithParam<uint64_t> {};
class CorruptionScheduleTest : public ::testing::TestWithParam<uint64_t> {};
class StoreScheduleTest : public ::testing::TestWithParam<uint64_t> {};
class OverloadScheduleTest : public ::testing::TestWithParam<uint64_t> {};
class GroupScheduleTest : public ::testing::TestWithParam<uint64_t> {};
class GroupFailoverScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashScheduleTest, InvariantsHold) {
  EXPECT_TRUE(RunChaos(GetParam(), chaos::CrashPlan()));
}

TEST_P(PartitionScheduleTest, InvariantsHold) {
  EXPECT_TRUE(RunChaos(GetParam(), chaos::PartitionPlan()));
}

TEST_P(CorruptionScheduleTest, InvariantsHold) {
  // The corruption plan must actually exercise the wire checksum: at
  // least one frame gets a byte flipped, and the books reconcile
  // (detected <= injected is an engine invariant; the outcome also
  // carries the counts for this stronger, plan-specific assertion).
  chaos::ChaosOutcome outcome =
      chaos::RunChaosPlan(GetParam(), chaos::CorruptionPlan());
  EXPECT_TRUE(outcome.ok()) << outcome.Summary();
  EXPECT_GT(outcome.corrupt_injected, 0u) << outcome.Summary();
}

TEST_P(StoreScheduleTest, CrashMidWriteRecoversExactly) {
  // The store plan crashes hosts mid-journal-batch: the torn unsynced
  // tail must be detected and discarded (never parsed), warm restarts
  // must recover history/triggers/rusage up to the last sync, and at
  // the final quiescent point every LPM's on-disk state must replay to
  // exactly its live state (the store-durability invariant).
  chaos::ChaosOutcome outcome =
      chaos::RunChaosPlan(GetParam(), chaos::StorePlan());
  EXPECT_TRUE(outcome.ok()) << outcome.Summary();
  // The plan's whole point is crashing under write load.
  EXPECT_GT(outcome.host_crashes + outcome.lpm_kills, 0u) << outcome.Summary();
}

TEST_P(OverloadScheduleTest, FloodTerminatesEveryRequest) {
  // A request flood against a noisy-neighbor host with partitions under
  // load: judged by the no-silent-loss invariant (every admitted request
  // terminates in a reply, an explicit error, or a recorded expiry) and
  // the shed-partition invariant (every shed request got an explicit
  // BUSY), on top of the standard set.
  chaos::ChaosOutcome outcome =
      chaos::RunChaosPlan(GetParam(), chaos::OverloadPlan());
  EXPECT_TRUE(outcome.ok()) << outcome.Summary();
}

TEST_P(GroupScheduleTest, PartitionNeverSplitsABarrierVerdict) {
  // Multi-host barrier rounds while the network partitions: members cut
  // off from the CCS must fail their waiters with an *unknown* outcome,
  // so for no (barrier, epoch) may one member observe "released" while
  // another observes "timed out" (group.no_split_release).  After heal
  // the engine demands one cluster-wide round where every host's party
  // is released.
  chaos::ChaosOutcome outcome =
      chaos::RunChaosPlan(GetParam(), chaos::GroupPlan());
  EXPECT_TRUE(outcome.ok()) << outcome.Summary();
  // The plan's whole point: barrier parties actually entered under fire.
  EXPECT_GT(outcome.barrier_parties, 0u) << outcome.Summary();
}

TEST_P(GroupFailoverScheduleTest, EnvarTableSurvivesCcsFailoverUnforked) {
  // Global-envar writes under CCS crashes and LPM kills: coordinator
  // version assignment survives warm restarts through the journal, and
  // sibling anti-entropy reconciles replicas after heal — so no (key,
  // version, origin) may map to two values anywhere, and the CCS's
  // sibling component must hold identical tables (group.envar_consistent).
  chaos::ChaosOutcome outcome =
      chaos::RunChaosPlan(GetParam(), chaos::GroupFailoverPlan());
  EXPECT_TRUE(outcome.ok()) << outcome.Summary();
  EXPECT_GT(outcome.host_crashes + outcome.lpm_kills, 0u) << outcome.Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashScheduleTest,
                         ::testing::Range<uint64_t>(1, PPM_CHAOS_SEEDS + 1));
INSTANTIATE_TEST_SUITE_P(Seeds, PartitionScheduleTest,
                         ::testing::Range<uint64_t>(1, PPM_CHAOS_SEEDS + 1));
INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionScheduleTest,
                         ::testing::Range<uint64_t>(1, PPM_CHAOS_SEEDS + 1));
INSTANTIATE_TEST_SUITE_P(Seeds, StoreScheduleTest,
                         ::testing::Range<uint64_t>(1, PPM_CHAOS_SEEDS + 1));
INSTANTIATE_TEST_SUITE_P(Seeds, OverloadScheduleTest,
                         ::testing::Range<uint64_t>(1, PPM_CHAOS_SEEDS + 1));
INSTANTIATE_TEST_SUITE_P(Seeds, GroupScheduleTest,
                         ::testing::Range<uint64_t>(1, PPM_CHAOS_SEEDS + 1));
INSTANTIATE_TEST_SUITE_P(Seeds, GroupFailoverScheduleTest,
                         ::testing::Range<uint64_t>(1, PPM_CHAOS_SEEDS + 1));

}  // namespace
}  // namespace ppm

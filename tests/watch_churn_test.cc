// watch_churn_test.cc — subscription churn under partition, across the
// chaos seed matrix.  A watch is cut off from half the cluster mid
// stream; the subscriber must flag the silenced hosts stale within two
// intervals, and after the network heals a fresh subscription must
// resume deltas from every host with no gap and no double-count — the
// no-silent-loss invariant extended to StatDelta sequence numbers.
//
// Each seed shifts the cluster's RNG and the phase of the push cadence
// at which the partition lands, so the matrix covers cuts at different
// points of the flood / push / relay pipeline.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/lpm.h"
#include "tests/test_util.h"
#include "tools/client.h"
#include "tools/ppmtop.h"

#ifndef PPM_CHAOS_SEEDS
#define PPM_CHAOS_SEEDS 8
#endif

namespace ppm::tools {
namespace {

using core::GPid;
using test::BuildThreeSegments;
using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::RunUntil;

constexpr uint64_t kIntervalUs = 100'000;

void SpawnWorkers(core::Cluster& cluster, PpmClient& client,
                  const std::vector<std::string>& hosts) {
  GPid root;
  for (const std::string& h : hosts) {
    std::optional<core::CreateResp> created;
    client.CreateProcess(h, "worker-" + h, h == hosts.front() ? GPid{} : root,
                         [&](const core::CreateResp& r) { created = r; }, false);
    ASSERT_TRUE(RunUntil(cluster, [&] { return created.has_value(); })) << h;
    ASSERT_TRUE(created->ok) << h << ": " << created->error;
    if (h == hosts.front()) root = created->gpid;
  }
}

bool NoWatchesLeft(core::Cluster& cluster, const std::vector<std::string>& hosts) {
  for (const std::string& h : hosts) {
    core::Lpm* lpm = cluster.FindLpm(h, kTestUid);
    if (lpm != nullptr && lpm->stat_watch_count() != 0) return false;
  }
  return true;
}

class WatchChurn : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WatchChurn, ResubscribeResumesWithoutGapOrDoubleCount) {
  const uint64_t seed = GetParam();
  core::ClusterConfig config;
  config.seed = seed;
  core::Cluster cluster(config);
  BuildThreeSegments(cluster);
  InstallTestUser(cluster, {"vaxA", "vaxB"});
  cluster.RunFor(sim::Millis(10));
  PpmClient* client = ConnectTool(cluster, "vaxA", "ppmtop");
  ASSERT_NE(client, nullptr);
  const std::vector<std::string> hosts = {"vaxA", "vaxB", "sun1",
                                          "vaxC", "sun2", "vaxD"};
  SpawnWorkers(cluster, *client, hosts);
  // Seed-dependent settling so the subscribe lands at a different
  // point of the cluster's schedule every run.
  cluster.RunFor(sim::Micros(10'000 + (seed * 13'337) % 90'000));

  PpmTop first(cluster.host("vaxA"), *client, kIntervalUs);
  std::optional<bool> started;
  first.Start([&](bool ok) { started = ok; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return started.has_value(); })) << "seed " << seed;
  ASSERT_TRUE(*started) << "seed " << seed;
  ASSERT_TRUE(RunUntil(cluster, [&] { return first.host_count() == hosts.size(); }))
      << "seed " << seed;
  const uint64_t first_watch = first.watch_id();

  // Cut mid-watch, at a seed-dependent phase of the push cadence.
  cluster.RunFor(sim::Micros((seed * 7'919) % (2 * kIntervalUs)));
  cluster.network().Partition(
      {{cluster.host("vaxA").net_id(), cluster.host("vaxB").net_id(),
        cluster.host("sun1").net_id()},
       {cluster.host("vaxC").net_id(), cluster.host("sun2").net_id(),
        cluster.host("vaxD").net_id()}});

  // Stale flagging fires for all three silenced hosts.  Flag times are
  // captured per host: the hosts go quiet at different points of the
  // drain, so a shared observation instant would overstate the latency
  // of whichever host was flagged first.
  std::map<std::string, uint64_t> flagged_at;
  const uint64_t deadline =
      static_cast<uint64_t>(cluster.simulator().Now()) + 10 * kIntervalUs;
  while (flagged_at.size() < 3 &&
         static_cast<uint64_t>(cluster.simulator().Now()) < deadline) {
    cluster.RunFor(sim::Millis(10));
    const uint64_t t = static_cast<uint64_t>(cluster.simulator().Now());
    for (const PpmTop::HostRow& row : first.Rows()) {
      if (row.stale && !flagged_at.count(row.host)) flagged_at[row.host] = t;
    }
  }
  ASSERT_EQ(flagged_at.size(), 3u) << "seed " << seed;
  for (const PpmTop::HostRow& row : first.Rows()) {
    const bool cut = row.host == "vaxC" || row.host == "sun2" || row.host == "vaxD";
    EXPECT_EQ(row.stale, cut) << "seed " << seed << " host " << row.host;
    if (cut) {
      // Flagged within two intervals of that host's last arrival (plus
      // the 10ms observation step).
      EXPECT_LE(flagged_at[row.host] - row.last_seen_us, 2 * kIntervalUs + 20'000)
          << "seed " << seed << " host " << row.host;
    }
  }
  // ...while the watch never silently loses or replays an interval.
  EXPECT_EQ(first.seq_gaps(), 0u) << "seed " << seed;
  EXPECT_EQ(first.seq_dups(), 0u) << "seed " << seed;

  // Heal and resubscribe.  The first watch is dead on the far side (its
  // delta path was pinned through the cut), so resumption is a fresh
  // watch, not a silent re-route.  Subscriptions flood the covering
  // graph as it stands, so wait for the cut-side managers to re-link
  // through recovery (sibling re-establishment toward the CCS) before
  // issuing the new watch — exactly what an operator retrying a watch
  // with stale rows does.
  cluster.network().Heal();
  first.Stop();
  core::Lpm* origin_lpm = cluster.FindLpm("vaxA", kTestUid);
  ASSERT_NE(origin_lpm, nullptr) << "seed " << seed;
  ASSERT_TRUE(RunUntil(cluster,
                       [&] { return origin_lpm->sibling_hosts().size() >= 5; }))
      << "seed " << seed;
  PpmTop second(cluster.host("vaxA"), *client, kIntervalUs);
  std::optional<bool> restarted;
  second.Start([&](bool ok) { restarted = ok; });
  ASSERT_TRUE(RunUntil(cluster, [&] { return restarted.has_value(); }))
      << "seed " << seed;
  ASSERT_TRUE(*restarted) << "seed " << seed;
  EXPECT_NE(second.watch_id(), first_watch) << "seed " << seed;

  // Deltas resume from every host, contiguous from seq 1 on the new
  // watch — no gap, no double-count, on either side of the churn.
  ASSERT_TRUE(RunUntil(cluster, [&] { return second.host_count() == hosts.size(); }))
      << "seed " << seed;
  cluster.RunFor(sim::Micros(6 * kIntervalUs));
  EXPECT_EQ(second.seq_gaps(), 0u) << "seed " << seed;
  EXPECT_EQ(second.seq_dups(), 0u) << "seed " << seed;
  EXPECT_EQ(first.seq_gaps(), 0u) << "seed " << seed;
  EXPECT_EQ(first.seq_dups(), 0u) << "seed " << seed;
  for (const PpmTop::HostRow& row : second.Rows()) {
    EXPECT_GE(row.last_seq, 3u) << "seed " << seed << " host " << row.host;
    EXPECT_FALSE(row.stale) << "seed " << seed << " host " << row.host;
  }

  // Teardown converges everywhere once the second watch unsubscribes.
  second.Stop();
  EXPECT_TRUE(RunUntil(cluster, [&] { return NoWatchesLeft(cluster, hosts); }))
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(SeedMatrix, WatchChurn,
                         ::testing::Range<uint64_t>(1, PPM_CHAOS_SEEDS + 1));

}  // namespace
}  // namespace ppm::tools

// daemon_edge_test.cc — daemon lifecycle corners: pmd idle-exit,
// concurrent creation requests, reboot behaviour.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "daemon/inetd.h"
#include "daemon/protocol.h"
#include "tests/test_util.h"
#include "tools/client.h"

namespace ppm::daemon {
namespace {

using core::Cluster;
using core::ClusterConfig;
using test::ConnectTool;
using test::InstallTestUser;
using test::kTestUid;
using test::kTestUser;
using test::RunUntil;

TEST(DaemonEdge, PmdExitsWhenLastLpmLeaves) {
  ClusterConfig config;
  config.pmd.idle_exit = sim::Seconds(30);
  config.lpm.time_to_live = sim::Seconds(20);
  Cluster cluster(config);
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  tools::PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);
  ASSERT_NE(cluster.FindPmd("solo"), nullptr);

  client->Disconnect();
  // LPM expires at +20 s; pmd lingers 30 s more, then exits.
  cluster.RunFor(sim::Seconds(25));
  EXPECT_EQ(cluster.FindLpm("solo", kTestUid), nullptr);
  ASSERT_NE(cluster.FindPmd("solo"), nullptr) << "pmd must outlive the LPM briefly";
  cluster.RunFor(sim::Seconds(40));
  EXPECT_EQ(cluster.FindPmd("solo"), nullptr) << "idle pmd should have exited";

  // The whole path regrows on demand.
  tools::PpmClient* again = ConnectTool(cluster, "solo", "relogin");
  ASSERT_NE(again, nullptr);
  EXPECT_NE(cluster.FindPmd("solo"), nullptr);
  EXPECT_NE(cluster.FindLpm("solo", kTestUid), nullptr);
}

TEST(DaemonEdge, PmdIdleExitCancelledByNewLpm) {
  ClusterConfig config;
  config.pmd.idle_exit = sim::Seconds(30);
  config.lpm.time_to_live = sim::Seconds(10);
  Cluster cluster(config);
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  tools::PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);
  client->Disconnect();
  cluster.RunFor(sim::Seconds(15));  // LPM gone; pmd countdown running
  ASSERT_EQ(cluster.FindLpm("solo", kTestUid), nullptr);
  // New session during the countdown: pmd must stay.
  tools::PpmClient* again = ConnectTool(cluster, "solo", "again");
  ASSERT_NE(again, nullptr);
  cluster.RunFor(sim::Seconds(60));
  EXPECT_NE(cluster.FindPmd("solo"), nullptr);
}

TEST(DaemonEdge, PmdNeverExitsWhenDisabled) {
  ClusterConfig config;
  config.pmd.idle_exit = 0;  // never
  config.lpm.time_to_live = sim::Seconds(10);
  Cluster cluster(config);
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  tools::PpmClient* client = ConnectTool(cluster, "solo");
  ASSERT_NE(client, nullptr);
  client->Disconnect();
  cluster.RunFor(sim::Seconds(600));
  EXPECT_NE(cluster.FindPmd("solo"), nullptr);
}

TEST(DaemonEdge, RebootRestartsInetdViaBootFn) {
  Cluster cluster;
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  ASSERT_NE(cluster.FindInetd("solo"), nullptr);
  cluster.Crash("solo");
  EXPECT_EQ(cluster.FindInetd("solo"), nullptr);
  cluster.Reboot("solo");
  cluster.RunFor(sim::Millis(10));
  ASSERT_NE(cluster.FindInetd("solo"), nullptr);
  // And the full creation path works on the fresh boot.
  tools::PpmClient* client = ConnectTool(cluster, "solo");
  EXPECT_NE(client, nullptr);
}

TEST(DaemonEdge, ConcurrentRequestsForSameUserCreateOneLpm) {
  Cluster cluster;
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.RunFor(sim::Millis(10));
  // Two tools start simultaneously: inetd/pmd must funnel them onto one
  // LPM (pmd's registry is written synchronously at creation).
  tools::PpmClient* t1 = tools::SpawnTool(cluster.host("solo"), kTestUser, kTestUid, "t1");
  tools::PpmClient* t2 = tools::SpawnTool(cluster.host("solo"), kTestUser, kTestUid, "t2");
  int done = 0, ok = 0;
  auto cb = [&](bool success, std::string) {
    ++done;
    ok += success;
  };
  t1->Start(cb);
  t2->Start(cb);
  ASSERT_TRUE(RunUntil(cluster, [&] { return done == 2; }, sim::Seconds(30)));
  EXPECT_EQ(ok, 2);
  Pmd* pmd = cluster.FindPmd("solo");
  ASSERT_NE(pmd, nullptr);
  EXPECT_EQ(pmd->stats().lpms_created, 1u);
  EXPECT_EQ(pmd->registry_size(), 1u);
}

TEST(DaemonEdge, TwoUsersGetTwoLpmsThroughOnePmd) {
  Cluster cluster;
  cluster.AddHost("solo");
  InstallTestUser(cluster);
  cluster.AddUserEverywhere("eve", 200);
  cluster.RunFor(sim::Millis(10));
  tools::PpmClient* t1 = ConnectTool(cluster, "solo");
  ASSERT_NE(t1, nullptr);
  tools::PpmClient* t2 = tools::SpawnTool(cluster.host("solo"), "eve", 200, "evetool");
  bool done = false, ok = false;
  t2->Start([&](bool success, std::string) {
    done = true;
    ok = success;
  });
  ASSERT_TRUE(RunUntil(cluster, [&] { return done; }));
  EXPECT_TRUE(ok);
  Pmd* pmd = cluster.FindPmd("solo");
  ASSERT_NE(pmd, nullptr);
  EXPECT_EQ(pmd->registry_size(), 2u);
  // One pmd, one inetd, two LPMs.
  EXPECT_EQ(cluster.FindInetd("solo")->stats().pmd_spawns, 1u);
}

}  // namespace
}  // namespace ppm::daemon
